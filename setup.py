"""Setuptools shim (kept for environments whose pip lacks PEP 660 editable
support or the ``wheel`` package; metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
