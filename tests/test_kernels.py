"""Fused kernels vs the generic object path: bit-identical, everywhere.

The kernels' contract (docs/KERNELS.md) is strict equivalence: driving a
detector through ``run_kernel`` must produce the *same* warnings (same
order, same ``event_index``, same ``prior`` text), the same ``CostStats``
and rule counters, the same suppressed-warning count, and the same shadow
state as ``detector.process(events)``.  These tests enforce that over the
golden corpus, hand-built edge traces, and through the sharded engine at
1, 2, and 4 shards (the ISSUE acceptance matrix), plus the CLI wiring
for ``--kernel {auto,fused,generic}``.
"""

import json
import random
from pathlib import Path

import pytest

from repro import engine
from repro.cli import main
from repro.detectors.registry import make_detector
from repro.kernels import KERNEL_TOOLS, has_kernel, run_kernel
from repro.trace import events as ev
from repro.trace.columnar import ColumnarTrace
from repro.trace.generators import GeneratorConfig, random_feasible_trace
from repro.trace.serialize import dumps, loads
from repro.trace.trace import Trace

DATA = Path(__file__).parent / "data"
MANIFEST = json.loads((DATA / "manifest.json").read_text())
SHARD_COUNTS = (1, 2, 4)


def _slot_attrs(obj):
    names = []
    for cls in type(obj).__mro__:
        names.extend(getattr(cls, "__slots__", ()))
    if hasattr(obj, "__dict__"):
        names.extend(obj.__dict__)
    return names


def assert_bit_identical(generic, fused, context=""):
    """The full equivalence contract, down to shadow-state dict order."""
    assert [str(w) for w in generic.warnings] == [
        str(w) for w in fused.warnings
    ], context
    assert generic.stats.summary() == fused.stats.summary(), context
    assert list(generic.stats.rules.items()) == list(
        fused.stats.rules.items()
    ), context
    assert generic.suppressed_warnings == fused.suppressed_warnings, context
    for coll in ("vars", "locks", "threads", "held"):
        g = getattr(generic, coll, None)
        f = getattr(fused, coll, None)
        if g is None:
            assert f is None, (context, coll)
            continue
        assert list(g) == list(f), (context, coll)
        if isinstance(g, dict):
            for key in g:
                gv, fv = g[key], f[key]
                assert type(gv) is type(fv), (context, coll, key)
                for attr in _slot_attrs(gv):
                    assert repr(getattr(gv, attr)) == repr(
                        getattr(fv, attr)
                    ), (context, coll, key, attr)


def run_both(tool, events):
    generic = make_detector(tool).process(events)
    fused = run_kernel(tool, ColumnarTrace.from_events(events))
    return generic, fused


@pytest.mark.parametrize("tool", KERNEL_TOOLS)
@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_golden_corpus_bit_identical(tool, name):
    events = list(loads((DATA / f"{name}.trace").read_text()))
    generic, fused = run_both(tool, events)
    assert_bit_identical(generic, fused, f"{tool}/{name}")


@pytest.mark.parametrize("tool", KERNEL_TOOLS)
def test_empty_trace(tool):
    generic, fused = run_both(tool, [])
    assert_bit_identical(generic, fused, tool)


@pytest.mark.parametrize("tool", KERNEL_TOOLS)
def test_rare_kinds_interleaved(tool):
    """Fork/join/volatile/barrier (the kernels' dispatch escape hatch)
    interleaved with accesses, including a volatile access interning a
    target *before* its first plain access (a shadow-dict-order trap)."""
    events = [
        ev.Event(ev.VOLATILE_WRITE, 0, "x2", None),
        ev.Event(ev.WRITE, 0, "x1", "s1"),
        ev.Event(ev.FORK, 0, 1, None),
        ev.Event(ev.WRITE, 1, "x2", "s2"),
        ev.Event(ev.READ, 1, "x1", "s2"),
        ev.Event(ev.ACQUIRE, 1, "m", None),
        ev.Event(ev.VOLATILE_READ, 1, "x2", None),
        ev.Event(ev.RELEASE, 1, "m", None),
        ev.Event(ev.BARRIER_RELEASE, -1, (0, 1), None),
        ev.Event(ev.READ, 0, "x2", "s3"),
        ev.Event(ev.JOIN, 0, 1, None),
        ev.Event(ev.WRITE, 0, "x1", "s4"),
        ev.Event(ev.ENTER, 0, "fn", None),
        ev.Event(ev.EXIT, 0, "fn", None),
    ]
    generic, fused = run_both(tool, events)
    assert_bit_identical(generic, fused, tool)
    assert list(generic.vars) == list(fused.vars)


@pytest.mark.parametrize("tool", KERNEL_TOOLS)
def test_warning_indices_and_priors(tool):
    """Racy trace: event_index and prior strings must match exactly."""
    rng = random.Random(11)
    trace = random_feasible_trace(
        rng,
        GeneratorConfig(
            max_events=400, max_threads=5, n_vars=6, discipline=0.1
        ),
    )
    events = list(trace)
    generic, fused = run_both(tool, events)
    assert generic.warnings, f"{tool}: trace should be racy"
    for gw, fw in zip(generic.warnings, fused.warnings):
        assert gw.event_index == fw.event_index
        assert gw.prior == fw.prior


def test_run_kernel_rejects_unknown_tool():
    with pytest.raises(ValueError):
        run_kernel("NoSuchTool", ColumnarTrace())


def test_run_kernel_rejects_wrong_detector_class():
    col = ColumnarTrace.from_events([ev.Event(ev.READ, 0, "x", None)])
    with pytest.raises(TypeError):
        run_kernel("FastTrack", col, detector=make_detector("Eraser"))


def test_has_kernel():
    for tool in KERNEL_TOOLS:
        assert has_kernel(tool)
    assert not has_kernel("Empty")


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
@pytest.mark.parametrize("tool", KERNEL_TOOLS)
def test_engine_fused_identical_to_generic(tool, nshards):
    """ISSUE acceptance: fused == generic == single-threaded at 1/2/4
    shards, for every kernel-equipped tool."""
    rng = random.Random(500 + nshards)
    trace = random_feasible_trace(
        rng,
        GeneratorConfig(
            max_events=400,
            max_threads=5,
            n_vars=10,
            n_locks=2,
            discipline=0.3,
            p_fork=0.08,
            p_join=0.06,
            p_volatile=0.05,
        ),
    )
    single = make_detector(tool).process(trace)
    reports = {
        mode: engine.check_events(
            trace.events, tool=tool, nshards=nshards, kernel=mode
        )
        for mode in ("fused", "generic", "auto")
    }
    for mode, report in reports.items():
        context = (tool, nshards, mode)
        if tool == "WCP" and nshards > 1:
            # WCP's sharding envelope (docs/PREDICT.md): per-variable
            # routing hides cross-variable conflict joins, so a sharded
            # run warns on a superset of the single-threaded variables.
            # Fused/generic/auto must still agree with *each other*
            # exactly at every shard count.
            assert {w.var for w in single.warnings} <= {
                w.var for w in report.warnings
            }, context
        else:
            assert [str(w) for w in report.warnings] == [
                str(w) for w in single.warnings
            ], context
            assert report.suppressed_warnings == single.suppressed_warnings, (
                context
            )
        assert report.stats.reads == single.stats.reads, context
        assert report.stats.writes == single.stats.writes, context
    baseline = reports["fused"]
    for mode in ("generic", "auto"):
        report = reports[mode]
        assert [str(w) for w in report.warnings] == [
            str(w) for w in baseline.warnings
        ], (tool, nshards, mode)
        assert report.suppressed_warnings == baseline.suppressed_warnings, (
            tool,
            nshards,
            mode,
        )


def test_engine_fused_rejects_kernelless_tool():
    events = [ev.Event(ev.WRITE, 0, "x", None)]
    with pytest.raises(ValueError):
        engine.check_events(events, tool="Empty", nshards=1, kernel="fused")


class TestKernelCLI:
    @pytest.fixture
    def racy_file(self, tmp_path):
        events = [
            ev.Event(ev.WRITE, 0, "x", "a.py:1"),
            ev.Event(ev.WRITE, 1, "x", "a.py:2"),
        ]
        path = tmp_path / "racy.trace"
        path.write_text(dumps(Trace(events)))
        return str(path)

    def test_kernel_modes_agree(self, racy_file, capsys):
        outputs = {}
        for mode in ("auto", "fused", "generic"):
            assert main(["check", racy_file, "--kernel", mode]) == 1
            outputs[mode] = capsys.readouterr().out
        assert outputs["fused"] == outputs["generic"] == outputs["auto"]

    def test_kernel_modes_agree_sharded(self, racy_file, capsys):
        outputs = {}
        for mode in ("fused", "generic"):
            assert (
                main(
                    [
                        "check",
                        racy_file,
                        "--shards",
                        "2",
                        "--kernel",
                        mode,
                    ]
                )
                == 1
            )
            outputs[mode] = capsys.readouterr().out
        assert outputs["fused"] == outputs["generic"]

    def test_fused_with_kernelless_tool_errors(self, racy_file, capsys):
        assert (
            main(
                ["check", racy_file, "--tool", "Empty", "--kernel", "fused"]
            )
            == 2
        )
        assert "kernel" in capsys.readouterr().err

    def test_jobs_auto(self, racy_file, capsys):
        assert main(["check", racy_file, "--jobs", "auto"]) == 1

    def test_jobs_oversubscription_warning(self, racy_file, capsys):
        assert main(["check", racy_file, "--jobs", "99"]) == 1
        assert "exceeds" in capsys.readouterr().err
