"""Tests for the evaluation harness and the table renderers."""

import pytest

from repro.bench import harness, reporting
from repro.bench.harness import (
    COMPOSITION_WORKLOADS,
    TABLE1_ORDER,
    TABLE1_TOOLS,
    run_composition,
    run_rule_frequencies,
    run_table1,
    run_table2,
    run_table3,
)

SMALL = 150
FEW = ("mtrt", "sor", "tsp")


class TestTable1:
    def test_grid_shape_and_contents(self):
        results = run_table1(scale=SMALL, workloads=FEW)
        assert set(results) == set(FEW)
        for row in results.values():
            assert set(row) == set(TABLE1_TOOLS)
            for cell in row.values():
                assert cell.events > 0
                assert cell.seconds > 0
                assert cell.slowdown > 1.0
        # Precision structure: Empty reports nothing, precise tools agree.
        for name in FEW:
            assert results[name]["Empty"].warnings == 0
            assert (
                results[name]["FastTrack"].warnings
                == results[name]["DJIT+"].warnings
                == results[name]["BasicVC"].warnings
            )

    def test_report_renders(self):
        results = run_table1(scale=SMALL, workloads=FEW)
        text = reporting.format_table1(results)
        assert "Table 1" in text
        assert "mtrt" in text and "FastTrack" in text
        assert "(paper)" in text


class TestTable2:
    def test_fasttrack_allocates_and_compares_far_less(self):
        results = run_table2(scale=SMALL, workloads=("crypt", "montecarlo"))
        for row in results.values():
            dj, ft = row["DJIT+"], row["FastTrack"]
            assert ft.vc_allocs < dj.vc_allocs / 10
            assert ft.vc_ops < dj.vc_ops / 10

    def test_report_renders(self):
        text = reporting.format_table2(run_table2(scale=SMALL, workloads=FEW))
        assert "VC ops" in text and "Total" in text


class TestTable3:
    def test_coarse_granularity_reduces_memory(self):
        results = run_table3(scale=SMALL, workloads=("crypt", "sparse"))
        for row in results.values():
            assert (
                row["DJIT+ coarse"].memory_words
                < row["DJIT+ fine"].memory_words
            )
            assert (
                row["FastTrack coarse"].memory_words
                < row["FastTrack fine"].memory_words
            )
            # FastTrack's fine-grain footprint beats DJIT+'s (Table 3).
            assert (
                row["FastTrack fine"].memory_words
                < row["DJIT+ fine"].memory_words
            )

    def test_report_renders(self):
        text = reporting.format_table3(
            run_table3(scale=SMALL, workloads=("crypt",))
        )
        assert "granularity" in text


class TestFigure2:
    def test_rule_fractions_are_consistent(self):
        freq = run_rule_frequencies(scale=SMALL, workloads=FEW)
        mix = freq.mix
        assert mix["reads"] + mix["writes"] + mix["other"] == pytest.approx(1)
        assert sum(freq.fasttrack_read_rules.values()) == pytest.approx(1)
        assert sum(freq.fasttrack_write_rules.values()) == pytest.approx(1)
        assert sum(freq.djit_read_rules.values()) == pytest.approx(1)
        assert sum(freq.djit_write_rules.values()) == pytest.approx(1)

    def test_same_epoch_rules_dominate(self):
        freq = run_rule_frequencies(scale=300)
        assert freq.fasttrack_read_rules["FT READ SAME EPOCH"] > 0.5
        assert freq.fasttrack_write_rules["FT WRITE SAME EPOCH"] > 0.5
        assert freq.fasttrack_read_rules["FT READ SHARE"] < 0.05
        assert freq.fasttrack_write_rules["FT WRITE SHARED"] < 0.05

    def test_report_renders(self):
        text = reporting.format_rule_frequencies(
            run_rule_frequencies(scale=SMALL, workloads=FEW)
        )
        assert "FT READ SAME EPOCH" in text


class TestComposition:
    def test_cells_and_atomizer_eraser_skip(self):
        table = run_composition(
            scale=SMALL,
            workloads=("mtrt", "tsp"),
            checkers=("Atomizer", "Velodrome"),
            prefilters=("None", "Eraser", "FastTrack"),
        )
        assert "Eraser" not in table["Atomizer"]  # footnote 7
        assert "Eraser" in table["Velodrome"]
        for row in table.values():
            for cell in row.values():
                assert cell.slowdown > 0
                assert 0 <= cell.pass_fraction <= 1

    def test_fasttrack_prefilter_passes_fewest_events(self):
        table = run_composition(
            scale=SMALL,
            workloads=("crypt", "mtrt"),
            checkers=("Velodrome",),
            prefilters=("None", "TL", "FastTrack"),
        )
        row = table["Velodrome"]
        assert row["FastTrack"].pass_fraction < row["TL"].pass_fraction
        assert row["TL"].pass_fraction < row["None"].pass_fraction

    def test_composition_workloads_are_compute_bound(self):
        assert "hedc" not in COMPOSITION_WORKLOADS
        assert "crypt" in COMPOSITION_WORKLOADS

    def test_report_renders(self):
        table = run_composition(
            scale=SMALL,
            workloads=("mtrt",),
            checkers=("Velodrome",),
            prefilters=("None", "FastTrack"),
        )
        text = reporting.format_composition(table)
        assert "Velodrome" in text
