"""The async-finish detector: task-parallel vector-clock race detection.

``AsyncFinish`` extends FastTrack with the task vocabulary from
PAPERS.md's async-finish work: ``task_spawn``/``task_await`` mirror the
fork/join rules, and a ``finish`` scope transitively joins every task
spawned under it (directly or by descendants) at ``finish_end``.  These
tests pin the semantics against hand-built traces, the HB oracle over
the seeded model programs, the golden async corpus (its own manifest —
task-unaware tools legitimately over-report there), and the sharded
engine at 1/2/4 shards.
"""

import json
from pathlib import Path

import pytest

from repro import engine
from repro.detectors import (
    default_tool_kwargs,
    make_detector,
    resolve_tool_name,
)
from repro.trace import events as ev
from repro.trace.feasibility import check_feasible
from repro.trace.generators import async_pipeline_trace, task_pool_trace
from repro.trace.happens_before import racy_variables
from repro.trace.serialize import loads
from repro.trace.trace import Trace

DATA = Path(__file__).parent / "data"
ASYNC_MANIFEST = json.loads((DATA / "async_manifest.json").read_text())
ASYNC_TOOLS = ("FastTrack", "WCP", "AsyncFinish")


def _detector(**overrides):
    kwargs = dict(default_tool_kwargs("AsyncFinish"))
    kwargs.update(overrides)
    return make_detector("AsyncFinish", **kwargs)


def _vars(detector):
    return {w.var for w in detector.warnings}


def load_trace(name):
    return loads((DATA / f"{name}.trace").read_text())


class TestSemantics:
    def test_spawn_orders_parent_before_child(self):
        trace = Trace(
            [
                ev.wr(0, "x"),
                ev.task_spawn(0, 1),
                ev.rd(1, "x"),
            ]
        )
        assert _vars(_detector().process(trace)) == set()

    def test_unordered_sibling_tasks_race(self):
        trace = Trace(
            [
                ev.finish_begin(0, "f"),
                ev.task_spawn(0, 1),
                ev.task_spawn(0, 2),
                ev.wr(1, "x"),
                ev.wr(2, "x"),
                ev.finish_end(0, "f"),
            ]
        )
        detector = _detector().process(trace)
        assert _vars(detector) == {"x"}
        assert detector.warnings[0].kind == "write-write"

    def test_await_orders_child_before_parent(self):
        trace = Trace(
            [
                ev.task_spawn(0, 1),
                ev.wr(1, "x"),
                ev.task_await(0, 1),
                ev.rd(0, "x"),
            ]
        )
        assert _vars(_detector().process(trace)) == set()

    def test_read_before_await_races(self):
        trace = Trace(
            [
                ev.task_spawn(0, 1),
                ev.wr(1, "x"),
                ev.rd(0, "x"),
                ev.task_await(0, 1),
            ]
        )
        assert _vars(_detector().process(trace)) == {"x"}

    def test_finish_end_joins_direct_children(self):
        trace = Trace(
            [
                ev.finish_begin(0, "f"),
                ev.task_spawn(0, 1),
                ev.wr(1, "x"),
                ev.finish_end(0, "f"),
                ev.rd(0, "x"),
            ]
        )
        assert _vars(_detector().process(trace)) == set()

    def test_finish_end_joins_transitively_spawned_tasks(self):
        # Task 1 spawns task 2 inside finish(f): the scope is inherited,
        # so finish_end must wait for the grandchild's write too.
        trace = Trace(
            [
                ev.finish_begin(0, "f"),
                ev.task_spawn(0, 1),
                ev.task_spawn(1, 2),
                ev.wr(2, "x"),
                ev.finish_end(0, "f"),
                ev.rd(0, "x"),
            ]
        )
        assert _vars(_detector().process(trace)) == set()

    def test_nested_finish_scopes(self):
        # The inner scope joins task 2; the outer joins task 1.  Reads
        # after each finish_end are ordered with the tasks it closed.
        trace = Trace(
            [
                ev.finish_begin(0, "outer"),
                ev.task_spawn(0, 1),
                ev.finish_begin(0, "inner"),
                ev.task_spawn(0, 2),
                ev.wr(2, "y"),
                ev.finish_end(0, "inner"),
                ev.rd(0, "y"),
                ev.wr(1, "x"),
                ev.finish_end(0, "outer"),
                ev.rd(0, "x"),
            ]
        )
        assert _vars(_detector().process(trace)) == set()

    def test_awaited_task_not_rejoined_at_finish_end(self):
        # An awaited task is already ordered; finish_end must not
        # resurrect its clock (which would be wrong if tids were reused,
        # and is wasted work otherwise).  Behaviourally: still race-free.
        trace = Trace(
            [
                ev.finish_begin(0, "f"),
                ev.task_spawn(0, 1),
                ev.wr(1, "x"),
                ev.task_await(0, 1),
                ev.rd(0, "x"),
                ev.finish_end(0, "f"),
            ]
        )
        detector = _detector().process(trace)
        assert _vars(detector) == set()
        assert 1 in detector._terminated

    def test_unmatched_finish_end_is_ignored(self):
        trace = Trace([ev.finish_end(0, "ghost"), ev.wr(0, "x")])
        assert _vars(_detector().process(trace)) == set()

    def test_plain_fasttrack_over_reports_on_task_traces(self):
        # The reason the async corpus has its own manifest: a task-unaware
        # precise tool sees no edge from finish_end back to the tasks.
        trace = Trace(
            [
                ev.finish_begin(0, "f"),
                ev.task_spawn(0, 1),
                ev.wr(1, "x"),
                ev.finish_end(0, "f"),
                ev.rd(0, "x"),
            ]
        )
        ft = make_detector("FastTrack").process(trace)
        assert _vars(ft) == {"x"}
        assert racy_variables(trace) == set()


class TestModelPrograms:
    @pytest.mark.parametrize("seed", range(6))
    def test_task_pool_seeded_race_is_exactly_the_counter(self, seed):
        trace = task_pool_trace(racy=True, seed=seed)
        assert check_feasible(trace) == []
        assert racy_variables(trace) == {"counter"}
        assert _vars(_detector().process(trace)) == {"counter"}

    @pytest.mark.parametrize("seed", range(6))
    def test_task_pool_race_free_variant_is_clean(self, seed):
        trace = task_pool_trace(racy=False, seed=seed)
        assert check_feasible(trace) == []
        assert racy_variables(trace) == set()
        assert _vars(_detector().process(trace)) == set()

    @pytest.mark.parametrize("seed", range(6))
    def test_pipeline_seeded_race_is_one_peek_per_stage(self, seed):
        trace = async_pipeline_trace(stages=3, racy=True, seed=seed)
        expected = {("buf", s, 0) for s in range(3)}
        assert check_feasible(trace) == []
        assert racy_variables(trace) == expected
        assert _vars(_detector().process(trace)) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_pipeline_race_free_variant_is_clean(self, seed):
        trace = async_pipeline_trace(stages=3, racy=False, seed=seed)
        assert check_feasible(trace) == []
        assert racy_variables(trace) == set()
        assert _vars(_detector().process(trace)) == set()


class TestGoldenCorpus:
    @pytest.mark.parametrize("name", sorted(ASYNC_MANIFEST))
    def test_trace_parses_and_is_feasible(self, name):
        trace = load_trace(name)
        assert len(trace) == ASYNC_MANIFEST[name]["events"]
        assert check_feasible(trace) == []

    @pytest.mark.parametrize("tool", ASYNC_TOOLS)
    @pytest.mark.parametrize("name", sorted(ASYNC_MANIFEST))
    def test_golden_verdicts(self, name, tool):
        trace = load_trace(name)
        detector = make_detector(tool, **default_tool_kwargs(tool))
        detector.process(trace)
        measured = sorted(str(w.var) for w in detector.warnings)
        assert measured == ASYNC_MANIFEST[name]["warnings"][tool], (
            name,
            tool,
        )

    @pytest.mark.parametrize("name", sorted(ASYNC_MANIFEST))
    def test_asyncfinish_matches_oracle(self, name):
        """The task-aware tool is the precise one on task traces: its
        warning set equals the HB ground truth, variable for variable."""
        trace = load_trace(name)
        detector = _detector().process(trace)
        oracle = racy_variables(trace)
        assert _vars(detector) == oracle


class TestSharding:
    @pytest.mark.parametrize("nshards", (1, 2, 4))
    def test_sharded_identical_to_single_threaded(self, nshards):
        kwargs = default_tool_kwargs("AsyncFinish")
        for trace in (
            task_pool_trace(racy=True, seed=3),
            task_pool_trace(racy=False, seed=3),
            async_pipeline_trace(racy=True, seed=5),
            async_pipeline_trace(racy=False, seed=5),
        ):
            single = make_detector("AsyncFinish", **kwargs).process(trace)
            report = engine.check_events(
                trace.events,
                tool="AsyncFinish",
                nshards=nshards,
                tool_kwargs=kwargs,
            )
            assert report.warnings == single.warnings
            assert [str(w) for w in report.warnings] == [
                str(w) for w in single.warnings
            ]
            assert report.suppressed_warnings == single.suppressed_warnings
            assert report.events == len(trace)


class TestCompaction:
    def test_compact_drops_terminated_tasks_and_warned_vars(self):
        trace = task_pool_trace(tasks=6, racy=True, seed=2)
        detector = _detector().process(trace)
        threads_before = len(detector.threads)
        released = detector.compact()
        assert released >= 1  # at least the warned counter's shadow state
        assert len(detector.threads) < threads_before
        assert detector._terminated == set()
        assert "counter" not in detector.vars

    def test_compaction_preserves_the_warning_stream(self):
        trace = task_pool_trace(tasks=6, items=3, racy=True, seed=4)
        baseline = _detector().process(trace)
        compacting = _detector()
        for index, event in enumerate(trace):
            compacting.handle(event)
            if index % 5 == 4:
                compacting.compact()
        assert compacting.warnings == baseline.warnings
        assert [str(w) for w in compacting.warnings] == [
            str(w) for w in baseline.warnings
        ]


class TestCli:
    @pytest.fixture
    def pool_file(self, tmp_path):
        from repro.trace.serialize import dumps

        path = tmp_path / "pool.trace"
        path.write_text(dumps(task_pool_trace(racy=True, seed=0)))
        return str(path)

    def test_check_tool_async(self, pool_file, capsys):
        from repro.cli import main

        assert main(["check", pool_file, "--tool", "async"]) == 1
        out = capsys.readouterr().out
        assert "AsyncFinish" in out
        assert "'counter'" in out

    def test_profile_tool_async(self, pool_file, capsys):
        from repro.cli import main

        assert main(["profile", pool_file, "--tool", "async"]) == 0
        out = capsys.readouterr().out
        assert "AsyncFinish" in out
        assert "AF SPAWN" in out and "AF FINISH END" in out


class TestRegistryResolution:
    def test_async_alias(self):
        assert resolve_tool_name("async") == "AsyncFinish"
        assert resolve_tool_name("ASYNC") == "AsyncFinish"

    def test_canonical_names_case_insensitive(self):
        assert resolve_tool_name("asyncfinish") == "AsyncFinish"
        assert resolve_tool_name("fasttrack") == "FastTrack"
        assert resolve_tool_name("djit+") == "DJIT+"
        assert resolve_tool_name("  WCP  ") == "WCP"

    def test_unknown_name_passes_through_and_fails_listing_all(self):
        from repro.detectors import DETECTORS

        assert resolve_tool_name("TSan") == "TSan"
        with pytest.raises(ValueError) as excinfo:
            make_detector(resolve_tool_name("TSan"))
        for name in DETECTORS:
            assert name in str(excinfo.value)
