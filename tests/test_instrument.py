"""Tests for the automatic object/container instrumentation."""

from repro.core.fasttrack import FastTrack
from repro.runtime.instrument import (
    MonitoredDict,
    MonitoredList,
    monitored_object,
)
from repro.runtime.monitor import MonitoredLock, ThreadMonitor
from repro.trace import events as ev
from repro.trace.feasibility import check_feasible


class _Account:
    def __init__(self) -> None:
        self.balance = 0
        self.owner = "alice"


class TestMonitoredObject:
    def test_attribute_accesses_emit_events(self):
        monitor = ThreadMonitor()
        account = monitored_object(monitor, "account", _Account())
        account.balance = account.balance + 10
        assert account.balance == 10
        trace = monitor.trace()
        kinds = [(e.kind, e.target) for e in trace]
        assert (ev.READ, ("account", "balance")) in kinds
        assert (ev.WRITE, ("account", "balance")) in kinds

    def test_sites_point_at_real_source_lines(self):
        monitor = ThreadMonitor()
        account = monitored_object(monitor, "account", _Account())
        account.balance = 1
        event = monitor.trace()[-1]
        assert event.site.startswith("test_instrument.py:")

    def test_distinct_fields_are_distinct_locations(self):
        monitor = ThreadMonitor()
        account = monitored_object(monitor, "account", _Account())
        _ = account.balance
        _ = account.owner
        targets = {e.target for e in monitor.trace()}
        assert ("account", "balance") in targets
        assert ("account", "owner") in targets

    def test_unlocked_field_race_detected_with_both_sites(self):
        monitor = ThreadMonitor()
        account = monitored_object(monitor, "account", _Account())

        def deposit():
            for _ in range(100):
                account.balance = account.balance + 1

        threads = [monitor.spawn(deposit) for _ in range(2)]
        for thread in threads:
            monitor.join(thread)
        tool = FastTrack(track_sites=True)
        tool.process(monitor.trace())
        assert [w.var for w in tool.warnings] == [("account", "balance")]
        assert "test_instrument.py:" in str(tool.warnings[0].site)

    def test_locked_object_is_clean(self):
        monitor = ThreadMonitor()
        account = monitored_object(monitor, "account", _Account())
        lock = MonitoredLock(monitor, "account_lock")

        def deposit():
            for _ in range(50):
                with lock:
                    account.balance = account.balance + 1

        threads = [monitor.spawn(deposit) for _ in range(3)]
        for thread in threads:
            monitor.join(thread)
        assert check_feasible(monitor.trace()) == []
        assert monitor.check(FastTrack()).warnings == []
        assert account.balance == 150


class TestMonitoredList:
    def test_per_index_events(self):
        monitor = ThreadMonitor()
        cells = MonitoredList(monitor, "cells", [0, 0, 0])
        cells[1] = 7
        _ = cells[1]
        _ = cells[-1]  # negative indices normalize
        targets = [e.target for e in monitor.trace()]
        assert targets == [("cells", 1), ("cells", 1), ("cells", 2)]

    def test_append_and_pop_conflict_via_length(self):
        monitor = ThreadMonitor()
        queue = MonitoredList(monitor, "queue")

        def producer():
            for _ in range(30):
                queue.append(1)

        threads = [monitor.spawn(producer) for _ in range(2)]
        for thread in threads:
            monitor.join(thread)
        tool = monitor.check(FastTrack())
        assert tool.has_warned(("queue", "__len__"))

    def test_iteration_and_slices_read_elements(self):
        monitor = ThreadMonitor()
        cells = MonitoredList(monitor, "cells", [1, 2, 3])
        assert list(cells) == [1, 2, 3]
        assert cells[0:2] == [1, 2]
        reads = [e for e in monitor.trace() if e.kind == ev.READ]
        assert len(reads) >= 5

    def test_len_reads_the_length_field(self):
        monitor = ThreadMonitor()
        cells = MonitoredList(monitor, "cells", [1])
        assert len(cells) == 1
        assert monitor.trace()[-1].target == ("cells", "__len__")


class TestMonitoredDict:
    def test_per_key_events(self):
        monitor = ThreadMonitor()
        table = MonitoredDict(monitor, "table")
        table["k"] = 1
        _ = table["k"]
        assert "k" in table
        assert table.get("missing") is None
        del table["k"]
        kinds = [(e.kind, e.target) for e in monitor.trace()]
        assert kinds[0] == (ev.WRITE, ("table", "k"))
        assert kinds[-1] == (ev.WRITE, ("table", "k"))
        assert sum(1 for k, _t in kinds if k == ev.READ) == 3

    def test_unlocked_cache_race(self):
        monitor = ThreadMonitor()
        cache = MonitoredDict(monitor, "cache")

        def worker(key):
            for _ in range(40):
                cache[key % 2] = cache.get(key % 2, 0)

        threads = [monitor.spawn(worker, i) for i in range(3)]
        for thread in threads:
            monitor.join(thread)
        tool = monitor.check(FastTrack())
        assert tool.warning_count >= 1
