"""Tests for exhaustive schedule exploration."""

import pytest

from repro.core.fasttrack import FastTrack
from repro.runtime.explore import explore, race_coverage
from repro.runtime.program import Program
from repro.trace.feasibility import check_feasible


def two_step_factory():
    def a(th):
        yield th.write("x")
        yield th.write("x")

    def b(th):
        yield th.read("y")

    return Program(a, b)


class TestEnumeration:
    def test_counts_all_interleavings(self):
        # Interleavings of (w, w) and (r): C(3,1) = 3.
        outcomes = list(explore(two_step_factory))
        assert len(outcomes) == 3
        schedules = {tuple(o.schedule) for o in outcomes}
        assert len(schedules) == 3  # all distinct

    def test_every_schedule_is_feasible(self):
        for outcome in explore(two_step_factory):
            assert not outcome.deadlock
            assert check_feasible(outcome.trace) == []

    def test_single_thread_has_one_schedule(self):
        def solo(th):
            yield th.write("x")
            yield th.read("x")

        outcomes = list(explore(lambda: Program(solo)))
        assert len(outcomes) == 1

    def test_schedule_cap_raises(self):
        def worker(th):
            for _ in range(6):
                yield th.write("x")

        factory = lambda: Program(worker, worker, worker)
        with pytest.raises(RuntimeError, match="too large"):
            list(explore(factory, max_schedules=10))

    def test_deadlocks_are_reported_as_outcomes(self):
        def left(th):
            yield th.acquire("a")
            yield th.write("x")
            yield th.acquire("b")
            yield th.release("b")
            yield th.release("a")

        def right(th):
            yield th.acquire("b")
            yield th.write("y")
            yield th.acquire("a")
            yield th.release("a")
            yield th.release("b")

        outcomes = list(explore(lambda: Program(left, right)))
        assert any(o.deadlock for o in outcomes)  # some interleavings hang
        assert any(not o.deadlock for o in outcomes)  # ...and some don't


class TestRaceCoverage:
    def test_unconditional_race_on_every_schedule(self):
        def a(th):
            yield th.write("x")

        def b(th):
            yield th.write("x")

        summary = race_coverage(lambda: Program(a, b))
        assert summary.total_schedules == 2
        assert summary.racy_schedules == 2
        assert summary.race_probability == 1.0
        assert summary.racy_variables == {"x"}

    def test_schedule_dependent_race(self):
        """The paper's motivation: the bug manifests only on the rare
        interleavings where the reader misses the flag."""

        def factory():
            state = {"published": False}

            def writer(th):
                yield th.acquire("m")
                state["published"] = True
                yield th.release("m")
                yield th.write("data")  # only racy if the reader peeks

            def reader(th):
                yield th.acquire("m")
                published = state["published"]
                yield th.release("m")
                if published:
                    yield th.read("data")  # concurrent with the write!
                else:
                    yield th.read("own")

            return Program(writer, reader)

        summary = race_coverage(factory)
        assert summary.total_schedules > 2
        assert 0 < summary.racy_schedules < (
            summary.total_schedules - summary.deadlocked_schedules
        )
        assert 0.0 < summary.race_probability < 1.0
        assert summary.racy_variables == {"data"}

    def test_race_free_program_is_clean_everywhere(self):
        def factory():
            def main(th):
                child = yield th.fork(worker)
                yield th.join(child)
                yield th.read("x")

            def worker(th):
                yield th.write("x")

            return Program(main)

        summary = race_coverage(factory, detector_factory=FastTrack)
        assert summary.racy_schedules == 0
        assert summary.clean_schedules == summary.total_schedules
