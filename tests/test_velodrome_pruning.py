"""Property test: Velodrome's clock-based edge pruning is transparent.

The optimization skips conflict edges that are already implied by
synchronization; because every synchronization edge is also a graph edge,
such conflict edges can never change reachability, so the set of detected
cycles — and therefore the violations — must be identical with and without
pruning, on arbitrary transactional traces.
"""

from hypothesis import given, settings

from repro.checkers import Velodrome
from repro.trace.generators import GeneratorConfig, traces

ATOMIC_CONFIG = GeneratorConfig(
    max_events=80,
    max_threads=4,
    discipline=0.6,
    p_guarded_block=0.5,
    p_atomic=0.7,
)


@settings(max_examples=80, deadline=None)
@given(traces(config=ATOMIC_CONFIG))
def test_pruned_and_unpruned_velodrome_agree(trace):
    """Pruning never changes whether the execution is serializable.

    Label *attribution* may differ: a cycle can be discovered through
    different closing edges in the two configurations, and each cycle is
    reported once per participating label — so the invariant is verdict
    equivalence, not report-list equality.
    """
    events = list(trace)
    pruned = Velodrome(prune_with_clocks=True).process(events)
    unpruned = Velodrome(prune_with_clocks=False).process(events)
    assert (pruned.violation_count > 0) == (unpruned.violation_count > 0)


@settings(max_examples=40, deadline=None)
@given(traces(config=ATOMIC_CONFIG))
def test_pruning_never_adds_edges(trace):
    events = list(trace)
    pruned = Velodrome(prune_with_clocks=True).process(events)
    unpruned = Velodrome(prune_with_clocks=False).process(events)
    assert (
        pruned.stats.rules.get("VELODROME EDGE", 0)
        <= unpruned.stats.rules.get("VELODROME EDGE", 0)
    )
