"""Properties of the *online* analysis discipline.

FastTrack is an online algorithm (σ ⇒a σ′): its verdicts must not depend
on how the event stream is delivered, must be deterministic, and must grow
monotonically with the trace.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fasttrack import FastTrack
from repro.detectors import DJITPlus, Eraser, Goldilocks, MultiRace
from repro.runtime.program import Program
from repro.runtime.scheduler import run_program
from repro.trace.generators import traces


def warned(tool):
    return {tool.shadow_key(w.var) for w in tool.warnings}


@settings(max_examples=50, deadline=None)
@given(traces(), st.data())
def test_chunked_delivery_equals_batch(trace, data):
    """Splitting the stream at any point changes nothing (online-ness)."""
    events = list(trace)
    cut = data.draw(
        st.integers(min_value=0, max_value=len(events)), label="cut"
    )
    whole = FastTrack().process(events)
    split = FastTrack()
    split.process(events[:cut])
    split.process(events[cut:])
    assert warned(split) == warned(whole)
    assert split.stats.rules == whole.stats.rules


@settings(max_examples=50, deadline=None)
@given(traces())
def test_determinism(trace):
    events = list(trace)
    for tool_cls in (FastTrack, DJITPlus, Eraser, MultiRace, Goldilocks):
        first = tool_cls().process(events)
        second = tool_cls().process(events)
        assert first.warnings == second.warnings, tool_cls.__name__
        assert first.stats.vc_ops == second.stats.vc_ops


@settings(max_examples=50, deadline=None)
@given(traces(), st.data())
def test_warned_variables_grow_monotonically(trace, data):
    """A prefix's warned variables are a subset of the full trace's (once a
    race has been observed it cannot un-happen)."""
    events = list(trace)
    cut = data.draw(
        st.integers(min_value=0, max_value=len(events)), label="cut"
    )
    prefix_tool = FastTrack().process(events[:cut])
    full_tool = FastTrack().process(events)
    assert warned(prefix_tool) <= warned(full_tool)


def test_scheduler_sink_streams_the_returned_trace():
    def main(th):
        child = yield th.fork(worker)
        yield th.acquire("m")
        yield th.write("x")
        yield th.release("m")
        yield th.join(child)

    def worker(th):
        yield th.acquire("m")
        yield th.read("x")
        yield th.release("m")

    streamed = []
    trace = run_program(Program(main), seed=9, sink=streamed.append)
    assert streamed == trace.events


def test_online_detection_during_execution():
    """A detector attached as the scheduler's sink sees races live."""
    tool = FastTrack()

    def main(th):
        child = yield th.fork(worker)
        yield th.write("x")
        yield th.join(child)

    def worker(th):
        yield th.write("x")

    run_program(Program(main), seed=1, sink=tool.handle)
    assert tool.has_warned("x")
