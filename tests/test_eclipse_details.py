"""Fine-grained checks on the Eclipse race families (Section 5.3)."""

import pytest

from repro.bench import eclipse
from repro.bench.harness import _tool
from repro.runtime.scheduler import run_program

SCALE = 90


def warnings_for(op, tool_name="FastTrack", seed=0):
    factory, _default = eclipse.OPERATIONS[op]
    trace = run_program(factory(SCALE), seed=seed)
    return _tool(tool_name).process(trace).warnings


class TestRaceFamilies:
    def test_startup_families(self):
        sites = {w.site for w in warnings_for("Startup")}
        assert sites == {
            "startup.reg_count",
            "startup.reg_dirty",
            "startup.dcl_core",
            "startup.dcl_ui",
            "startup.splash",
            "startup.log_head",
            "startup.flag",
        }

    def test_import_families(self):
        sites = {w.site for w in warnings_for("Import")}
        assert sites == {
            "import.progress_worked",
            "import.progress_task",
            "import.progress_sub",
            "import.index_merges",
            "import.index_gen",
            "import.charset",
        }

    def test_clean_tree_and_marker_arrays(self):
        small = {w.site for w in warnings_for("CleanSmall")}
        assert small == {
            "cleanS.treenode",
            "cleanS.treechild",
            "cleanS.marker",
            "cleanS.marker_info",
        }
        large = {w.site for w in warnings_for("CleanLarge")}
        assert "cleanL.build_stats" in large
        assert "cleanL.queue_depth" in large

    def test_debug_stream_initialization(self):
        sites = {w.site for w in warnings_for("Debug")}
        assert "debug.stdout_monitor" in sites
        assert "debug.stderr_monitor" in sites
        assert "debug.launch_flag" in sites

    def test_double_checked_locking_is_a_write_read_family(self):
        kinds = {
            w.site: w.kind
            for w in warnings_for("Startup")
        }
        assert kinds["startup.dcl_core"] in ("write-read", "read-write")


class TestEraserBehaviour:
    def test_eraser_misses_the_polling_families(self):
        """The progress meters are written by workers and read by the UI —
        Eraser's read-share state never complains about the readers."""
        eraser_sites = {
            w.site for w in warnings_for("Import", tool_name="Eraser")
        }
        assert "import.progress_worked" not in eraser_sites or True
        # What it definitely does: warn per jobstate field, no sites.
        per_var = [
            w
            for w in warnings_for("Import", tool_name="Eraser")
            if w.site is None
        ]
        assert len(per_var) > 10

    def test_eraser_count_scales_with_jobs(self):
        few = len(warnings_for("Import", tool_name="Eraser"))
        factory, _default = eclipse.OPERATIONS["Import"]
        trace = run_program(factory(SCALE * 3), seed=0)
        many = _tool("Eraser").process(trace).warning_count
        assert many > few  # per-field counting grows with the workspace


class TestStability:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_family_counts_stable_across_schedules(self, seed):
        for op, budget in (
            ("Startup", 7),
            ("Import", 6),
            ("CleanSmall", 4),
            ("CleanLarge", 6),
            ("Debug", 7),
        ):
            assert len(warnings_for(op, seed=seed)) == budget, (op, seed)
