"""Unit tests for the service building blocks: metrics registry, bounded
job queue, disk job store, and the URL router."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.queue import JobQueue, QueueClosed, QueueFull
from repro.service.routes import Router
from repro.service.store import JobStore


class TestMetrics:
    def test_counter_renders_with_sorted_labels(self):
        registry = MetricsRegistry()
        jobs = registry.counter("jobs_total", "jobs")
        jobs.inc(state="done")
        jobs.inc(2, state="failed")
        text = registry.render()
        assert "# HELP jobs_total jobs" in text
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{state="done"} 1' in text
        assert 'jobs_total{state="failed"} 2' in text

    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c_total", "c").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth", "queue depth")
        depth.inc()
        depth.inc()
        depth.dec()
        assert depth.value() == 1
        depth.set(7.5)
        assert "depth 7.5" in registry.render()

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        latency = registry.histogram(
            "lat_seconds", "latency", buckets=(0.1, 1.0)
        )
        latency.observe(0.05, route="/x")
        latency.observe(0.5, route="/x")
        latency.observe(5.0, route="/x")
        text = registry.render()
        assert 'lat_seconds_bucket{route="/x",le="0.1"} 1' in text
        assert 'lat_seconds_bucket{route="/x",le="1"} 2' in text
        assert 'lat_seconds_bucket{route="/x",le="+Inf"} 3' in text
        assert 'lat_seconds_count{route="/x"} 3' in text
        assert latency.count(route="/x") == 3

    def test_registration_is_idempotent_but_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("n_total", "n")
        assert registry.counter("n_total", "n") is first
        with pytest.raises(ValueError):
            registry.gauge("n_total", "n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("e_total", "e")
        counter.inc(path='a"b\\c\nd')
        assert 'path="a\\"b\\\\c\\nd"' in registry.render()


class TestJobQueue:
    def test_fifo_and_depth(self):
        queue = JobQueue(maxsize=4)
        queue.put("a")
        queue.put("b")
        assert queue.depth == 2
        assert queue.get(timeout=0.01) == "a"
        assert queue.get(timeout=0.01) == "b"
        assert queue.get(timeout=0.01) is None

    def test_put_fails_fast_at_capacity(self):
        queue = JobQueue(maxsize=1)
        queue.put("a")
        with pytest.raises(QueueFull) as excinfo:
            queue.put("b")
        assert excinfo.value.depth == 1
        assert excinfo.value.maxsize == 1
        # Restart recovery forces past the bound.
        queue.put("b", force=True)
        assert queue.depth == 2

    def test_close_rejects_producers_and_wakes_consumers(self):
        queue = JobQueue(maxsize=2)
        seen = []

        def consume():
            seen.append(queue.get(timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        queue.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert seen == [None]
        with pytest.raises(QueueClosed):
            queue.put("x")

    def test_rejects_non_positive_maxsize(self):
        with pytest.raises(ValueError):
            JobQueue(maxsize=0)


SPEC = {"tools": ["FastTrack"], "shards": 1, "kernel": "auto",
        "format": "text"}


class TestJobStore:
    def test_create_read_update_roundtrip(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.create(SPEC)
        assert record["state"] == "queued"
        assert store.read(record["id"])["tools"] == ["FastTrack"]
        store.update(record["id"], state="running", started=1.0)
        assert store.read(record["id"])["state"] == "running"
        assert store.read("no-such-job") is None
        assert store.update("no-such-job", state="done") is None

    def test_listing_is_creation_order(self, tmp_path):
        store = JobStore(str(tmp_path))
        ids = [store.create(SPEC)["id"] for _ in range(5)]
        assert [r["id"] for r in store.list_jobs()] == ids

    def test_result_roundtrip(self, tmp_path):
        store = JobStore(str(tmp_path))
        job_id = store.create(SPEC)["id"]
        assert store.read_result(job_id) is None
        store.write_result(job_id, {"schema": "repro.result/1", "tool": "F"})
        assert store.read_result(job_id)["tool"] == "F"

    def test_recoverable_excludes_terminal_jobs(self, tmp_path):
        store = JobStore(str(tmp_path))
        queued = store.create(SPEC)["id"]
        running = store.create(SPEC)["id"]
        done = store.create(SPEC)["id"]
        store.update(running, state="running")
        store.update(done, state="done", finished=1.0)
        assert {r["id"] for r in store.recoverable()} == {queued, running}

    def test_ttl_evicts_only_expired_terminal_jobs(self, tmp_path):
        store = JobStore(str(tmp_path), ttl_seconds=100.0)
        fresh = store.create(SPEC)["id"]
        stale = store.create(SPEC)["id"]
        active = store.create(SPEC)["id"]
        store.update(fresh, state="done", finished=1000.0)
        store.update(stale, state="failed", finished=500.0)
        evicted = store.evict_expired(now=1050.0)
        assert evicted == [stale]
        assert store.read(stale) is None
        assert store.read(fresh) is not None
        assert store.read(active) is not None


class TestRouter:
    @staticmethod
    def _router():
        router = Router()
        router.add("POST", "/v1/jobs", "submit")
        router.add("GET", "/v1/jobs/{id}", "status")
        router.add("GET", "/v1/jobs/{id}/result", "result")
        return router

    def test_resolves_with_params(self):
        match = self._router().resolve("GET", "/v1/jobs/abc123")
        assert match.route.handler == "status"
        assert match.params == {"id": "abc123"}

    def test_longer_path_is_a_different_route(self):
        match = self._router().resolve("GET", "/v1/jobs/abc123/result")
        assert match.route.handler == "result"
        assert match.params == {"id": "abc123"}

    def test_unknown_path_versus_wrong_method(self):
        router = self._router()
        missing = router.resolve("GET", "/nope")
        assert missing.route is None and missing.allowed == ()
        wrong_method = router.resolve("DELETE", "/v1/jobs/abc")
        assert wrong_method.route is None
        assert wrong_method.allowed == ("GET",)

    def test_placeholder_does_not_span_segments(self):
        assert self._router().resolve("GET", "/v1/jobs/a/b/c").route is None
