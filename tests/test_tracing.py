"""Cross-process trace integrity, exemplars, and the live ops surface.

The tentpole contract under test: every record a traced run emits — in
the parent *or* in an engine pool worker, fork or spawn — carries the
same ``trace_id``, every span's parent resolves inside the stitched
tree, and the per-pid span files a multi-process run writes all pass
schema validation.  Plus the satellites that ride on it: sanitized
``X-Repro-Trace-Id`` propagation through the daemon, the ``/debug``
snapshot showing an in-flight job's *current* stage, histogram
exemplars pinning outlier latencies to jobs, and the critical-path
computation ``repro profile`` prints.
"""

import json
import multiprocessing
import random
import time
import urllib.request

import pytest

from repro import engine, faults, obs
from repro.detectors import default_tool_kwargs
from repro.obs import profile as obs_profile
from repro.obs import telemetry, top as obs_top
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracecontext import clean_trace_id
from repro.service.client import Client
from repro.service.server import ServiceConfig, start_in_thread
from repro.trace import events as ev
from repro.trace.serialize import dumps


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    if obs.enabled():
        obs.disable()
    yield
    if obs.enabled():
        obs.disable()


@pytest.fixture
def racy_file(tmp_path):
    trace = [
        ev.wr(1, "x", site="a"),
        ev.acq(1, "m"), ev.rel(1, "m"),
        ev.acq(2, "m"), ev.rel(2, "m"),
        *[
            event
            for tid in (1, 2)
            for n in range(40)
            for event in (ev.rd(tid, f"v{n}"), ev.wr(tid, f"v{n}"))
        ],
        ev.wr(2, "x", site="b"),
    ]
    path = tmp_path / "racy.trace"
    path.write_text(dumps(trace))
    return str(path)


class TestCleanTraceId:
    def test_accepts_sane_ids(self):
        assert clean_trace_id("abc-DEF_1.2") == "abc-DEF_1.2"
        assert clean_trace_id("a" * 64) == "a" * 64

    def test_rejects_garbage(self):
        assert clean_trace_id(None) is None
        assert clean_trace_id("") is None
        assert clean_trace_id("a" * 65) is None
        assert clean_trace_id("has space") is None
        assert clean_trace_id("new\nline") is None
        assert clean_trace_id("páth") is None


class TestTraceScope:
    def test_spans_carry_the_bound_trace_id(self, tmp_path):
        obs.enable(str(tmp_path))
        default = obs.current_trace_id()
        assert default  # the sink minted one
        with obs.trace_scope("job-trace-1"):
            assert obs.current_trace_id() == "job-trace-1"
            with obs.span("inside"):
                pass
        with obs.span("outside"):
            pass
        obs.disable()
        records = {
            r["name"]: r
            for r in obs.read_all_spans(str(tmp_path))
            if r["type"] == "span"
        }
        assert records["inside"]["trace_id"] == "job-trace-1"
        assert records["outside"]["trace_id"] == default

    def test_scopes_are_per_thread(self, tmp_path):
        import threading

        obs.enable(str(tmp_path))
        seen = {}

        def worker(name):
            with obs.trace_scope(f"trace-{name}"):
                time.sleep(0.02)
                seen[name] = obs.current_trace_id()
                with obs.span(f"span-{name}"):
                    pass

        threads = [
            threading.Thread(target=worker, args=(str(n),)) for n in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        obs.disable()
        assert seen == {"0": "trace-0", "1": "trace-1", "2": "trace-2"}
        records = [
            r for r in obs.read_all_spans(str(tmp_path))
            if r["type"] == "span"
        ]
        for record in records:
            name = record["name"].split("-")[-1]
            assert record["trace_id"] == f"trace-{name}"


class TestCrossProcessIntegrity:
    """The acceptance gate: a sharded run's workers write real span
    files that stitch into one tree under one trace id."""

    def test_sharded_run_stitches_to_one_trace(self, racy_file, tmp_path):
        directory = tmp_path / "tel"
        directory.mkdir()
        obs.enable(str(directory))
        trace_id = obs.current_trace_id()
        try:
            with obs.span("check", trace=racy_file, jobs=2):
                engine.check_trace_file(
                    racy_file,
                    tool="FastTrack",
                    nshards=4,
                    jobs=2,
                    tool_kwargs=default_tool_kwargs("FastTrack"),
                )
        finally:
            obs.disable()
        # Workers wrote their own spans-<pid>.jsonl next to spans.jsonl.
        files = obs.span_files(str(directory))
        assert len(files) >= 2, files
        # Every file validates against the record schema (multi-pid);
        # validate_telemetry_dir raises on any malformed record.
        assert obs.validate_telemetry_dir(str(directory)) > 0
        records = obs.read_all_spans(str(directory))
        spans = [r for r in records if r["type"] == "span"]
        pids = {r["pid"] for r in spans}
        assert len(pids) >= 2, pids
        # One trace id across every process.
        assert {r["trace_id"] for r in spans} == {trace_id}
        traces = obs.stitch_traces(records)
        assert set(traces) == {trace_id}
        entry = traces[trace_id]
        # Every parent resolves: the only root is the top-level span.
        assert [root["name"] for root in entry["roots"]] == ["check"]
        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        # The worker-side stages are real records now, one per shard.
        for stage in ("shard.analyze", "shard.attach", "shard.kernel"):
            assert len(by_name[stage]) == 4, stage
        # shard.analyze parents are the parent-side engine.analyze span.
        (analyze,) = by_name["engine.analyze"]
        for span in by_name["shard.analyze"]:
            assert span["parent"] == analyze["id"]
            assert span["attrs"]["queue_wait_s"] >= 0.0
        # The stitched report renders with a critical-path line.
        report = obs.render_trace_report(records, str(directory))
        assert f"trace {trace_id}" in report
        assert "critical path:" in report

    def test_fork_inherited_sink_reopens_per_pid(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        directory = str(tmp_path / "tel")
        obs.enable(directory)
        parent_trace = obs.current_trace_id()
        with obs.span("parent.op"):
            pass

        def child():
            # The forked child inherits the live sink object; its first
            # write must land in its own spans-<pid>.jsonl, under the
            # same trace, with a fresh span-id prefix.
            with obs.span("child.op"):
                pass

        context = multiprocessing.get_context("fork")
        process = context.Process(target=child)
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        obs.disable()
        assert obs.validate_telemetry_dir(directory) > 0
        files = obs.span_files(directory)
        assert len(files) == 2, files
        assert telemetry.worker_spans_filename(process.pid) in files[1]
        spans = {
            r["name"]: r
            for r in obs.read_all_spans(directory)
            if r["type"] == "span"
        }
        assert spans["parent.op"]["pid"] != spans["child.op"]["pid"]
        assert spans["child.op"]["trace_id"] == parent_trace
        assert spans["child.op"]["id"] != spans["parent.op"]["id"]

    @pytest.mark.parametrize("seed", range(5))
    def test_stitching_fuzz_preserves_every_span(self, seed, tmp_path):
        """Randomized trees scattered across per-pid files: stitching
        must keep every span, resolve every present parent, and root
        every orphan — never drop or duplicate a record."""
        rng = random.Random(seed)
        traces = [f"trace-{n}" for n in range(rng.randint(1, 3))]
        pids = [1000 + n for n in range(rng.randint(1, 4))]
        spans, by_file = [], {pid: [] for pid in pids}
        for number in range(rng.randint(5, 40)):
            trace_id = rng.choice(traces)
            candidates = [s for s in spans if s["trace_id"] == trace_id]
            parent = (
                rng.choice(candidates)["id"]
                if candidates and rng.random() < 0.7
                else (f"missing-{number}" if rng.random() < 0.2 else None)
            )
            pid = rng.choice(pids)
            span = {
                "type": "span", "id": f"s{number:04d}", "parent": parent,
                "name": rng.choice(["a", "b", "c"]),
                "trace_id": trace_id, "pid": pid,
                "start_unix": rng.random() * 10,
                "wall_s": rng.random(), "cpu_s": 0.0,
                "status": "ok", "attrs": {},
            }
            spans.append(span)
            by_file[pid].append(span)
        directory = tmp_path / f"fuzz-{seed}"
        directory.mkdir()
        (directory / telemetry.SPANS_FILENAME).write_text(
            "".join(json.dumps(s) + "\n" for s in by_file[pids[0]])
        )
        for pid in pids[1:]:
            (directory / telemetry.worker_spans_filename(pid)).write_text(
                "".join(json.dumps(s) + "\n" for s in by_file[pid])
            )
        records = obs.read_all_spans(str(directory))
        stitched = obs.stitch_traces(records)
        total = sum(len(e["spans"]) for e in stitched.values())
        assert total == len(spans)
        for entry in stitched.values():
            ids = {span["id"] for span in entry["spans"]}
            in_children = sum(
                len(kids) for kids in entry["children"].values()
            )
            assert in_children + len(entry["roots"]) == len(entry["spans"])
            for span in entry["spans"]:
                parent = span.get("parent")
                if parent is not None and parent in ids:
                    assert span in entry["children"][parent]
                else:
                    assert span in entry["roots"]
            path = obs_profile.critical_path(entry["spans"])
            assert len(path) <= len(entry["spans"])


class TestCriticalPath:
    def test_descends_into_the_last_finishing_child(self):
        spans = [
            {"type": "span", "id": "a", "parent": None, "name": "root",
             "start_unix": 0.0, "wall_s": 1.0, "cpu_s": 0, "status": "ok"},
            {"type": "span", "id": "b", "parent": "a", "name": "fast",
             "start_unix": 0.0, "wall_s": 0.4, "cpu_s": 0, "status": "ok"},
            {"type": "span", "id": "c", "parent": "a", "name": "slow",
             "start_unix": 0.4, "wall_s": 0.55, "cpu_s": 0, "status": "ok"},
        ]
        assert [s["id"] for s in obs.critical_path(spans)] == ["a", "c"]

    def test_zero_duration_markers_never_bound_the_path(self):
        spans = [
            {"type": "span", "id": "a", "parent": None, "name": "root",
             "start_unix": 0.0, "wall_s": 1.0, "cpu_s": 0, "status": "ok"},
            {"type": "span", "id": "b", "parent": "a", "name": "work",
             "start_unix": 0.0, "wall_s": 0.9, "cpu_s": 0, "status": "ok"},
            {"type": "span", "id": "m", "parent": "a", "name": "summary",
             "start_unix": 0.99, "wall_s": 0.0, "cpu_s": 0, "status": "ok"},
        ]
        assert [s["id"] for s in obs.critical_path(spans)] == ["a", "b"]


class TestExemplars:
    def test_histogram_keeps_the_slowest_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "test")
        for n in range(20):
            hist.observe(
                float(n), exemplar={"job": f"job-{n}"}, tool="FastTrack"
            )
        rows = hist.exemplars(tool="FastTrack")
        assert len(rows) == hist.MAX_EXEMPLARS
        assert [row["value"] for row in rows] == [19.0, 18.0, 17.0, 16.0, 15.0]
        assert rows[0]["job"] == "job-19"

    def test_observations_without_exemplars_cost_nothing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "test")
        hist.observe(1.0, tool="x")
        assert hist.exemplars(tool="x") == []
        (series,) = hist.samples()
        assert "exemplars" not in series

    def test_all_exemplars_cross_label_sets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "test")
        hist.observe(1.0, exemplar={"job": "a"}, tool="x")
        hist.observe(3.0, exemplar={"job": "b"}, tool="y")
        rows = hist.all_exemplars()
        assert [row["job"] for row in rows] == ["b", "a"]
        assert rows[0]["labels"] == {"tool": "y"}


@pytest.fixture
def hang_plan():
    plan = faults.parse_plan(json.dumps({
        "schema": "repro.faults/1",
        "faults": [
            {"point": "worker.hang", "action": "hang", "delay_s": 1.2},
        ],
    }))
    faults.install(plan)
    yield plan
    faults.clear()


class TestServiceOpsSurface:
    def test_trace_header_roundtrip_and_worker_spans(
        self, racy_file, tmp_path
    ):
        tel = tmp_path / "tel"
        handle = start_in_thread(ServiceConfig(
            port=0, workers=1, store_dir=str(tmp_path / "store"),
            telemetry=str(tel), default_shards=2,
        ))
        try:
            client = Client(port=handle.port, timeout=30.0)
            job = client.submit(path=racy_file, trace_id="trace-roundtrip-1")
            assert job["trace_id"] == "trace-roundtrip-1"
            client.wait(job["id"], timeout=60.0, poll=0.05)
            assert client.status(job["id"])["trace_id"] == "trace-roundtrip-1"
            # A second submission without a header gets a minted id.
            minted = client.submit(path=racy_file)
            assert minted["trace_id"] and minted["trace_id"] != job["trace_id"]
            client.wait(minted["id"], timeout=60.0, poll=0.05)
        finally:
            handle.stop(grace=5.0)
        spans = [
            r for r in obs.read_all_spans(str(tel))
            if r["type"] == "span"
        ]
        mine = [s for s in spans if s["trace_id"] == "trace-roundtrip-1"]
        names = {s["name"] for s in mine}
        assert {"job.run", "engine.analyze", "shard.analyze"} <= names
        # The job's spans and the other job's never share a trace.
        assert all(
            s["trace_id"] in ("trace-roundtrip-1", minted["trace_id"])
            for s in spans
        )

    def test_bad_header_is_replaced_not_echoed(self, racy_file, tmp_path):
        handle = start_in_thread(ServiceConfig(
            port=0, workers=1, store_dir=str(tmp_path / "store"),
        ))
        try:
            request = urllib.request.Request(
                f"http://127.0.0.1:{handle.port}/v1/jobs?tool=FastTrack",
                data=open(racy_file, "rb").read(),
                headers={
                    "Content-Type": "text/plain",
                    "X-Repro-Trace-Id": "bad id with spaces!",
                },
                method="POST",
            )
            with urllib.request.urlopen(request) as response:
                record = json.loads(response.read())
            assert record["trace_id"]
            assert record["trace_id"] != "bad id with spaces!"
            assert clean_trace_id(record["trace_id"]) == record["trace_id"]
        finally:
            handle.stop(grace=5.0)

    def test_debug_shows_inflight_stage_live(
        self, racy_file, tmp_path, hang_plan
    ):
        handle = start_in_thread(ServiceConfig(
            port=0, workers=1, store_dir=str(tmp_path / "store"),
        ))
        try:
            client = Client(port=handle.port, timeout=30.0)
            job = client.submit(path=racy_file)
            # The injected worker.hang holds the job in its analyze
            # stage; /debug must show it in flight with that stage.
            deadline = time.monotonic() + 10.0
            stage = None
            while time.monotonic() < deadline:
                snapshot = client.debug()
                inflight = {
                    row["job"]: row for row in snapshot["inflight"]
                }
                if job["id"] in inflight:
                    stage = inflight[job["id"]]["stage"]
                    if stage.startswith("analyze:"):
                        break
                time.sleep(0.05)
            assert stage == "analyze:FastTrack", stage
            assert snapshot["schema"] == "repro.debug/1"
            assert snapshot["queue_depth"] == 0
            client.wait(job["id"], timeout=60.0, poll=0.05)
            snapshot = client.debug()
            assert snapshot["inflight"] == []
            assert snapshot["jobs"].get("done") == 1
            # The finished job surfaced as a latency exemplar.
            assert any(
                row["job"] == job["id"] for row in snapshot["slowest"]
            )
            # And the HTML rendering serves the same snapshot.
            html = urllib.request.urlopen(
                f"http://127.0.0.1:{handle.port}/debug"
            ).read().decode("utf-8")
            assert "repro serve" in html and job["id"] in html
            # repro top renders the service snapshot without error.
            frame = obs_top.render_top(snapshot)
            assert "repro top" in frame and "done=1" in frame
        finally:
            handle.stop(grace=5.0)

    def test_top_renders_local_telemetry_dir(self, racy_file, tmp_path):
        directory = str(tmp_path / "tel")
        obs.enable(directory)
        try:
            engine.check_trace_file(
                racy_file,
                tool="FastTrack",
                nshards=2,
                jobs=1,
                tool_kwargs=default_tool_kwargs("FastTrack"),
            )
        finally:
            obs.disable()
        snapshot = obs_top.snapshot_from_telemetry(directory)
        assert snapshot["traces"] and snapshot["slowest"]
        frame = obs_top.render_telemetry_top(snapshot)
        assert "repro top — telemetry" in frame
        assert "critical path:" in frame
