"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.epoch
import repro.core.vectorclock
import repro.obs.metrics
import repro.trace.serialize

MODULES = [
    repro.core.epoch,
    repro.core.vectorclock,
    repro.obs.metrics,
    repro.trace.serialize,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_doctests(module):
    results = doctest.testmod(
        module, verbose=False, extraglobs={}, raise_on_error=False
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s)"
    assert results.attempted > 0, "expected at least one example"
