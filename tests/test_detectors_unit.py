"""Per-detector unit tests: BasicVC, DJIT+, MultiRace, Goldilocks, Empty,
and the registry."""

import pytest

from repro.detectors import (
    BasicVC,
    DJITPlus,
    Empty,
    Goldilocks,
    MultiRace,
    DETECTORS,
    PRECISE_DETECTORS,
    make_detector,
)
from repro.trace import events as ev

RACY = [ev.fork(0, 1), ev.wr(0, "x"), ev.wr(1, "x")]
ORDERED = [ev.wr(0, "x"), ev.fork(0, 1), ev.wr(1, "x")]
LOCKED = [
    ev.acq(0, "m"),
    ev.wr(0, "x"),
    ev.rel(0, "m"),
    ev.acq(1, "m"),
    ev.rd(1, "x"),
    ev.wr(1, "x"),
    ev.rel(1, "m"),
]


class TestEmpty:
    def test_processes_everything_and_says_nothing(self):
        tool = Empty().process(RACY + LOCKED)
        assert tool.warnings == []
        assert tool.stats.events == len(RACY) + len(LOCKED)
        assert tool.shadow_memory_words() == 0


class TestBasicVC:
    def test_detects_each_race_kind(self):
        assert BasicVC().process(RACY).warnings[0].kind == "write-write"
        wr_rd = [ev.fork(0, 1), ev.wr(0, "x"), ev.rd(1, "x")]
        assert BasicVC().process(wr_rd).warnings[0].kind == "write-read"
        rd_wr = [ev.fork(0, 1), ev.rd(1, "x"), ev.wr(0, "x")]
        assert BasicVC().process(rd_wr).warnings[0].kind == "read-write"

    def test_every_access_pays_a_vc_comparison(self):
        tool = BasicVC().process(LOCKED)
        # 1 per read + 2 per write, plus sync joins.
        assert tool.stats.vc_ops >= 1 + 2 * 2

    def test_two_vcs_allocated_per_location(self):
        tool = BasicVC().process([ev.rd(0, "x"), ev.rd(0, "y")])
        # 2 per variable + 1 per thread state.
        assert tool.stats.vc_allocs == 5


class TestDJITPlus:
    def test_same_epoch_fast_path_skips_vc_ops(self):
        tool = DJITPlus().process(
            [ev.rd(0, "x"), ev.rd(0, "x"), ev.rd(0, "x")]
        )
        assert tool.stats.rules["DJIT+ READ"] == 1  # only the first read
        assert tool.stats.vc_ops == 1

    def test_matches_basicvc_verdicts(self):
        for trace in (RACY, ORDERED, LOCKED):
            assert (
                DJITPlus().process(trace).warning_count
                == BasicVC().process(trace).warning_count
            )

    def test_release_starts_new_epoch(self):
        tool = DJITPlus().process(
            [
                ev.rd(0, "x"),
                ev.acq(0, "m"),
                ev.rel(0, "m"),
                ev.rd(0, "x"),  # new epoch: full rule again
            ]
        )
        assert tool.stats.rules["DJIT+ READ"] == 2


class TestMultiRace:
    def test_thread_local_phase_skips_checks(self):
        tool = MultiRace().process([ev.wr(0, "x"), ev.rd(0, "x")])
        assert tool.stats.vc_ops <= 0 + 0  # no comparisons at all
        assert tool.warnings == []

    def test_lockset_phase_skips_checks(self):
        tool = MultiRace().process(LOCKED)
        assert tool.warnings == []

    def test_switches_to_vc_mode_when_lockset_empties(self):
        tool = MultiRace().process(RACY)
        assert tool.warning_count == 1

    def test_read_share_forgiveness_misses_race(self):
        # Write by one thread, unordered read by another: a real race that
        # the Eraser-style ownership machine hides from the VC checks.
        trace = [ev.fork(0, 1), ev.wr(1, "x"), ev.rd(0, "x")]
        assert MultiRace().process(trace).warnings == []

    def test_uses_fewer_vc_ops_than_djit(self):
        trace = LOCKED * 10
        multirace = MultiRace().process(trace)
        djit = DJITPlus().process(trace)
        assert multirace.stats.vc_ops <= djit.stats.vc_ops


class TestGoldilocks:
    def test_lock_transfer_rule(self):
        tool = Goldilocks().process(LOCKED)
        assert tool.warnings == []

    def test_fork_join_transfer_rules(self):
        trace = [
            ev.wr(0, "x"),
            ev.fork(0, 1),
            ev.rd(1, "x"),
            ev.join(0, 1),
            ev.wr(0, "x"),
        ]
        assert Goldilocks().process(trace).warnings == []

    def test_volatile_transfer_rules(self):
        trace = [
            ev.fork(0, 1),
            ev.wr(0, "x"),
            ev.vol_wr(0, "v"),
            ev.vol_rd(1, "v"),
            ev.rd(1, "x"),
        ]
        assert Goldilocks().process(trace).warnings == []

    def test_barrier_transfer_rule(self):
        trace = [
            ev.fork(0, 1),
            ev.wr(0, "x"),
            ev.barrier_rel((0, 1)),
            ev.rd(1, "x"),
        ]
        assert Goldilocks().process(trace).warnings == []

    def test_detects_races(self):
        assert Goldilocks().process(RACY).warning_count == 1

    def test_read_records_keep_per_reader_precision(self):
        trace = [
            ev.fork(0, 1),
            ev.fork(0, 2),
            ev.rd(1, "x"),
            ev.rd(2, "x"),
            ev.join(0, 1),
            ev.wr(0, "x"),  # still races with thread 2's read
        ]
        tool = Goldilocks().process(trace)
        assert [w.kind for w in tool.warnings] == ["read-write"]

    def test_flush_keeps_event_list_bounded(self):
        tool = Goldilocks(flush_threshold=8)
        events = []
        for round_ in range(50):
            events.append(ev.acq(0, "m"))
            events.append(ev.rel(0, "m"))
        tool.process(events)
        assert len(tool._sync_events) < 8

    def test_unsound_extension_forgives_two_thread_races(self):
        tool = Goldilocks(unsound_thread_local=True).process(RACY)
        assert tool.warnings == []
        # ...but a third thread is still caught.
        three = RACY + [ev.fork(0, 2), ev.wr(2, "x")]
        tool3 = Goldilocks(unsound_thread_local=True).process(three)
        assert tool3.warning_count == 1


class TestRegistry:
    def test_all_registered_tools(self):
        assert list(DETECTORS) == [
            "Empty",
            "Eraser",
            "MultiRace",
            "Goldilocks",
            "BasicVC",
            "DJIT+",
            "FastTrack",
            "WCP",
            "AsyncFinish",
        ]

    def test_precise_subset(self):
        for name in PRECISE_DETECTORS:
            assert DETECTORS[name].precise

    def test_make_detector(self):
        assert make_detector("DJIT+").name == "DJIT+"
        with pytest.raises(ValueError, match="unknown detector"):
            make_detector("TSan")
