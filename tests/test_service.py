"""Integration tests for the ``repro serve`` daemon.

The daemon runs in-process (ephemeral port, temp store) so the tests
exercise the real HTTP stack — chunked uploads, JSON envelopes, status
codes, the Prometheus endpoint — without fixed ports or subprocesses.

The centerpiece is the equivalence matrix: for every golden-corpus
trace and every warning-producing tool, the bytes served by
``GET /v1/jobs/{id}/result`` must equal the bytes printed by
``repro check --json`` exactly.
"""

import io
import json
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro import cli
from repro.bench.harness import WARNING_TOOLS
from repro.service.client import Client, JobFailed, ServiceError
from repro.service.server import ServiceConfig, start_in_thread
from repro.trace import serialize

DATA = Path(__file__).parent / "data"
MANIFEST = json.loads((DATA / "manifest.json").read_text())


def _check_json(argv):
    """Capture exactly what ``repro check --json`` prints."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli.main(["check", *argv, "--json"])
    assert code in (0, 1)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    store = tmp_path_factory.mktemp("service-store")
    handle = start_in_thread(
        ServiceConfig(port=0, workers=2, store_dir=str(store))
    )
    try:
        yield handle
    finally:
        handle.stop(grace=5.0)


@pytest.fixture(scope="module")
def client(daemon):
    return Client(port=daemon.port, timeout=30.0)


def test_healthz_reports_ok(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["workers"] == 2
    assert "queue_depth" in health and "jobs" in health


@pytest.mark.parametrize("tool_name", WARNING_TOOLS)
@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_result_bit_identical_to_check_json(client, name, tool_name):
    trace_path = DATA / f"{name}.trace"
    job = client.submit(path=str(trace_path), tools=[tool_name])
    client.wait(job["id"], timeout=120.0, poll=0.05)
    served = client.result_bytes(job["id"]).decode("utf-8")
    expected = _check_json([str(trace_path), "--tool", tool_name])
    assert served == expected, (name, tool_name)


def test_multi_tool_job_returns_result_set(client):
    trace_path = DATA / "figure4.trace"
    job = client.submit(path=str(trace_path), tools=["FastTrack", "Eraser"])
    document = client.wait(job["id"], timeout=120.0, poll=0.05)
    assert document["schema"] == "repro.result-set/1"
    assert sorted(document["results"]) == ["Eraser", "FastTrack"]
    for result in document["results"].values():
        assert result["schema"] == "repro.result/1"


def test_jsonl_streaming_upload_matches_text(client, tmp_path):
    trace = serialize.loads((DATA / "figure4.trace").read_text())
    jsonl_path = tmp_path / "figure4.jsonl"
    jsonl_path.write_text(serialize.dumps_jsonl(trace))
    text_job = client.submit(path=str(DATA / "figure4.trace"))
    jsonl_job = client.submit(path=str(jsonl_path), fmt="jsonl")
    from_text = client.wait(text_job["id"], timeout=60.0, poll=0.05)
    from_jsonl = client.wait(jsonl_job["id"], timeout=60.0, poll=0.05)
    assert from_jsonl["warnings"] == from_text["warnings"]
    assert from_jsonl["stats"] == from_text["stats"]


def test_inline_envelope_submissions(client):
    text = (DATA / "figure4.trace").read_text()
    records = [
        json.loads(line)
        for line in serialize.dumps_jsonl(serialize.loads(text)).splitlines()
    ]
    by_text = client.wait(
        client.submit(text=text)["id"], timeout=60.0, poll=0.05
    )
    by_events = client.wait(
        client.submit(events=records)["id"], timeout=60.0, poll=0.05
    )
    assert by_events["warnings"] == by_text["warnings"]


def test_status_exposes_shard_progress(client):
    job = client.submit(path=str(DATA / "figure4.trace"))
    client.wait(job["id"], timeout=60.0, poll=0.05)
    record = client.status(job["id"])
    assert record["state"] == "done"
    progress = record["progress"]
    assert progress["shards_done"] == progress["shards_total"] == 1
    assert progress["events"] == MANIFEST["figure4"]["events"]
    assert progress["tools_done"] == progress["tools_total"] == 1


def test_validation_failures_return_400(client):
    trace = str(DATA / "figure4.trace")
    for kwargs in (
        {"tools": ["NoSuchTool"]},
        {"shards": 0},
        {"kernel": "warp"},
        {"fmt": "csv"},
    ):
        with pytest.raises(ServiceError) as excinfo:
            client.submit(path=trace, **kwargs)
        assert excinfo.value.status == 400, kwargs
    with pytest.raises(ServiceError) as excinfo:
        client._json("POST", "/v1/jobs", body=b"{}",
                     headers={"Content-Type": "application/json"})
    assert excinfo.value.status == 400


def test_unknown_job_and_unknown_path_return_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client.status("no-such-job")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client._json("GET", "/v2/everything")
    assert excinfo.value.status == 404


def test_wrong_method_returns_405_with_allow(client):
    status, _, headers = client._request("POST", "/healthz")
    assert status == 405
    assert headers.get("Allow") == "GET"


def test_result_of_unfinished_job_returns_409(client, daemon):
    record = daemon.service.store.create(
        {"tools": ["FastTrack"], "shards": 1, "kernel": "auto",
         "format": "text"}
    )
    with pytest.raises(ServiceError) as excinfo:
        client.result(record["id"])
    assert excinfo.value.status == 409
    daemon.service.store.delete(record["id"])


def test_failed_job_surfaces_error_and_raises_jobfailed(client, tmp_path):
    bad = tmp_path / "bad.trace"
    bad.write_text("this is not a trace event\n")
    job = client.submit(path=str(bad))
    with pytest.raises(JobFailed) as excinfo:
        client.wait(job["id"], timeout=60.0, poll=0.05)
    assert "TraceParseError" in str(excinfo.value)
    with pytest.raises(JobFailed):
        client.result(job["id"])


def test_metrics_scrape_mid_run_and_after(client):
    """Scrape while jobs are in flight (submitted, not yet waited) and
    assert the catalog is present and consistent afterwards."""
    trace = str(DATA / "hedc_small.trace")
    jobs = [client.submit(path=trace) for _ in range(3)]
    mid = client.metrics()  # the daemon is processing right now
    for family in (
        "repro_jobs_submitted_total",
        "repro_jobs_active",
        "repro_queue_depth",
        "repro_http_requests_total",
        "repro_http_request_seconds",
    ):
        assert f"# TYPE {family} " in mid, family
    for job in jobs:
        client.wait(job["id"], timeout=60.0, poll=0.05)
    done = client.metrics()
    assert 'repro_jobs_total{state="done"}' in done
    assert 'repro_events_processed_total{tool="FastTrack"}' in done
    assert 'repro_events_per_second{tool="FastTrack"}' in done
    # Terminal jobs left the active gauges; parse as a scraper would.
    running = [
        line for line in done.splitlines()
        if line.startswith('repro_jobs_active{state="running"}')
    ]
    assert running and float(running[0].rsplit(" ", 1)[1]) == 0.0


def test_queue_full_returns_429_with_retry_after(tmp_path):
    """With no runners draining the queue, the bound is reached and the
    daemon answers 429 + Retry-After instead of accepting silently."""
    handle = start_in_thread(
        ServiceConfig(port=0, workers=0, queue_size=2,
                      store_dir=str(tmp_path / "store"), retry_after=7)
    )
    try:
        client = Client(port=handle.port, timeout=10.0)
        trace = str(DATA / "figure4.trace")
        accepted = [client.submit(path=trace) for _ in range(2)]
        assert all(job["state"] == "queued" for job in accepted)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(path=trace)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 7.0
        assert "repro_jobs_rejected_total 1" in client.metrics()
        # The rejected job left nothing behind in the store.
        assert len(client.jobs()) == 2
    finally:
        handle.stop(grace=1.0)


def test_restart_recovers_queued_jobs(tmp_path):
    """Jobs accepted before a shutdown complete after a restart on the
    same store — the queue bound does not apply to recovered work."""
    store = str(tmp_path / "store")
    first = start_in_thread(
        ServiceConfig(port=0, workers=0, queue_size=2, store_dir=store)
    )
    try:
        client = Client(port=first.port, timeout=10.0)
        trace = str(DATA / "figure4.trace")
        pending = [client.submit(path=trace)["id"] for _ in range(2)]
    finally:
        first.stop(grace=1.0)

    second = start_in_thread(
        ServiceConfig(port=0, workers=2, queue_size=1, store_dir=store)
    )
    try:
        client = Client(port=second.port, timeout=10.0)
        expected = _check_json([trace, "--tool", "FastTrack"])
        for job_id in pending:
            client.wait(job_id, timeout=60.0, poll=0.05)
            assert client.result_bytes(job_id).decode("utf-8") == expected
        assert "repro_jobs_recovered_total 2" in client.metrics()
    finally:
        second.stop(grace=5.0)


def test_draining_daemon_refuses_submissions(tmp_path):
    handle = start_in_thread(
        ServiceConfig(port=0, workers=1, store_dir=str(tmp_path / "store"))
    )
    client = Client(port=handle.port, timeout=10.0)
    handle.service.drain(grace=2.0)
    try:
        with pytest.raises(ServiceError) as excinfo:
            client.submit(path=str(DATA / "figure4.trace"))
        assert excinfo.value.status == 503
        assert client.healthz()["status"] == "draining"
    finally:
        handle.stop(grace=1.0)
