"""E5: the worked examples of the paper, clock for clock.

Figure 4 shows how FastTrack adapts the read representation of ``x``:
``R_x`` goes ⊥e → 1@1 → ⟨8,1⟩ → ⊥e → 8@0 while ``W_x`` goes ⊥e → 7@0 → 8@0.
The Section 2.2 example shows the write-write check through a lock.
We replay both traces and assert every intermediate shadow state.
"""

from repro.core.epoch import EPOCH_BOTTOM, READ_SHARED, make_epoch
from repro.core.fasttrack import FastTrack
from repro.detectors import BasicVC, DJITPlus
from repro.trace.generators import figure4_trace, section2_trace
from repro.trace.happens_before import is_race_free


class TestFigure4:
    def test_trace_is_race_free(self):
        assert is_race_free(figure4_trace())

    def test_shadow_state_matches_figure(self):
        trace = figure4_trace()
        tool = FastTrack()
        preamble = len(trace) - 8  # warm-up releases advance C_0 to 7
        observed = []
        for index, event in enumerate(trace):
            tool.handle(event)
            if index >= preamble:
                x = tool.vars.get("x")
                observed.append(
                    (x.write_epoch, x.read_epoch, x.read_vc)
                    if x is not None
                    else None
                )

        w_70 = make_epoch(7, 0)
        w_80 = make_epoch(8, 0)
        # wr(0,x): W = 7@0, R = ⊥e
        assert observed[0][0] == w_70 and observed[0][1] == EPOCH_BOTTOM
        # fork(0,1): unchanged
        assert observed[1][0] == w_70
        # rd(1,x): R = 1@1 (thread 1's initial epoch)
        assert observed[2][1] == make_epoch(1, 1)
        # rd(0,x): concurrent reads — R = <8,1>
        assert observed[3][1] == READ_SHARED
        assert observed[3][2].as_tuple() == (8, 1)
        # rd(1,x): still <8,1> ([FT READ SHARED], no growth)
        assert observed[4][1] == READ_SHARED
        assert observed[4][2].as_tuple() == (8, 1)
        # join(0,1): unchanged
        assert observed[5][1] == READ_SHARED
        # wr(0,x): [FT WRITE SHARED] — W = 8@0, R demoted to ⊥e
        assert observed[6][0] == w_80
        assert observed[6][1] == EPOCH_BOTTOM
        assert observed[6][2] is None
        # rd(0,x): [FT READ EXCLUSIVE] — R = 8@0
        assert observed[7][1] == make_epoch(8, 0)

        assert tool.warnings == []

    def test_thread_clocks_match_figure(self):
        trace = figure4_trace()
        tool = FastTrack().process(trace)
        # Final clocks: C0 = <8,1,...>, C1 = <7,2,...>
        assert tool.threads[0].vc.as_tuple() == (8, 1)
        assert tool.threads[1].vc.as_tuple() == (7, 2)


class TestSection2Example:
    def test_no_race_reported_by_any_precise_tool(self):
        trace = section2_trace()
        assert is_race_free(trace)
        for tool_cls in (FastTrack, DJITPlus, BasicVC):
            assert tool_cls().process(trace).warnings == []

    def test_write_epoch_is_4_at_0(self):
        trace = section2_trace()
        tool = FastTrack()
        for event in trace:
            tool.handle(event)
            if "x" in tool.vars:
                break
        assert tool.vars["x"].write_epoch == make_epoch(4, 0)

    def test_acquiring_thread_learns_release_clock(self):
        tool = FastTrack().process(section2_trace())
        # After acq(1,m), C1 = <4,8,...>; the final write bumps nothing.
        assert tool.threads[1].vc.as_tuple() == (4, 8)
