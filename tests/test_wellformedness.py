"""Definition 1 / Lemmas 1–2: well-formedness of the analysis state.

A state σ = (C, L, R, W) is well-formed if

1. ∀u ≠ t:  C_u(t) < C_t(t)
2. ∀m, t:   L_m(t) < C_t(t)
3. ∀x, t:   R_x(t) ≤ C_t(t)   (interpreting epochs as functions)
4. ∀x, t:   W_x(t) ≤ C_t(t)

Lemma 1 says σ0 is well-formed; Lemma 2 says every transition preserves
well-formedness.  We check the invariant after *every* event of random
feasible traces.
"""

from hypothesis import given, settings

from repro.core.epoch import READ_SHARED, epoch_clock, epoch_tid
from repro.core.fasttrack import FastTrack
from repro.trace import events as ev
from repro.trace.generators import traces


def assert_well_formed(tool: FastTrack) -> None:
    threads = tool.threads

    def clock_of(tid: int) -> int:
        state = threads.get(tid)
        return state.vc.get(tid) if state is not None else 1

    for t, tstate in threads.items():
        for u, ustate in threads.items():
            if u != t:
                assert ustate.vc.get(t) < clock_of(t), (u, t)
        # The cached epoch invariant from Figure 5.
        assert epoch_tid(tstate.epoch) == t
        assert epoch_clock(tstate.epoch) == tstate.vc.get(t)

    for name, lock in list(tool.locks.items()) + list(tool.volatiles.items()):
        for t in threads:
            assert lock.vc.get(t) < clock_of(t), (name, t)

    for name, var in tool.vars.items():
        write_tid = epoch_tid(var.write_epoch)
        assert epoch_clock(var.write_epoch) <= clock_of(write_tid), name
        if var.read_epoch == READ_SHARED:
            for t, clock in enumerate(var.read_vc.clocks):
                if clock:
                    assert clock <= clock_of(t), name
        else:
            read_tid = epoch_tid(var.read_epoch)
            assert epoch_clock(var.read_epoch) <= clock_of(read_tid), name


def test_lemma1_initial_state_is_well_formed():
    assert_well_formed(FastTrack())


@settings(max_examples=80, deadline=None)
@given(traces())
def test_lemma2_every_transition_preserves_well_formedness(trace):
    tool = FastTrack()
    for event in trace:
        tool.handle(event)
        assert_well_formed(tool)


def test_well_formed_after_barrier():
    tool = FastTrack()
    tool.process(
        [
            ev.fork(0, 1),
            ev.rd(0, "x"),
            ev.rd(1, "x"),
            ev.barrier_rel((0, 1)),
            ev.wr(0, "x"),
        ]
    )
    assert_well_formed(tool)
