"""Round-trip tests for the columnar trace representation.

``ColumnarTrace`` is the interchange format between the streaming parsers,
the engine's shard files, and the fused kernels — all of them assume the
columns are a *lossless* encoding of the event stream.  These tests pin
that down over the golden corpus (every workload idiom the repo ships)
and over hand-built traces covering every event kind, including the
non-string target shapes (int fork/join targets, tuple barrier targets).
"""

import json
from array import array
from pathlib import Path

import pytest

from repro.trace import events as ev
from repro.trace.columnar import ColumnarTrace
from repro.trace.serialize import dumps, loads

DATA = Path(__file__).parent / "data"
MANIFEST = json.loads((DATA / "manifest.json").read_text())

ALL_KIND_EVENTS = [
    ev.Event(ev.READ, 0, "x", "a.py:1"),
    ev.Event(ev.WRITE, 1, "x", None),
    ev.Event(ev.ACQUIRE, 0, "m", "a.py:2"),
    ev.Event(ev.RELEASE, 0, "m", None),
    ev.Event(ev.FORK, 0, 1, None),
    ev.Event(ev.JOIN, 0, 1, "b.py:9"),
    ev.Event(ev.VOLATILE_READ, 1, "v", None),
    ev.Event(ev.VOLATILE_WRITE, 0, "v", "c.py:3"),
    ev.Event(ev.BARRIER_RELEASE, -1, (0, 1), None),
    ev.Event(ev.ENTER, 1, "fn", None),
    ev.Event(ev.EXIT, 1, "fn", None),
]


def events_equal(a, b):
    return [(e.kind, e.tid, e.target, e.site) for e in a] == [
        (e.kind, e.tid, e.target, e.site) for e in b
    ]


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_golden_corpus_round_trip(name):
    events = list(loads((DATA / f"{name}.trace").read_text()))
    col = ColumnarTrace.from_events(events)
    assert len(col) == len(events)
    assert events_equal(col.to_events(), events)
    # Random access agrees with sequential reconstruction.
    for index in (0, len(events) // 2, len(events) - 1):
        e = col.event_at(index)
        o = events[index]
        assert (e.kind, e.tid, e.target, e.site) == (
            o.kind,
            o.tid,
            o.target,
            o.site,
        )


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_golden_corpus_streaming_parse(name):
    """Text-format streaming parse produces the same columns as the
    object-path parse → from_events chain."""
    text = (DATA / f"{name}.trace").read_text()
    via_events = ColumnarTrace.from_events(loads(text))
    direct = ColumnarTrace.from_text_lines(text.splitlines())
    assert events_equal(direct.to_events(), via_events.to_events())


def test_all_event_kinds_round_trip():
    col = ColumnarTrace.from_events(ALL_KIND_EVENTS)
    assert events_equal(col.to_events(), ALL_KIND_EVENTS)
    assert events_equal(list(col), ALL_KIND_EVENTS)  # __iter__


def test_all_event_kinds_survive_serialized_round_trip():
    text = dumps(ALL_KIND_EVENTS)
    col = ColumnarTrace.from_text_lines(text.splitlines())
    assert events_equal(col.to_events(), loads(text))


def test_interning_is_dense_and_stable():
    col = ColumnarTrace.from_events(ALL_KIND_EVENTS)
    # Repeated targets share one id; ids are dense first-occurrence order.
    assert col.targets[col.target_ids[0]] == "x"
    assert col.target_ids[0] == col.target_ids[1]
    assert sorted(set(col.target_ids)) == list(range(len(col.targets)))
    # Missing sites map to -1, present ones intern densely.
    assert col.site_ids[1] == -1
    assert col.sites[col.site_ids[0]] == "a.py:1"


def test_max_tid_tracks_appends():
    col = ColumnarTrace()
    assert col.max_tid == -1
    col.append(ev.READ, 3, "x")
    assert col.max_tid == 3
    col.append(ev.WRITE, 1, "x")
    assert col.max_tid == 3
    # Barrier pseudo-tid (-1) never raises the max.
    col.append(ev.BARRIER_RELEASE, -1, (0, 1))
    assert col.max_tid == 3


def test_from_columns_shares_tables_and_recomputes_max_tid():
    base = ColumnarTrace.from_events(ALL_KIND_EVENTS)
    view = ColumnarTrace.from_columns(
        array("b", base.kinds[:4]),
        array("q", base.tids[:4]),
        array("q", base.target_ids[:4]),
        array("q", base.site_ids[:4]),
        base.targets,
        base.sites,
    )
    assert view.targets is base.targets
    assert view.max_tid == max(base.tids[:4])
    assert events_equal(view.to_events(), ALL_KIND_EVENTS[:4])


def test_kind_counts():
    col = ColumnarTrace.from_events(ALL_KIND_EVENTS)
    counts = col.kind_counts()
    assert counts[ev.READ] == 1
    assert sum(counts.values()) == len(ALL_KIND_EVENTS)


def test_empty_trace():
    col = ColumnarTrace.from_events([])
    assert len(col) == 0
    assert col.to_events() == []
    assert col.max_tid == -1
