"""Unit and property tests for the epoch representation (Section 3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.epoch import (
    CLOCK_BITS,
    EPOCH_BOTTOM,
    READ_SHARED,
    epoch_clock,
    epoch_leq_vc,
    epoch_tid,
    format_epoch,
    make_epoch,
)
from repro.core.vectorclock import VectorClock

clocks = st.integers(min_value=0, max_value=(1 << CLOCK_BITS) - 1)
tids = st.integers(min_value=0, max_value=4096)


class TestPacking:
    def test_bottom_is_zero_at_zero(self):
        assert EPOCH_BOTTOM == make_epoch(0, 0)
        assert epoch_clock(EPOCH_BOTTOM) == 0
        assert epoch_tid(EPOCH_BOTTOM) == 0

    def test_read_shared_is_not_a_valid_epoch(self):
        assert READ_SHARED < 0

    @given(clocks, tids)
    def test_roundtrip(self, clock, tid):
        epoch = make_epoch(clock, tid)
        assert epoch_clock(epoch) == clock
        assert epoch_tid(epoch) == tid

    @given(clocks, clocks, tids)
    def test_same_thread_epochs_compare_as_integers(self, c1, c2, tid):
        # The paper packs tid above clock precisely for this property.
        assert (make_epoch(c1, tid) <= make_epoch(c2, tid)) == (c1 <= c2)

    @given(clocks, tids, clocks, tids)
    def test_distinct_pairs_pack_distinctly(self, c1, t1, c2, t2):
        if (c1, t1) != (c2, t2):
            assert make_epoch(c1, t1) != make_epoch(c2, t2)


class TestHappensBeforeComparison:
    def test_epoch_leq_vc_basic(self):
        vc = VectorClock([5, 3, 0])
        assert epoch_leq_vc(make_epoch(5, 0), vc.clocks)
        assert not epoch_leq_vc(make_epoch(6, 0), vc.clocks)
        assert epoch_leq_vc(make_epoch(3, 1), vc.clocks)
        assert not epoch_leq_vc(make_epoch(4, 1), vc.clocks)

    def test_entries_beyond_vc_length_read_as_zero(self):
        vc = VectorClock([1])
        assert epoch_leq_vc(make_epoch(0, 7), vc.clocks)
        assert not epoch_leq_vc(make_epoch(1, 7), vc.clocks)

    def test_bottom_precedes_everything(self):
        assert epoch_leq_vc(EPOCH_BOTTOM, [])
        assert epoch_leq_vc(EPOCH_BOTTOM, [0, 0, 0])

    @given(clocks, tids, st.lists(clocks, max_size=8))
    def test_leq_matches_definition(self, clock, tid, entries):
        vc = VectorClock(entries)
        expected = clock <= vc.get(tid)
        assert epoch_leq_vc(make_epoch(clock, tid), vc.clocks) == expected

    @given(clocks, tids, st.lists(clocks, max_size=8))
    def test_epoch_function_interpretation(self, clock, tid, entries):
        # c@t ~ (lambda u. c if u == t else 0): the epoch-VC comparison is
        # the pointwise order under that interpretation (Appendix A).
        vc = VectorClock(entries)
        as_function = VectorClock.bottom()
        as_function.set(tid, clock)
        assert epoch_leq_vc(make_epoch(clock, tid), vc.clocks) == (
            as_function.leq(vc)
        )


class TestFormatting:
    def test_format_notation(self):
        assert format_epoch(make_epoch(4, 0)) == "4@0"
        assert format_epoch(make_epoch(8, 1)) == "8@1"
        assert format_epoch(EPOCH_BOTTOM) == "⊥e"
        assert format_epoch(READ_SHARED) == "READ_SHARED"
