"""Tests for the Eclipse experiment (Section 5.3)."""

import pytest

from repro.bench import eclipse
from repro.bench.harness import _tool
from repro.runtime.scheduler import run_program
from repro.trace.feasibility import check_feasible
from repro.trace.happens_before import HappensBefore

SMALL = 90


@pytest.mark.parametrize("op", list(eclipse.OPERATIONS))
def test_operations_produce_feasible_traces(op):
    factory, _default = eclipse.OPERATIONS[op]
    for seed in (0, 1):
        trace = run_program(factory(SMALL), seed=seed)
        assert check_feasible(trace) == []


#: The per-operation FastTrack warning budget (sums to the paper's 30).
FAMILY_BUDGET = {
    "Startup": 7,
    "Import": 6,
    "CleanSmall": 4,
    "CleanLarge": 6,
    "Debug": 7,
}


@pytest.mark.parametrize("op", list(eclipse.OPERATIONS))
def test_fasttrack_race_families_deterministic(op):
    factory, _default = eclipse.OPERATIONS[op]
    for seed in (0, 3):
        trace = run_program(factory(SMALL), seed=seed)
        tool = _tool("FastTrack").process(trace)
        assert tool.warning_count == FAMILY_BUDGET[op], (op, seed)


def test_fasttrack_total_is_thirty():
    results = eclipse.run(scale=SMALL)
    assert results["warnings"]["FastTrack"] == 30  # the paper's number


def test_eraser_count_explodes():
    results = eclipse.run(scale=SMALL)
    # At full scale the ratio is ~30x (paper: 960 vs 30); even at test
    # scale the per-field counting dwarfs the precise tools.
    assert results["warnings"]["Eraser"] > 4 * results["warnings"]["FastTrack"]


def test_fasttrack_warnings_are_real_races():
    factory, _default = eclipse.OPERATIONS["Import"]
    trace = run_program(factory(SMALL), seed=0)
    racy = HappensBefore(list(trace)).racy_variables()
    tool = _tool("FastTrack").process(trace)
    assert {w.var for w in tool.warnings} <= racy


def test_startup_uses_24_threads():
    factory, _default = eclipse.OPERATIONS["Startup"]
    trace = run_program(factory(SMALL), seed=0)
    assert len(trace.threads()) == 24


def test_run_reports_slowdowns_for_four_tools():
    results = eclipse.run(scale=SMALL)
    for op, row in results["slowdowns"].items():
        assert set(row) == set(eclipse.ECLIPSE_TOOLS)
        for cell in row.values():
            assert cell.slowdown > 1.0


def test_report_renders():
    from repro.bench.reporting import format_eclipse

    text = format_eclipse(eclipse.run(scale=SMALL))
    assert "Eclipse" in text and "Startup" in text
