"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.trace.generators import GeneratorConfig, random_feasible_trace


def make_suite(seed: int, count: int, **config_kwargs):
    """A reproducible batch of feasible traces spanning sharing idioms."""
    rng = random.Random(seed)
    traces = []
    for index in range(count):
        config = GeneratorConfig(
            discipline=[0.0, 0.3, 0.6, 0.9, 1.0][index % 5],
            max_events=40 + (index % 4) * 25,
            max_threads=2 + index % 4,
            **config_kwargs,
        )
        traces.append(random_feasible_trace(rng, config))
    return traces


@pytest.fixture(scope="session")
def trace_suite():
    """Sixty mixed-discipline feasible traces used by equivalence tests."""
    return make_suite(seed=20090615, count=60)


@pytest.fixture(scope="session")
def racy_suite():
    """Traces biased toward undisciplined accesses (most contain races)."""
    return make_suite(seed=424242, count=30)
