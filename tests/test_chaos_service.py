"""Chaos suite for the ``repro serve`` daemon and its client.

The daemon runs in-process, so an installed fault plan is shared by the
test, the HTTP handler threads, and the job runners — every injected
503, connection reset, torn store write, and hung shard is deterministic
and observable from both sides of the socket.

The service-side differential invariant: whatever faults fire, a job
that reaches ``done`` serves bytes identical to ``repro check --json``
on the same trace, and a client with retries enabled converges on that
result without duplicating the analysis (idempotency keys).
"""

import io
import json
import time
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro import cli, faults
from repro.service.client import Client, ServiceError
from repro.service.server import ServiceConfig, start_in_thread
from repro.service.store import JobStore

DATA = Path(__file__).parent / "data"
TRACE = DATA / "figure4.trace"


@pytest.fixture(autouse=True)
def _clean_faults():
    """Fault plans are process-global; never leak one between tests."""
    faults.clear()
    yield
    faults.clear()


def _install(fault_records, seed=7):
    plan = faults.parse_plan(json.dumps({
        "schema": "repro.faults/1",
        "seed": seed,
        "faults": fault_records,
    }))
    faults.install(plan)
    return plan


def _check_json(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli.main(["check", *argv, "--json"])
    assert code in (0, 1)
    return buffer.getvalue()


@pytest.fixture()
def daemon(tmp_path):
    handle = start_in_thread(
        ServiceConfig(port=0, workers=1, store_dir=str(tmp_path / "store"))
    )
    try:
        yield handle
    finally:
        handle.stop(grace=5.0)


# -- HTTP faults and client retries -------------------------------------------


def test_injected_503_carries_retry_after(daemon):
    _install([{
        "point": "http.request", "action": "status", "status": 503,
        "match": {"route": "/metrics"}, "delay_s": 0.01,
    }])
    plain = Client(port=daemon.port, timeout=10.0)  # no retries
    with pytest.raises(ServiceError) as excinfo:
        plain.metrics()
    assert excinfo.value.status == 503
    assert excinfo.value.retry_after == 0.01


def test_client_retries_through_503_byte_identical(daemon):
    client = Client(port=daemon.port, timeout=30.0)
    job = client.submit(path=str(TRACE), tools=["FastTrack"])
    client.wait(job["id"], timeout=60.0, poll=0.05)
    plan = _install([{
        "point": "http.request", "action": "status", "status": 503,
        "match": {"route": "/v1/jobs/{id}/result"}, "times": 2,
        "delay_s": 0.01,
    }])
    retrier = Client(
        port=daemon.port, timeout=30.0, retries=3, backoff_s=0.01
    )
    served = retrier.result_bytes(job["id"]).decode("utf-8")
    assert served == _check_json([str(TRACE), "--tool", "FastTrack"])
    # Both 503s actually fired before the success.
    assert plan.report()[0]["fired"] == 2


def test_client_retries_through_connection_reset(daemon):
    plan = _install([{
        "point": "http.request", "action": "reset",
        "match": {"route": "/healthz"},
    }])
    retrier = Client(
        port=daemon.port, timeout=10.0, retries=2, backoff_s=0.01
    )
    assert retrier.healthz()["status"] == "ok"
    assert plan.report()[0]["fired"] == 1


def test_stalled_response_is_served_normally(daemon):
    _install([{
        "point": "http.request", "action": "stall", "delay_s": 0.3,
        "match": {"route": "/healthz"},
    }])
    client = Client(port=daemon.port, timeout=10.0)
    started = time.monotonic()
    assert client.healthz()["status"] == "ok"
    assert time.monotonic() - started >= 0.3


def test_submit_retry_after_reset_lands_exactly_one_job(daemon):
    # The reset kills the first POST before the daemon accepts it; the
    # retry (same idempotency key) must land exactly one job.
    plan = _install([{
        "point": "http.request", "action": "reset",
        "match": {"method": "POST", "route": "/v1/jobs"},
    }])
    retrier = Client(
        port=daemon.port, timeout=30.0, retries=2, backoff_s=0.01
    )
    job = retrier.submit(path=str(TRACE), tools=["FastTrack"])
    assert plan.report()[0]["fired"] == 1
    jobs = retrier.jobs()
    assert [record["id"] for record in jobs] == [job["id"]]
    document = retrier.wait(job["id"], timeout=60.0, poll=0.05)
    assert document["schema"] == "repro.result/1"


def test_duplicate_key_maps_to_existing_job(daemon):
    client = Client(port=daemon.port, timeout=30.0)
    first = client.submit(text=TRACE.read_text(), key="chaos-key-1")
    again = client.submit(text=TRACE.read_text(), key="chaos-key-1")
    assert again["id"] == first["id"]
    assert again.get("duplicate") is True
    assert len(client.jobs()) == 1


def test_fresh_submissions_stay_separate_jobs(daemon):
    # Auto-generated keys are per-call: identical traces submitted twice
    # are two jobs, not a dedup.
    client = Client(port=daemon.port, timeout=30.0)
    first = client.submit(text=TRACE.read_text())
    second = client.submit(text=TRACE.read_text())
    assert first["id"] != second["id"]


# -- job deadline and requeue -------------------------------------------------


def test_stuck_job_requeued_and_finishes_byte_identical(tmp_path):
    # Shard 0 hangs for 1s against a 0.3s job deadline: attempt one
    # times out after checkpointing shard 0, the requeue resumes from
    # that checkpoint, and the final bytes match the CLI exactly.
    _install([{
        "point": "worker.hang", "action": "hang", "delay_s": 1.0,
        "match": {"shard": 0, "attempt": 0},
    }])
    handle = start_in_thread(ServiceConfig(
        port=0, workers=1, store_dir=str(tmp_path / "store"),
        job_timeout=0.3,
    ))
    try:
        client = Client(port=handle.port, timeout=30.0)
        job = client.submit(
            path=str(TRACE), tools=["FastTrack"], shards=2
        )
        client.wait(job["id"], timeout=60.0, poll=0.05)
        record = client.status(job["id"])
        assert record["state"] == "done"
        assert record["requeues"] == 1
        served = client.result_bytes(job["id"]).decode("utf-8")
        expected = _check_json(
            [str(TRACE), "--tool", "FastTrack", "--shards", "2"]
        )
        assert served == expected
    finally:
        handle.stop(grace=5.0)


def test_job_requeue_budget_is_finite(tmp_path):
    # A job that times out on every attempt must end ``failed`` with an
    # explicit gave-up error, not requeue forever.  Three shards, one
    # 0.6s hang each, a 0.2s deadline: every attempt checkpoints one
    # shard and still blows the budget.
    _install([{
        "point": "worker.hang", "action": "hang", "delay_s": 0.6,
        "times": 99,
    }])
    handle = start_in_thread(ServiceConfig(
        port=0, workers=1, store_dir=str(tmp_path / "store"),
        job_timeout=0.2, max_job_requeues=1,
    ))
    try:
        client = Client(port=handle.port, timeout=30.0)
        job = client.submit(
            path=str(TRACE), tools=["FastTrack"], shards=3
        )
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            record = client.status(job["id"])
            if record["state"] == "failed":
                break
            time.sleep(0.05)
        assert record["state"] == "failed"
        assert "gave up after 1 requeue(s)" in record["error"]
        assert record["requeues"] == 1
    finally:
        handle.stop(grace=5.0)


# -- store durability ---------------------------------------------------------


def test_torn_record_write_is_unreadable_then_scrubbed(tmp_path):
    _install([{
        "point": "store.write", "action": "torn",
        "match": {"file": "job.json"},
    }])
    store = JobStore(str(tmp_path / "store"))
    record = store.create(
        {"tools": ["FastTrack"], "shards": 1, "kernel": "auto",
         "format": "text"}
    )
    # The torn record must read as absent, never as garbage...
    assert store.read(record["id"]) is None
    # ...and the startup scrub must quarantine the whole job directory.
    assert store.scrub() == [record["id"]]
    quarantined = Path(store.quarantine_dir) / record["id"]
    assert quarantined.is_dir()
    assert not Path(store.job_dir(record["id"])).exists()
    assert store.list_jobs() == []


def test_scrub_keeps_healthy_jobs(tmp_path):
    store = JobStore(str(tmp_path / "store"))
    healthy = store.create(
        {"tools": ["FastTrack"], "shards": 1, "kernel": "auto",
         "format": "text"}
    )
    garbage = Path(store.jobs_dir) / "deadbeef"
    garbage.mkdir()
    (garbage / "job.json").write_text("{ torn mid-wri")
    assert store.scrub() == ["deadbeef"]
    assert [r["id"] for r in store.list_jobs()] == [healthy["id"]]


def test_daemon_start_scrubs_poisoned_store(tmp_path):
    # A poisoned job directory from a previous crash must not break
    # startup recovery: the daemon boots, quarantines it, and serves.
    store_dir = tmp_path / "store"
    poisoned = store_dir / "jobs" / "0000deadbeef0000"
    poisoned.mkdir(parents=True)
    (poisoned / "job.json").write_text("\x00\x00 not a record")
    handle = start_in_thread(
        ServiceConfig(port=0, workers=1, store_dir=str(store_dir))
    )
    try:
        client = Client(port=handle.port, timeout=10.0)
        assert client.healthz()["status"] == "ok"
        assert client.jobs() == []
        assert (store_dir / "quarantine" / "0000deadbeef0000").is_dir()
    finally:
        handle.stop(grace=5.0)
