"""Unit tests for the event model and the Trace container (Figure 1)."""

import pytest

from repro.trace import events as ev
from repro.trace.trace import Trace


class TestEvents:
    def test_constructors_set_kind_and_fields(self):
        event = ev.rd(1, "x", site="a.b")
        assert event.kind == ev.READ
        assert event.tid == 1
        assert event.target == "x"
        assert event.site == "a.b"
        assert ev.wr(0, "y").kind == ev.WRITE
        assert ev.acq(2, "m").kind == ev.ACQUIRE
        assert ev.rel(2, "m").kind == ev.RELEASE
        assert ev.fork(0, 1).target == 1
        assert ev.join(0, 1).kind == ev.JOIN
        assert ev.vol_rd(1, "v").kind == ev.VOLATILE_READ
        assert ev.vol_wr(1, "v").kind == ev.VOLATILE_WRITE
        assert ev.enter(1, "txn").kind == ev.ENTER
        assert ev.exit_(1, "txn").kind == ev.EXIT

    def test_barrier_sorts_and_anonymizes(self):
        event = ev.barrier_rel((3, 1, 2))
        assert event.kind == ev.BARRIER_RELEASE
        assert event.target == (1, 2, 3)
        assert event.tid == -1

    def test_equality_ignores_site(self):
        assert ev.rd(1, "x", site="a") == ev.rd(1, "x", site="b")
        assert ev.rd(1, "x") != ev.wr(1, "x")
        assert hash(ev.rd(1, "x")) == hash(ev.rd(1, "x", site="s"))

    def test_repr_uses_paper_syntax(self):
        assert repr(ev.rd(0, "x")) == "rd(0, 'x')"
        assert repr(ev.barrier_rel((0, 1))) == "barrier_rel((0, 1))"

    def test_kind_partitions(self):
        assert ev.READ in ev.ACCESS_KINDS
        assert ev.WRITE in ev.ACCESS_KINDS
        assert ev.ACQUIRE in ev.SYNC_KINDS
        assert ev.ENTER not in ev.SYNC_KINDS
        assert ev.ENTER not in ev.ACCESS_KINDS


class TestTrace:
    def setup_method(self):
        self.trace = Trace(
            [
                ev.wr(0, "x"),
                ev.fork(0, 1),
                ev.acq(1, "m"),
                ev.rd(1, "x"),
                ev.rel(1, "m"),
                ev.vol_wr(1, "v"),
                ev.join(0, 1),
            ]
        )

    def test_len_iter_getitem(self):
        assert len(self.trace) == 7
        assert list(self.trace)[0] == ev.wr(0, "x")
        assert self.trace[3] == ev.rd(1, "x")
        sliced = self.trace[2:5]
        assert isinstance(sliced, Trace)
        assert len(sliced) == 3

    def test_concatenation(self):
        combined = self.trace + Trace([ev.rd(0, "x")])
        assert len(combined) == 8

    def test_threads_includes_fork_targets(self):
        assert self.trace.threads() == {0, 1}
        with_barrier = Trace([ev.barrier_rel((2, 3))])
        assert with_barrier.threads() == {2, 3}

    def test_queries(self):
        assert self.trace.variables() == {"x"}
        assert self.trace.locks() == {"m"}
        assert self.trace.volatiles() == {"v"}
        assert self.trace.accesses() == [0, 3]
        assert self.trace.accesses("x") == [0, 3]
        assert self.trace.accesses("y") == []

    def test_operation_mix(self):
        mix = self.trace.operation_mix()
        assert mix["reads"] == pytest.approx(1 / 7)
        assert mix["writes"] == pytest.approx(1 / 7)
        assert mix["other"] == pytest.approx(5 / 7)
        assert Trace().operation_mix() == {
            "reads": 0.0,
            "writes": 0.0,
            "other": 0.0,
        }

    def test_pretty_renders_columns(self):
        text = self.trace.pretty()
        assert "thread 0" in text and "thread 1" in text
        assert "rd('x')" in text
        assert Trace().pretty() == "(empty trace)"
        with_barrier = Trace([ev.rd(0, "x"), ev.barrier_rel((0,))])
        assert "--barrier--" in with_barrier.pretty()

    def test_equality(self):
        assert Trace([ev.rd(0, "x")]) == Trace([ev.rd(0, "x")])
        assert Trace([ev.rd(0, "x")]) != Trace([ev.wr(0, "x")])
