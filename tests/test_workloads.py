"""Integration tests: the 16 benchmark workloads reproduce Table 1's
warning structure for every tool, on multiple schedules."""

import pytest

from repro.bench.harness import TABLE1_ORDER, WARNING_TOOLS, _tool
from repro.bench.workload import WORKLOADS, get_workload
from repro.trace.feasibility import check_feasible
from repro.trace.happens_before import HappensBefore

SMALL = 260  # scale used for tests: quick but past every warm-up threshold


@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_workload_traces_are_feasible(name):
    trace = WORKLOADS[name].trace(scale=SMALL)
    assert check_feasible(trace) == []


@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_warning_counts_match_table1(name):
    workload = WORKLOADS[name]
    trace = workload.trace(scale=SMALL)
    for tool_name in WARNING_TOOLS:
        expected = workload.paper.warnings[tool_name]
        if expected is None:
            continue  # the paper shows "–" (did not run / out of memory)
        tool = _tool(tool_name).process(trace)
        assert tool.warning_count == expected, tool_name


@pytest.mark.parametrize("name", TABLE1_ORDER)
def test_precise_tool_warnings_are_real_races(name):
    """No false alarms: every FastTrack warning corresponds to a variable
    the happens-before oracle says is racy."""
    trace = WORKLOADS[name].trace(scale=120)
    racy = HappensBefore(list(trace)).racy_variables()
    tool = _tool("FastTrack").process(trace)
    assert {w.var for w in tool.warnings} <= racy
    # ...and every racy variable either warned or was deduplicated into a
    # site that warned.
    warned_sites = {w.site for w in tool.warnings}
    for var in racy:
        assert tool.has_warned(var), var


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("name", ["tsp", "hedc", "jbb", "mtrt"])
def test_racy_workloads_stable_across_schedules(name, seed):
    """The calibrated warning counts hold on different interleavings."""
    workload = WORKLOADS[name]
    trace = workload.trace(scale=SMALL, seed=seed)
    assert check_feasible(trace) == []
    for tool_name in ("Eraser", "MultiRace", "FastTrack"):
        expected = workload.paper.warnings[tool_name]
        tool = _tool(tool_name).process(trace)
        assert tool.warning_count == expected, (tool_name, seed)


@pytest.mark.parametrize("name", ["crypt", "moldyn", "sparse", "raja"])
@pytest.mark.parametrize("seed", [5, 9])
def test_race_free_workloads_stay_clean_across_schedules(name, seed):
    trace = WORKLOADS[name].trace(scale=SMALL, seed=seed)
    for tool_name in ("FastTrack", "DJIT+", "BasicVC"):
        assert _tool(tool_name).process(trace).warnings == []


def test_registry_contents():
    assert set(TABLE1_ORDER) == set(WORKLOADS)
    assert get_workload("tsp").paper.threads == 5
    with pytest.raises(ValueError, match="unknown workload"):
        get_workload("nonesuch")
    marked_not_compute_bound = {
        name for name in WORKLOADS if not WORKLOADS[name].compute_bound
    }
    assert marked_not_compute_bound == {"elevator", "philo", "hedc", "jbb"}


def test_trace_memoization():
    workload = WORKLOADS["philo"]
    assert workload.trace(scale=100) is workload.trace(scale=100)
    assert workload.trace(scale=100) is not workload.trace(scale=101)


def test_operation_mix_is_read_dominated():
    """Figure 2's margin: reads dominate the monitored operations."""
    trace = WORKLOADS["crypt"].trace(scale=SMALL)
    mix = trace.operation_mix()
    assert mix["reads"] > 0.55
    assert mix["other"] < 0.15
