"""Consistency checks on the transcribed paper data."""

import pytest

from repro.bench import paperdata
from repro.bench.harness import TABLE1_ORDER, WARNING_TOOLS
from repro.bench.workload import WORKLOADS


class TestTable2:
    def test_covers_all_benchmarks(self):
        assert set(paperdata.TABLE2) == set(TABLE1_ORDER)

    def test_totals_match_rows(self):
        assert sum(r.djit_allocs for r in paperdata.TABLE2.values()) == (
            paperdata.TABLE2_TOTALS.djit_allocs
        )
        assert sum(r.fasttrack_allocs for r in paperdata.TABLE2.values()) == (
            paperdata.TABLE2_TOTALS.fasttrack_allocs
        )
        assert sum(r.djit_ops for r in paperdata.TABLE2.values()) == (
            paperdata.TABLE2_TOTALS.djit_ops
        )
        assert sum(r.fasttrack_ops for r in paperdata.TABLE2.values()) == (
            paperdata.TABLE2_TOTALS.fasttrack_ops
        )

    def test_fasttrack_never_allocates_more(self):
        for name, row in paperdata.TABLE2.items():
            assert row.fasttrack_allocs <= row.djit_allocs, name
            assert row.fasttrack_ops <= row.djit_ops, name


class TestTable3:
    def test_covers_all_benchmarks(self):
        assert set(paperdata.TABLE3) == set(TABLE1_ORDER)

    def test_fasttrack_fine_memory_never_worse(self):
        for name, row in paperdata.TABLE3.items():
            dj, ft = row.mem_fine
            assert ft <= dj, name

    def test_coarse_reduces_memory(self):
        for name, row in paperdata.TABLE3.items():
            assert row.mem_coarse[0] <= row.mem_fine[0], name
            assert row.mem_coarse[1] <= row.mem_fine[1], name


class TestTable1CrossCheck:
    def test_warning_totals(self):
        totals = {tool: 0 for tool in WARNING_TOOLS}
        for name in TABLE1_ORDER:
            for tool, count in WORKLOADS[name].paper.warnings.items():
                if count is not None:
                    totals[tool] += count
        assert totals == {
            "Eraser": 27,
            "MultiRace": 5,
            "Goldilocks": 3,
            "BasicVC": 8,
            "DJIT+": 8,
            "FastTrack": 8,
        }

    def test_thread_counts(self):
        expected = {
            "colt": 11,
            "crypt": 7,
            "lufact": 4,
            "moldyn": 4,
            "montecarlo": 4,
            "mtrt": 5,
            "raja": 2,
            "raytracer": 4,
            "sparse": 4,
            "series": 4,
            "sor": 4,
            "tsp": 5,
            "elevator": 5,
            "philo": 6,
            "hedc": 6,
            "jbb": 5,
        }
        for name, threads in expected.items():
            assert WORKLOADS[name].paper.threads == threads

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_workload_thread_counts_match_paper(self, name):
        """Our model programs spawn exactly the paper's thread counts."""
        trace = WORKLOADS[name].trace(scale=120)
        assert len(trace.threads()) == WORKLOADS[name].paper.threads


class TestComposition:
    def test_grid_complete(self):
        checkers = {"Atomizer", "Velodrome", "SingleTrack"}
        filters = {"None", "TL", "Eraser", "DJIT+", "FastTrack"}
        assert {c for c, _f in paperdata.COMPOSITION} == checkers
        assert {f for _c, f in paperdata.COMPOSITION} == filters

    def test_atomizer_eraser_cell_is_none(self):
        assert paperdata.COMPOSITION[("Atomizer", "Eraser")] is None

    def test_fasttrack_is_best_filter_in_paper(self):
        for checker in ("Atomizer", "Velodrome", "SingleTrack"):
            fasttrack = paperdata.COMPOSITION[(checker, "FastTrack")]
            for prefilter in ("None", "TL", "Eraser", "DJIT+"):
                published = paperdata.COMPOSITION[(checker, prefilter)]
                if published is not None:
                    assert fasttrack < published


class TestEclipse:
    def test_five_operations(self):
        assert set(paperdata.ECLIPSE) == {
            "Startup",
            "Import",
            "CleanSmall",
            "CleanLarge",
            "Debug",
        }

    def test_fasttrack_beats_djit_on_compute_heavy_ops(self):
        for op in ("Import", "CleanSmall", "CleanLarge"):
            row = paperdata.ECLIPSE[op].slowdowns
            assert row["FastTrack"] < row["DJIT+"]
