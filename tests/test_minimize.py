"""Tests for race-witness minimization."""

import pytest
from hypothesis import given, settings

from repro.core.fasttrack import FastTrack
from repro.trace import events as ev
from repro.trace.feasibility import check_feasible
from repro.trace.generators import GeneratorConfig, traces
from repro.trace.minimize import minimize_trace, race_predicate
from repro.bench.workload import WORKLOADS


class TestBasics:
    def test_already_minimal_witness_untouched_in_spirit(self):
        trace = [ev.wr(0, "x"), ev.wr(1, "x")]
        witness = minimize_trace(trace, var="x")
        assert len(witness) == 2
        assert FastTrack().process(witness).has_warned("x")

    def test_irrelevant_threads_dropped(self):
        trace = [
            ev.wr(0, "x"),
            ev.wr(1, "x"),  # the race
            ev.acq(2, "m"),
            ev.wr(2, "noise"),
            ev.rel(2, "m"),
            ev.rd(3, "other_noise"),
        ]
        witness = minimize_trace(trace, var="x")
        assert witness.threads() == {0, 1}
        assert len(witness) == 2

    def test_lock_pairs_survive_or_vanish_together(self):
        # The lock traffic orders nothing relevant; it must disappear
        # completely (a dangling acq or rel would be infeasible).
        trace = [
            ev.acq(0, "m"),
            ev.rd(0, "y"),
            ev.rel(0, "m"),
            ev.wr(0, "x"),
            ev.wr(1, "x"),
        ]
        witness = minimize_trace(trace, var="x")
        assert check_feasible(witness) == []
        assert witness.locks() == set()
        assert len(witness) == 2

    def test_ordering_synchronization_is_kept(self):
        # Here the fork is what DELAYS the race to thread 1's write; but
        # the race between wr(1,x) and wr(0,x)#2 needs no fork... the
        # minimal witness drops the fork and keeps two writes by two
        # initial threads.
        trace = [
            ev.wr(0, "x"),
            ev.fork(0, 1),
            ev.wr(1, "x"),
            ev.wr(0, "x"),
        ]
        witness = minimize_trace(trace, var="x")
        assert check_feasible(witness) == []
        assert len(witness) == 2
        kinds = {e.kind for e in witness}
        assert kinds == {ev.WRITE}

    def test_race_free_trace_rejected(self):
        with pytest.raises(ValueError):
            minimize_trace([ev.wr(0, "x"), ev.fork(0, 1), ev.rd(1, "x")])

    def test_custom_predicate(self):
        # Minimize to "Eraser warns" instead of the default.
        from repro.detectors import Eraser

        def eraser_warns(events):
            return Eraser().process(list(events)).warning_count > 0

        trace = [
            ev.wr(0, "x"),
            ev.fork(0, 1),
            ev.rd(1, "noise"),
            ev.wr(1, "x"),  # spurious for Eraser, ordered in reality
        ]
        witness = minimize_trace(trace, predicate=eraser_warns)
        assert len(witness) <= 3
        assert eraser_warns(list(witness))


class TestOnWorkloads:
    def test_raytracer_checksum_witness_is_tiny(self):
        trace = WORKLOADS["raytracer"].trace(scale=120)
        witness = minimize_trace(trace, var="checksum")
        assert len(witness) <= 6
        assert check_feasible(witness) == []
        assert FastTrack().process(witness).has_warned("checksum")

    def test_tsp_bound_witness(self):
        trace = WORKLOADS["tsp"].trace(scale=120)
        witness = minimize_trace(trace, var="best")
        assert len(witness) <= 10
        assert FastTrack().process(witness).has_warned("best")


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(traces(config=GeneratorConfig(max_events=60, discipline=0.3)))
    def test_minimized_witness_is_feasible_and_racy(self, trace):
        events = list(trace)
        if not race_predicate()(events):
            return  # nothing to minimize
        witness = minimize_trace(events)
        assert check_feasible(witness) == []
        assert FastTrack().process(witness).warning_count > 0
        assert len(witness) <= len(events)
