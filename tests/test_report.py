"""Tests for the race report generator."""

import pytest

from repro.cli import main
from repro.core.fasttrack import FastTrack
from repro.report import build_report
from repro.trace import events as ev
from repro.trace.happens_before import racy_variables
from repro.trace.serialize import dumps
from repro.trace.trace import Trace

RACY = Trace(
    [
        ev.fork(0, 1),
        ev.acq(0, "m"),
        ev.wr(0, "safe", site="app.py:5"),
        ev.rel(0, "m"),
        ev.acq(1, "m"),
        ev.rd(1, "safe", site="app.py:9"),
        ev.rel(1, "m"),
        ev.wr(1, "hot", site="worker.py:3"),
        ev.wr(0, "hot", site="app.py:12"),
    ]
)

CLEAN = Trace(
    [ev.wr(0, "x"), ev.fork(0, 1), ev.rd(1, "x"), ev.join(0, 1)]
)


def racy_detector():
    tool = FastTrack(track_sites=True)
    tool.process(RACY)
    return tool


class TestMarkdown:
    def test_structure(self):
        text = build_report(RACY, racy_detector())
        assert text.startswith("# Race report — FastTrack")
        assert "## Trace profile" in text
        assert "## Warnings" in text
        assert "write-write" in text
        assert "`hot`" in text
        assert "app.py:12" in text
        assert "worker.py:3" in text  # the prior access's site

    def test_clean_trace(self):
        tool = FastTrack().process(CLEAN)
        text = build_report(CLEAN, tool)
        assert "race-free" in text
        assert "None." in text

    def test_oracle_confirmation_column(self):
        text = build_report(
            RACY, racy_detector(), oracle_racy=racy_variables(RACY)
        )
        assert "confirmed" in text
        assert "| yes |" in text

    def test_context_section_lists_clean_shared_vars(self):
        text = build_report(RACY, racy_detector())
        assert "Racy variables in context" in text
        assert "`safe`" in text and "lock-protected" in text

    def test_classification_can_be_skipped(self):
        text = build_report(RACY, racy_detector(), classify=False)
        assert "sharing classes" not in text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            build_report(RACY, racy_detector(), fmt="pdf")


class TestHtml:
    def test_self_contained_document(self):
        text = build_report(RACY, racy_detector(), fmt="html")
        assert text.startswith("<!DOCTYPE html>")
        assert "<table>" in text and "</table>" in text
        assert "<code>" in text
        assert "hot" in text

    def test_escaping(self):
        trace = Trace([ev.fork(0, 1), ev.wr(0, "<x&y>"), ev.wr(1, "<x&y>")])
        tool = FastTrack().process(trace)
        text = build_report(trace, tool, fmt="html")
        assert "&lt;x&amp;y&gt;" in text
        assert "<x&y>" not in text


class TestCliIntegration:
    def test_check_writes_report(self, tmp_path, capsys):
        trace_path = tmp_path / "racy.trace"
        trace_path.write_text(dumps(RACY))
        report_path = tmp_path / "report.md"
        code = main(
            ["check", str(trace_path), "--oracle", "--report", str(report_path)]
        )
        assert code == 1
        text = report_path.read_text()
        assert "# Race report" in text
        assert "confirmed" in text

    def test_html_report_by_extension(self, tmp_path):
        trace_path = tmp_path / "racy.trace"
        trace_path.write_text(dumps(RACY))
        report_path = tmp_path / "report.html"
        main(["check", str(trace_path), "--report", str(report_path)])
        assert report_path.read_text().startswith("<!DOCTYPE html>")
