"""Chaos suite for the engine: every fault plan must end in one of two
outcomes, with nothing in between.

The differential invariant (docs/ROBUSTNESS.md): for any fault plan,
``repro check --json`` either

* produces output **byte-identical** to the fault-free run (the engine
  healed: retries, pool rebuilds, kernel fallback, torn-checkpoint
  recompute), or
* exits 4 with an explicit ``degraded`` block naming exactly which
  shards were quarantined — never a silently wrong or fabricated clean
  result.

Every injection point the engine owns is exercised here: worker.crash
(raise and hard exit), worker.hang (against the shard watchdog),
checkpoint.write (torn), kernel.run, trace.read.  The service-side
points (http.request, store.write) live in test_chaos_service.py.
"""

import io
import json
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro import cli, faults
from repro.engine.checkpoint import Workdir
from repro.engine.supervise import RetryPolicy, backoff_delay

DATA = Path(__file__).parent / "data"
TRACE = str(DATA / "tsp_small.trace")


@pytest.fixture(autouse=True)
def _clean_faults():
    """Fault plans are process-global; never leak one between tests."""
    faults.clear()
    yield
    faults.clear()


def _plan_file(tmp_path, fault_records, seed=7):
    document = {
        "schema": "repro.faults/1",
        "seed": seed,
        "faults": fault_records,
    }
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(document))
    return str(path)


def _check(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = cli.main(["check", *argv])
    return code, buffer.getvalue()


@pytest.fixture(scope="module")
def baseline():
    """The fault-free ``repro check --json`` bytes for the chaos config."""
    code, output = _check([TRACE, "--shards", "4", "--json"])
    assert code in (0, 1)
    return code, output


# -- plan validation ----------------------------------------------------------


def test_plan_rejects_bad_schema():
    with pytest.raises(faults.FaultPlanError, match="schema"):
        faults.parse_plan('{"schema": "nope/9", "faults": [{}]}')


def test_plan_rejects_unknown_point():
    with pytest.raises(faults.FaultPlanError, match="unknown point"):
        faults.parse_plan(
            '{"schema": "repro.faults/1",'
            ' "faults": [{"point": "warp.core"}]}'
        )


def test_plan_rejects_unsupported_action():
    with pytest.raises(faults.FaultPlanError, match="does not support"):
        faults.parse_plan(
            '{"schema": "repro.faults/1",'
            ' "faults": [{"point": "kernel.run", "action": "torn"}]}'
        )


def test_plan_rejects_unknown_keys():
    with pytest.raises(faults.FaultPlanError, match="unknown keys"):
        faults.parse_plan(
            '{"schema": "repro.faults/1",'
            ' "faults": [{"point": "worker.crash", "shard": 1}]}'
        )


def test_cli_rejects_bad_plan_with_exit_2(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text('{"schema": "repro.faults/1", "faults": []}')
    code, _ = _check([TRACE, "--faults", str(path), "--json"])
    assert code == 2


def test_probability_draws_are_deterministic():
    def plan():
        return faults.parse_plan(json.dumps({
            "schema": "repro.faults/1",
            "seed": 99,
            "faults": [{
                "point": "worker.crash", "prob": 0.5, "times": 1000,
            }],
        }))

    def firing_pattern(p):
        pattern = []
        for _ in range(32):
            try:
                fired = p.fire("worker.crash", {"shard": 0}) is not None
            except faults.FaultInjected:
                fired = True
            pattern.append(fired)
        return pattern

    assert firing_pattern(plan()) == firing_pattern(plan())


def test_match_after_times_semantics():
    plan = faults.parse_plan(json.dumps({
        "schema": "repro.faults/1",
        "faults": [{
            "point": "checkpoint.write", "action": "torn",
            "match": {"shard": 2}, "after": 1, "times": 1,
        }],
    }))
    assert plan.fire("checkpoint.write", {"shard": 0}) is None  # no match
    assert plan.fire("checkpoint.write", {"shard": 2}) is None  # after-skip
    fired = plan.fire("checkpoint.write", {"shard": 2})
    assert fired is not None and fired.action == "torn"
    assert plan.fire("checkpoint.write", {"shard": 2}) is None  # times cap
    report = plan.report()
    assert report[0]["hits"] == 3 and report[0]["fired"] == 1


def test_env_round_trip(tmp_path):
    import os

    plan = faults.parse_plan(json.dumps({
        "schema": "repro.faults/1",
        "faults": [{"point": "kernel.run"}],
    }))
    faults.install(plan)
    assert os.environ.get(faults.ENV_VAR, "").startswith("{")
    faults.clear()
    assert faults.ENV_VAR not in os.environ
    assert not faults.active()
    # A cleared process re-adopts an env plan exactly once.
    os.environ[faults.ENV_VAR] = json.dumps(plan.document)
    try:
        faults.load_from_env_once()
        assert faults.active()
    finally:
        faults.clear()


def test_backoff_is_seeded_and_capped():
    policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.5, seed=3)
    first = backoff_delay(policy, shard=2, attempt=1)
    again = backoff_delay(policy, shard=2, attempt=1)
    other = backoff_delay(policy, shard=3, attempt=1)
    assert first == again  # same (seed, shard, attempt) => same jitter
    assert first != other
    assert 0.0 < first <= 0.5 * 1.5  # cap * max jitter factor


# -- the differential invariant: heal to byte-identical -----------------------


def test_transient_worker_crash_heals_bit_identical(tmp_path, baseline):
    plan = _plan_file(tmp_path, [
        {"point": "worker.crash", "match": {"shard": 1, "attempt": 0}},
    ])
    code, output = _check(
        [TRACE, "--shards", "4", "--json", "--faults", plan]
    )
    assert (code, output) == baseline


def test_worker_crash_all_first_attempts_heals(tmp_path, baseline):
    # Every shard dies once; every retry succeeds.  4 distinct failures,
    # one clean result.
    plan = _plan_file(tmp_path, [
        {"point": "worker.crash", "match": {"attempt": 0}, "times": 4},
    ])
    code, output = _check(
        [TRACE, "--shards", "4", "--json", "--faults", plan]
    )
    assert (code, output) == baseline


def test_worker_oserror_heals_bit_identical(tmp_path, baseline):
    # A real OSError (ENOSPC), not a test double, through the same path.
    plan = _plan_file(tmp_path, [
        {"point": "worker.crash", "error": "oserror",
         "match": {"shard": 0, "attempt": 0}},
    ])
    code, output = _check(
        [TRACE, "--shards", "4", "--json", "--faults", plan]
    )
    assert (code, output) == baseline


def test_worker_hard_exit_rebuilds_pool(tmp_path, baseline):
    # os._exit(70) in a pool worker: the pool breaks, the supervisor
    # reconciles from disk checkpoints, rebuilds, and finishes clean.
    plan = _plan_file(tmp_path, [
        {"point": "worker.crash", "action": "exit",
         "match": {"shard": 0, "attempt": 0}},
    ])
    code, output = _check(
        [TRACE, "--shards", "4", "--jobs", "2", "--json", "--faults", plan]
    )
    assert (code, output) == baseline


def test_hung_shard_is_killed_and_retried(tmp_path, baseline):
    # Shard 2 stalls well past the watchdog deadline on its first
    # attempt; the watchdog kills it and the retry completes.
    plan = _plan_file(tmp_path, [
        {"point": "worker.hang", "action": "hang", "delay_s": 2.0,
         "match": {"shard": 2, "attempt": 0}},
    ])
    code, output = _check([
        TRACE, "--shards", "4", "--jobs", "2", "--json",
        "--shard-timeout", "0.3", "--faults", plan,
    ])
    assert (code, output) == baseline


def test_torn_checkpoint_is_quarantined_and_recomputed(tmp_path, baseline):
    plan = _plan_file(tmp_path, [
        {"point": "checkpoint.write", "action": "torn",
         "match": {"shard": 3}},
    ])
    code, output = _check(
        [TRACE, "--shards", "4", "--json", "--faults", plan]
    )
    assert (code, output) == baseline


def test_kernel_fault_falls_back_to_generic_path(tmp_path, baseline):
    # The fused kernel blows up on every shard; each falls back to the
    # generic object path, which is bit-identical by the equivalence
    # contract.
    plan = _plan_file(tmp_path, [
        {"point": "kernel.run", "times": 99},
    ])
    code, output = _check(
        [TRACE, "--shards", "4", "--json", "--faults", plan]
    )
    assert (code, output) == baseline


# -- the differential invariant: degrade explicitly, never lie ----------------


def test_poison_shard_quarantined_with_degraded_block(tmp_path, baseline):
    plan = _plan_file(tmp_path, [
        {"point": "worker.crash", "match": {"shard": 2}, "times": 99},
    ])
    code, output = _check(
        [TRACE, "--shards", "4", "--json", "--faults", plan]
    )
    assert code == 4
    document = json.loads(output)
    degraded = document["degraded"]
    assert degraded["quarantined_shards"] == [2]
    assert degraded["shards_total"] == 4
    (failure,) = degraded["failures"]
    assert failure["shard"] == 2
    assert failure["attempts"] == 3  # the full retry budget was spent
    assert "injected fault" in failure["error"]
    # The surviving shards' results are exact: strip the degraded block
    # and every top-level field must be a subset of the clean document's
    # schema (same keys, same types) — the quarantined shard's variables
    # are missing, not guessed at.
    clean = json.loads(baseline[1])
    assert set(document) == set(clean) | {"degraded"}
    assert document["schema"] == clean["schema"]
    assert document["warning_count"] <= clean["warning_count"]


def test_all_shards_poisoned_fails_explicitly(tmp_path):
    plan = _plan_file(tmp_path, [
        {"point": "worker.crash", "times": 9999},
    ])
    code, output = _check(
        [TRACE, "--shards", "4", "--json", "--faults", plan]
    )
    assert code == 4
    assert output == ""  # no fabricated result document


# -- shm transport lifecycle: /dev/shm must end empty, whatever happens -------


from repro.engine import transport as shm_transport  # noqa: E402

needs_shm = pytest.mark.skipif(
    not shm_transport.supports_shm(),
    reason="POSIX shared memory is unavailable on this host",
)


@needs_shm
def test_shm_clean_run_sweeps_every_block(baseline):
    # The result bytes are transport-independent, and the engine's
    # teardown sweep releases every block it published.
    code, output = _check([TRACE, "--shards", "4", "--transport", "shm",
                           "--json"])
    assert (code, output) == baseline
    assert shm_transport.leaked_blocks() == []


@needs_shm
def test_shm_kill_storm_leaves_no_blocks(tmp_path, baseline):
    # A storm of hard worker exits (os._exit mid-shard, pool rebuilds)
    # plus one permanently poisoned shard: whatever the run's verdict —
    # healed clean or explicitly degraded — no shard buffer survives in
    # /dev/shm.  Workers attach *untracked* and the parent owns every
    # block, so no worker death path can leak one (docs/ENGINE.md).
    plan = _plan_file(tmp_path, [
        {"point": "worker.crash", "action": "exit",
         "match": {"attempt": 0}, "times": 4},
        {"point": "worker.crash", "match": {"shard": 2}, "times": 99},
    ])
    code, output = _check([
        TRACE, "--shards", "4", "--jobs", "2", "--transport", "shm",
        "--json", "--faults", plan,
    ])
    assert code in (0, 1, 4)  # healed or explicitly degraded, never wedged
    if code == 4 and output:
        assert json.loads(output)["degraded"]["shards_total"] == 4
    assert shm_transport.leaked_blocks() == []


@needs_shm
def test_shm_torn_checkpoint_storm_leaves_no_blocks(tmp_path, baseline):
    # Torn checkpoints force quarantine-and-recompute churn over live
    # shm attachments; the sweep still runs on the way out.
    plan = _plan_file(tmp_path, [
        {"point": "checkpoint.write", "action": "torn",
         "match": {"attempt": 0}, "times": 4},
    ])
    code, output = _check([
        TRACE, "--shards", "4", "--transport", "shm", "--json",
        "--faults", plan,
    ])
    assert (code, output) == baseline
    assert shm_transport.leaked_blocks() == []


def test_corrupt_trace_bytes_exit_2(tmp_path, capsys):
    # The corrupt line must surface as a clean parse error (exit 2 with
    # the line number), never a traceback from deep inside the engine.
    plan = _plan_file(tmp_path, [
        {"point": "trace.read", "action": "corrupt", "match": {"lineno": 5}},
    ])
    code = cli.main(
        ["check", TRACE, "--shards", "2", "--json", "--faults", plan]
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "line 5" in captured.err
    assert captured.out == ""


def test_trace_read_raise_surfaces_errno(tmp_path):
    plan = _plan_file(tmp_path, [
        {"point": "trace.read", "action": "raise", "error": "oserror",
         "match": {"lineno": 3}},
    ])
    code, _ = _check([TRACE, "--shards", "2", "--json", "--faults", plan])
    assert code == 2


# -- checkpoint-directory edge cases (no fault plan needed) -------------------


class TestCheckpointEdgeCases:
    def _workdir(self, tmp_path):
        return Workdir(str(tmp_path / "wd"))

    def test_zero_byte_checkpoint_is_quarantined(self, tmp_path):
        wd = self._workdir(tmp_path)
        wd.write_result("FastTrack", 0, {"shard": 0})
        path = wd.result_path("FastTrack", 1)
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text("")  # a zero-byte file from a torn write
        assert wd.completed_shards("FastTrack", 2) == [0]
        assert not Path(path).exists()
        assert Path(path + ".corrupt").exists()

    def test_truncated_checkpoint_is_quarantined(self, tmp_path):
        wd = self._workdir(tmp_path)
        full = json.dumps({"shard": 0, "warnings": [], "stats": {}})
        path = wd.result_path("FastTrack", 0)
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(full[: len(full) // 2])
        assert wd.completed_shards("FastTrack", 1) == []
        assert Path(path + ".corrupt").exists()

    def test_wrong_shard_number_is_quarantined(self, tmp_path):
        wd = self._workdir(tmp_path)
        path = wd.result_path("FastTrack", 4)
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(json.dumps({"shard": 0}))
        assert wd.completed_shards("FastTrack", 5) == []
        assert Path(path + ".corrupt").exists()

    def test_clear_results_sweeps_corrupt_files(self, tmp_path):
        wd = self._workdir(tmp_path)
        path = wd.result_path("FastTrack", 0)
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text("not json")
        assert not wd.valid_result("FastTrack", 0)
        wd.clear_results("FastTrack")
        assert not Path(path + ".corrupt").exists()

    def test_poisoned_resume_directory_recomputes(self, tmp_path, baseline):
        # A full engine run against a resume directory whose previous
        # run left a truncated checkpoint: the shard is quarantined and
        # recomputed, and the output is byte-identical to clean.
        workdir = tmp_path / "resume"
        code, output = _check(
            [TRACE, "--shards", "4", "--json", "--resume", str(workdir)]
        )
        assert (code, output) == baseline
        wd = Workdir(str(workdir))
        path = Path(wd.result_path("FastTrack", 1))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # tear it
        code, output = _check(
            [TRACE, "--shards", "4", "--json", "--resume", str(workdir)]
        )
        assert (code, output) == baseline
