"""Tests for two-sided race reports (track_sites)."""

from repro.core.fasttrack import FastTrack
from repro.trace import events as ev

RACY = [
    ev.fork(0, 1),
    ev.wr(1, "x", site="worker.py:42"),
    ev.wr(0, "x", site="main.py:10"),  # concurrent with the child's write
]


class TestSiteTracking:
    def test_report_names_both_sides(self):
        tool = FastTrack(track_sites=True).process(RACY)
        warning = tool.warnings[0]
        assert warning.site == "main.py:10"  # the detecting access
        assert "worker.py:42" in warning.prior  # the prior access

    def test_read_write_report_names_the_read_site(self):
        trace = [
            ev.fork(0, 1),
            ev.rd(1, "x", site="reader.py:7"),
            ev.wr(0, "x", site="writer.py:3"),
        ]
        tool = FastTrack(track_sites=True).process(trace)
        assert "reader.py:7" in tool.warnings[0].prior

    def test_default_mode_does_not_track(self):
        tool = FastTrack().process(RACY)
        assert "worker.py:42" not in tool.warnings[0].prior
        assert tool.vars["x"].write_site is None

    def test_verdicts_unchanged(self):
        with_sites = FastTrack(track_sites=True).process(RACY)
        without = FastTrack().process(RACY)
        assert with_sites.warning_count == without.warning_count

    def test_same_epoch_fast_path_keeps_first_site_of_epoch(self):
        # Repeated writes in one epoch take the fast path; the recorded
        # site stays the epoch's first write, which is the correct prior
        # for any conflicting access.
        trace = [
            ev.fork(0, 1),
            ev.wr(1, "x", site="a.py:1"),
            ev.wr(1, "x", site="a.py:2"),  # same epoch: no site update
            ev.wr(0, "x", site="b.py:9"),  # concurrent
        ]
        tool = FastTrack(track_sites=True).process(trace)
        assert "a.py:1" in tool.warnings[0].prior
