"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.trace import events as ev
from repro.trace.serialize import dumps, dumps_jsonl
from repro.trace.trace import Trace

RACY = Trace([ev.wr(0, "x"), ev.fork(0, 1), ev.wr(1, "x"), ev.wr(0, "x")])
CLEAN = Trace(
    [
        ev.acq(0, "m"),
        ev.wr(0, "x"),
        ev.rel(0, "m"),
        ev.acq(1, "m"),
        ev.rd(1, "x"),
        ev.rel(1, "m"),
    ]
)


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.trace"
    path.write_text(dumps(RACY))
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.trace"
    path.write_text(dumps(CLEAN))
    return str(path)


class TestListing:
    def test_tools(self, capsys):
        assert main(["tools"]) == 0
        out = capsys.readouterr().out
        assert "FastTrack" in out and "Eraser" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "tsp" in out and "hedc" in out


class TestCheck:
    def test_racy_trace_exits_nonzero(self, racy_file, capsys):
        assert main(["check", racy_file]) == 1
        out = capsys.readouterr().out
        assert "write-write race on 'x'" in out

    def test_clean_trace_exits_zero(self, clean_file, capsys):
        assert main(["check", clean_file]) == 0
        out = capsys.readouterr().out
        assert "0 warning(s)" in out

    def test_tool_selection(self, clean_file, capsys):
        # The lock-disciplined trace is clean for Eraser too.
        assert main(["check", clean_file, "--tool", "Eraser"]) == 0

    def test_all_tools(self, racy_file, capsys):
        assert main(["check", racy_file, "--all-tools"]) == 1
        out = capsys.readouterr().out
        for name in ("Empty", "Eraser", "Goldilocks", "DJIT+"):
            assert name in out

    def test_oracle_flag(self, racy_file, capsys):
        main(["check", racy_file, "--oracle"])
        out = capsys.readouterr().out
        assert "racy variables: x" in out

    def test_jsonl_format(self, tmp_path, capsys):
        path = tmp_path / "racy.jsonl"
        path.write_text(dumps_jsonl(RACY))
        assert main(["check", str(path), "--format", "jsonl"]) == 1

    def test_infeasible_trace_warns(self, tmp_path, capsys):
        path = tmp_path / "bad.trace"
        path.write_text("rel(0, m)\n")
        main(["check", str(path)])
        out = capsys.readouterr().out
        assert "not feasible" in out


class TestCheckSharded:
    """The ``--jobs`` / ``--shards`` / ``--resume`` engine path."""

    def test_sharded_warnings_identical_to_in_process(self, racy_file, capsys):
        assert main(["check", racy_file]) == 1
        single_out = capsys.readouterr().out
        assert main(["check", racy_file, "--jobs", "1", "--shards", "2"]) == 1
        sharded_out = capsys.readouterr().out
        # Identical modulo the feasibility pre-check (needs the full trace).
        single_lines = [
            line
            for line in single_out.splitlines()
            if "not feasible" not in line
        ]
        assert sharded_out.splitlines() == single_lines

    def test_sharded_clean_trace_exits_zero(self, clean_file):
        assert main(["check", clean_file, "--shards", "3"]) == 0

    def test_multiprocess_jobs(self, racy_file, capsys):
        assert main(["check", racy_file, "--jobs", "2"]) == 1
        assert "write-write race on 'x'" in capsys.readouterr().out

    def test_resume_reuses_partition_and_checkpoints(
        self, racy_file, tmp_path, capsys
    ):
        workdir = str(tmp_path / "work")
        assert main(["check", racy_file, "--shards", "2", "--resume", workdir]) == 1
        first = capsys.readouterr().out
        import os

        results = os.path.join(workdir, "results", "FastTrack")
        mtimes = {
            name: os.path.getmtime(os.path.join(results, name))
            for name in os.listdir(results)
        }
        assert main(["check", racy_file, "--resume", workdir]) == 1
        second = capsys.readouterr().out
        assert first == second
        for name, mtime in mtimes.items():
            assert os.path.getmtime(os.path.join(results, name)) == mtime

    def test_resume_shard_mismatch_is_an_error(self, racy_file, tmp_path, capsys):
        workdir = str(tmp_path / "work")
        assert main(["check", racy_file, "--shards", "2", "--resume", workdir]) == 1
        capsys.readouterr()
        assert main(["check", racy_file, "--shards", "5", "--resume", workdir]) == 2
        assert "partitioned into 2 shards" in capsys.readouterr().err

    def test_sharded_all_tools(self, racy_file, capsys):
        assert main(["check", racy_file, "--shards", "2", "--all-tools"]) == 1
        out = capsys.readouterr().out
        for name in ("Empty", "Eraser", "Goldilocks", "DJIT+"):
            assert name in out

    def test_sharded_oracle_rejected(self, racy_file, capsys):
        assert main(["check", racy_file, "--jobs", "2", "--oracle"]) == 2
        assert "--oracle" in capsys.readouterr().err

    def test_sharded_report(self, racy_file, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert (
            main(["check", racy_file, "--shards", "2", "--report", str(report)])
            == 1
        )
        assert "Engine report" in report.read_text()

    def test_parse_error_shows_line_number(self, tmp_path, capsys):
        path = tmp_path / "bad.trace"
        path.write_text("wr(0, x)\nfrobnicate(1, y)\n")
        assert main(["check", str(path)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err and "frobnicate" in err
        assert main(["check", str(path), "--shards", "2"]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err


class TestRecordAndAnnotate:
    def test_record_to_file_and_check(self, tmp_path, capsys):
        path = tmp_path / "tsp.trace"
        assert (
            main(
                [
                    "record",
                    "tsp",
                    "--scale",
                    "120",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        assert main(["check", str(path)]) == 1  # tsp has its benign race
        out = capsys.readouterr().out
        assert "best" in out

    def test_record_stdout(self, capsys):
        assert main(["record", "philo", "--scale", "60", "-o", "-"]) == 0
        out = capsys.readouterr().out
        assert "acq(" in out

    def test_record_unknown_workload(self, capsys):
        assert main(["record", "nope"]) == 2

    def test_annotate(self, clean_file, capsys):
        assert main(["annotate", clean_file]) == 0
        out = capsys.readouterr().out
        assert "C=<" in out
        assert "acq(0, m)" in out

    def test_classify(self, clean_file, capsys):
        assert main(["classify", clean_file, "-v"]) == 0
        out = capsys.readouterr().out
        assert "lock-protected" in out
        assert "x" in out

    def test_minimize(self, racy_file, tmp_path, capsys):
        out_path = tmp_path / "witness.trace"
        assert (
            main(["minimize", racy_file, "--var", "x", "-o", str(out_path)])
            == 0
        )
        witness = out_path.read_text().strip().splitlines()
        assert 0 < len(witness) <= 3
        assert main(["check", str(out_path)]) == 1  # still racy

    def test_minimize_clean_trace_errors(self, clean_file, capsys):
        assert main(["minimize", clean_file]) == 2
        assert "error" in capsys.readouterr().err
