"""Tests for the random feasible-trace generator itself."""

import random

from hypothesis import given, settings

from repro.trace import events as ev
from repro.trace.feasibility import check_feasible
from repro.trace.generators import (
    GeneratorConfig,
    figure4_trace,
    random_feasible_trace,
    random_trace_suite,
    section2_trace,
    traces,
)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = random_feasible_trace(random.Random(7))
        b = random_feasible_trace(random.Random(7))
        assert a == b

    def test_suite_is_reproducible(self):
        first = random_trace_suite(seed=5, count=4)
        second = random_trace_suite(seed=5, count=4)
        assert first == second
        assert len(first) == 4


class TestConfigKnobs:
    def test_zero_events(self):
        trace = random_feasible_trace(
            random.Random(0), GeneratorConfig(max_events=0)
        )
        assert len(trace) == 0

    def test_thread_cap_respected(self):
        config = GeneratorConfig(
            max_events=200, max_threads=3, p_fork=0.5, seed_threads=1
        )
        trace = random_feasible_trace(random.Random(1), config)
        assert len(trace.threads()) <= 3

    def test_no_sync_flavors_when_disabled(self):
        config = GeneratorConfig(
            max_events=120,
            p_fork=0.0,
            p_join=0.0,
            p_barrier=0.0,
            p_volatile=0.0,
            seed_threads=2,
        )
        trace = random_feasible_trace(random.Random(3), config)
        kinds = {e.kind for e in trace}
        assert ev.FORK not in kinds
        assert ev.BARRIER_RELEASE not in kinds
        assert ev.VOLATILE_READ not in kinds
        assert ev.VOLATILE_WRITE not in kinds

    def test_atomic_blocks_emitted_and_balanced(self):
        config = GeneratorConfig(
            max_events=200, p_guarded_block=0.6, p_atomic=1.0, seed_threads=2
        )
        trace = random_feasible_trace(random.Random(11), config)
        enters = sum(1 for e in trace if e.kind == ev.ENTER)
        exits = sum(1 for e in trace if e.kind == ev.EXIT)
        assert enters == exits > 0

    def test_full_discipline_guards_every_access(self):
        config = GeneratorConfig(
            max_events=150, discipline=1.0, seed_threads=3
        )
        trace = random_feasible_trace(random.Random(9), config)
        held = {}
        for event in trace:
            if event.kind == ev.ACQUIRE:
                held.setdefault(event.tid, set()).add(event.target)
            elif event.kind == ev.RELEASE:
                held[event.tid].discard(event.target)
            elif event.kind in (ev.READ, ev.WRITE):
                assert held.get(event.tid), event  # always under some lock


class TestWorkedExamples:
    def test_figure4_trace_shape(self):
        trace = figure4_trace()
        assert check_feasible(trace) == []
        body = trace[-8:]
        assert body[0] == ev.wr(0, "x")
        assert body[1] == ev.fork(0, 1)

    def test_section2_trace_shape(self):
        trace = section2_trace()
        assert check_feasible(trace) == []
        assert trace[-1] == ev.wr(1, "x")


class TestStrategy:
    @settings(max_examples=30, deadline=None)
    @given(traces(config=GeneratorConfig(max_events=50, p_barrier=0.1)))
    def test_strategy_traces_feasible(self, trace):
        assert check_feasible(trace) == []
