"""Cross-tool precision properties (the Table 1 warning-column structure).

* The precise tools — BasicVC, DJIT+, Goldilocks (sound configuration), and
  FastTrack — report exactly the racy variables ("DJIT+ and BASICVC
  reported exactly the same race conditions as FASTTRACK").
* MultiRace never reports a false alarm (its skipped checks only lose
  races), and everything it reports FastTrack reports too.
* Eraser is both unsound and incomplete: no containment in either
  direction is asserted, but on strictly lock-disciplined traces it must
  stay quiet.
"""

from hypothesis import given, settings

from repro.core.fasttrack import FastTrack
from repro.detectors import BasicVC, DJITPlus, Eraser, Goldilocks, MultiRace
from repro.trace.generators import GeneratorConfig, traces
from repro.trace.happens_before import HappensBefore


def warned(tool):
    return {tool.shadow_key(w.var) for w in tool.warnings}


@settings(max_examples=100, deadline=None)
@given(traces())
def test_precise_tools_agree_with_the_oracle(trace):
    events = list(trace)
    racy = HappensBefore(events).racy_variables()
    for tool_cls in (BasicVC, DJITPlus, Goldilocks, FastTrack):
        tool = tool_cls().process(events)
        assert warned(tool) == racy, tool_cls.__name__


@settings(max_examples=100, deadline=None)
@given(traces())
def test_multirace_has_no_false_alarms(trace):
    events = list(trace)
    racy = HappensBefore(events).racy_variables()
    tool = MultiRace().process(events)
    assert warned(tool) <= racy


@settings(max_examples=60, deadline=None)
@given(traces(config=GeneratorConfig(discipline=1.0, max_events=80, p_fork=0.0, p_join=0.0, p_barrier=0.0, p_volatile=0.0, seed_threads=3)))
def test_eraser_accepts_strict_lock_discipline(trace):
    # With every access lock-protected and no fork/join noise, Eraser's own
    # discipline holds, so it must not warn.
    tool = Eraser().process(list(trace))
    assert tool.warnings == []


@settings(max_examples=60, deadline=None)
@given(traces())
def test_goldilocks_flush_threshold_does_not_change_verdicts(trace):
    """The lazy event-list management (our GC surrogate) is transparent."""
    events = list(trace)
    eager = Goldilocks(flush_threshold=4).process(events)
    lazy = Goldilocks(flush_threshold=1 << 30).process(events)
    assert warned(eager) == warned(lazy)


@settings(max_examples=60, deadline=None)
@given(traces())
def test_unsound_goldilocks_only_misses(trace):
    """The thread-local extension may drop races but never invent them."""
    events = list(trace)
    racy = HappensBefore(events).racy_variables()
    tool = Goldilocks(unsound_thread_local=True).process(events)
    assert warned(tool) <= racy
