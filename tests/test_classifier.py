"""Tests for the sharing-pattern classifier (the Section 1 insight)."""

from repro.detectors.classifier import (
    LOCK_PROTECTED,
    RACY,
    READ_SHARED,
    SYNCHRONIZED,
    THREAD_LOCAL,
    SharingClassifier,
)
from repro.bench.workload import WORKLOADS
from repro.trace import events as ev


def classify(events):
    tool = SharingClassifier().process(list(events))
    return tool.classify()


class TestClasses:
    def test_thread_local(self):
        classes = classify([ev.wr(0, "x"), ev.rd(0, "x"), ev.wr(0, "x")])
        assert classes == {"x": THREAD_LOCAL}

    def test_lock_protected(self):
        classes = classify(
            [
                ev.acq(0, "m"),
                ev.wr(0, "x"),
                ev.rel(0, "m"),
                ev.acq(1, "m"),
                ev.wr(1, "x"),
                ev.rel(1, "m"),
            ]
        )
        assert classes["x"] == LOCK_PROTECTED

    def test_read_shared(self):
        classes = classify(
            [
                ev.wr(0, "x"),
                ev.fork(0, 1),
                ev.fork(0, 2),
                ev.rd(1, "x"),
                ev.rd(2, "x"),
                ev.rd(0, "x"),
            ]
        )
        assert classes["x"] == READ_SHARED

    def test_synchronized(self):
        # Shared, written by both threads, race-free via join, no lock.
        classes = classify(
            [
                ev.fork(0, 1),
                ev.wr(1, "x"),
                ev.rd(1, "x"),
                ev.join(0, 1),
                ev.rd(0, "x"),
                ev.wr(0, "x"),
            ]
        )
        assert classes["x"] == SYNCHRONIZED

    def test_racy(self):
        classes = classify([ev.fork(0, 1), ev.wr(0, "x"), ev.wr(1, "x")])
        assert classes["x"] == RACY

    def test_write_after_share_demotes_read_shared(self):
        classes = classify(
            [
                ev.wr(0, "x"),
                ev.fork(0, 1),
                ev.rd(1, "x"),
                ev.join(0, 1),
                ev.wr(0, "x"),  # initialize-share-reinitialize
            ]
        )
        assert classes["x"] == SYNCHRONIZED


class TestFractions:
    def test_fractions_sum_to_one(self):
        tool = SharingClassifier().process(
            list(WORKLOADS["mtrt"].trace(scale=200))
        )
        by_accesses = tool.fractions()
        by_variables = tool.fractions(by_accesses=False)
        assert abs(sum(by_accesses.values()) - 1.0) < 1e-9
        assert abs(sum(by_variables.values()) - 1.0) < 1e-9

    def test_paper_insight_holds_on_the_workloads(self):
        """Section 1: the vast majority of data is thread-local,
        lock-protected, or read-shared."""
        for name in ("crypt", "montecarlo", "sparse", "mtrt", "colt"):
            tool = SharingClassifier().process(
                list(WORKLOADS[name].trace(scale=200))
            )
            fractions = tool.fractions()
            common = (
                fractions[THREAD_LOCAL]
                + fractions[LOCK_PROTECTED]
                + fractions[READ_SHARED]
            )
            assert common > 0.9, (name, fractions)

    def test_race_verdict_matches_fasttrack(self):
        trace = list(WORKLOADS["tsp"].trace(scale=150))
        tool = SharingClassifier().process(trace)
        racy_vars = {
            key for key, cls in tool.classify().items() if cls == RACY
        }
        from repro.core.fasttrack import FastTrack

        plain = FastTrack().process(trace)
        assert racy_vars == plain._warned_keys
