"""Tests for on-line granularity adaptation (Section 5.1 discussion)."""

from repro.core.adaptive import AdaptiveFastTrack
from repro.core.detector import coarse_grain
from repro.core.fasttrack import FastTrack
from repro.trace import events as ev

# Two fields of one object, each consistently protected by its OWN lock:
# race-free, but a shared per-object shadow state sees a conflict.
FALSE_SHARING = [
    ev.fork(0, 1),
    ev.acq(0, "m1"),
    ev.wr(0, ("obj", 7, "f1")),
    ev.rel(0, "m1"),
    ev.acq(1, "m2"),
    ev.wr(1, ("obj", 7, "f2")),
    ev.rel(1, "m2"),
    ev.acq(0, "m1"),
    ev.wr(0, ("obj", 7, "f1")),
    ev.rel(0, "m1"),
]

# A real, repeating per-field race on one element of an object.
REAL_RACE = [
    ev.fork(0, 1),
    ev.wr(0, ("arr", 3, 0)),
    ev.wr(1, ("arr", 3, 0)),
    ev.wr(0, ("arr", 3, 0)),
    ev.wr(1, ("arr", 3, 0)),
]


class TestCoarseFalseAlarms:
    def test_plain_coarse_fasttrack_reports_spuriously(self):
        tool = FastTrack(shadow_key=coarse_grain).process(FALSE_SHARING)
        assert tool.warning_count == 1  # Table 3's coarse-grain false alarm

    def test_fine_fasttrack_is_clean(self):
        tool = FastTrack().process(FALSE_SHARING)
        assert tool.warnings == []

    def test_adaptive_refines_instead_of_warning(self):
        tool = AdaptiveFastTrack().process(FALSE_SHARING)
        assert tool.warnings == []
        assert tool.adaptations == 1
        assert ("obj", 7) in tool.refined_objects


class TestRealRaces:
    def test_adaptive_still_reports_repeating_races(self):
        tool = AdaptiveFastTrack().process(REAL_RACE)
        assert tool.adaptations == 1  # first conflict triggers refinement
        assert tool.warning_count == 1  # the race repeats at fine grain
        assert tool.warnings[0].var == ("arr", 3, 0)

    def test_documented_precision_loss_on_one_shot_races(self):
        # The two conflicting accesses straddle the refinement: missed.
        one_shot = REAL_RACE[:3]
        tool = AdaptiveFastTrack().process(one_shot)
        assert tool.warnings == []
        assert tool.adaptations == 1
        # Plain fine-grain FastTrack catches it, as Theorem 1 requires.
        assert FastTrack().process(one_shot).warning_count == 1


class TestFootprint:
    def test_memory_between_fine_and_coarse(self):
        trace = []
        trace.append(ev.fork(0, 1))
        for i in range(64):
            trace.append(ev.wr(0, ("big", 0, i)))
            trace.append(ev.rd(0, ("big", 0, i)))
        fine = FastTrack().process(trace)
        coarse = FastTrack(shadow_key=coarse_grain).process(trace)
        adaptive = AdaptiveFastTrack().process(trace)
        assert (
            coarse.shadow_memory_words()
            <= adaptive.shadow_memory_words()
            <= fine.shadow_memory_words()
        )
        assert adaptive.shadow_memory_words() < fine.shadow_memory_words()

    def test_scalars_behave_like_plain_fasttrack(self):
        racy_scalar = [ev.fork(0, 1), ev.wr(0, "x"), ev.wr(1, "x")]
        tool = AdaptiveFastTrack().process(racy_scalar)
        assert tool.warning_count == 1
        assert tool.adaptations == 0
