"""Tests for live instrumentation of real Python threads."""

import time

from repro.core.fasttrack import FastTrack
from repro.detectors import Eraser
from repro.runtime.monitor import (
    MonitoredBarrier,
    MonitoredCondition,
    MonitoredLock,
    SharedVar,
    ThreadMonitor,
    VolatileVar,
)
from repro.trace import events as ev
from repro.trace.feasibility import check_feasible
from repro.trace.happens_before import racy_variables


class TestEventCapture:
    def test_fork_join_and_accesses_recorded(self):
        monitor = ThreadMonitor()
        data = SharedVar(monitor, "data", 0)

        def worker():
            data.value = data.value + 1

        thread = monitor.spawn(worker)
        monitor.join(thread)
        trace = monitor.trace()
        assert check_feasible(trace) == []
        kinds = {e.kind for e in trace}
        assert len(trace) >= 4  # fork, rd, wr, join

    def test_locked_counter_is_race_free(self):
        monitor = ThreadMonitor()
        counter = SharedVar(monitor, "counter", 0)
        lock = MonitoredLock(monitor, "m")

        def worker():
            for _ in range(20):
                with lock:
                    counter.value = counter.value + 1

        threads = [monitor.spawn(worker) for _ in range(3)]
        for thread in threads:
            monitor.join(thread)
        trace = monitor.trace()
        assert check_feasible(trace) == []
        assert racy_variables(trace) == set()
        assert monitor.check(FastTrack()).warnings == []

    def test_unlocked_counter_race_detected(self):
        monitor = ThreadMonitor()
        counter = SharedVar(monitor, "counter", 0)

        def worker():
            for _ in range(50):
                counter.value = counter.value + 1
                time.sleep(0)  # encourage interleaving

        threads = [monitor.spawn(worker) for _ in range(3)]
        for thread in threads:
            monitor.join(thread)
        tool = monitor.check(FastTrack())
        assert [w.var for w in tool.warnings] == ["counter"]
        # The trace order is a linearization of the real execution, so the
        # oracle agrees.
        assert racy_variables(monitor.trace()) == {"counter"}

    def test_eraser_also_runs_on_live_traces(self):
        monitor = ThreadMonitor()
        flag = SharedVar(monitor, "flag", False)

        def worker():
            flag.value = True

        a = monitor.spawn(worker)
        b = monitor.spawn(worker)
        monitor.join(a)
        monitor.join(b)
        tool = monitor.check(Eraser())
        assert tool.warning_count == 1  # two unlocked writers

    def test_volatile_publication_is_race_free(self):
        monitor = ThreadMonitor()
        data = SharedVar(monitor, "data", None)
        ready = VolatileVar(monitor, "ready", False)

        def producer():
            data.value = 42
            ready.value = True

        def consumer():
            while not ready.value:
                time.sleep(0.001)
            _ = data.value

        p = monitor.spawn(producer)
        c = monitor.spawn(consumer)
        monitor.join(p)
        monitor.join(c)
        trace = monitor.trace()
        assert check_feasible(trace) == []
        assert monitor.check(FastTrack()).warnings == []
        # The same handoff WITHOUT the volatile is a race: remove the
        # volatile events and re-check.
        stripped = [
            e
            for e in trace
            if e.kind not in (ev.VOLATILE_READ, ev.VOLATILE_WRITE)
        ]
        assert FastTrack().process(stripped).warning_count == 1

    def test_monitored_barrier_orders_phases(self):
        monitor = ThreadMonitor()
        cells = [SharedVar(monitor, ("cell", i)) for i in range(3)]
        barrier = MonitoredBarrier(monitor, parties=3)

        def worker(index):
            cells[index].value = index  # phase 1: write own cell
            barrier.wait()
            for cell in cells:  # phase 2: read everyone's
                _ = cell.value

        threads = [monitor.spawn(worker, i) for i in range(3)]
        for thread in threads:
            monitor.join(thread)
        trace = monitor.trace()
        assert check_feasible(trace) == []
        barriers = [e for e in trace if e.kind == ev.BARRIER_RELEASE]
        assert len(barriers) == 1 and len(barriers[0].target) == 3
        assert monitor.check(FastTrack()).warnings == []

    def test_monitored_condition_guarded_handoff(self):
        monitor = ThreadMonitor()
        box = SharedVar(monitor, "box", None)
        cond = MonitoredCondition(monitor, "box_cond")
        state = {"full": False}

        def producer():
            with cond:
                box.value = "payload"
                state["full"] = True
                cond.notify_all()

        def consumer():
            with cond:
                while not state["full"]:
                    cond.wait(timeout=1.0)
                _ = box.value

        c = monitor.spawn(consumer)
        time.sleep(0.01)
        p = monitor.spawn(producer)
        monitor.join(p)
        monitor.join(c)
        trace = monitor.trace()
        assert check_feasible(trace) == []
        assert monitor.check(FastTrack()).warnings == []

    def test_tids_are_dense_and_stable(self):
        monitor = ThreadMonitor()
        assert monitor.current_tid() == 0

        def worker():
            pass

        first = monitor.spawn(worker)
        second = monitor.spawn(worker)
        monitor.join(first)
        monitor.join(second)
        trace = monitor.trace()
        assert trace.threads() == {0, 1, 2}
