"""Differential tests: the sharded engine vs single-threaded detectors.

The engine's whole claim (docs/ENGINE.md) is that sharding by variable with
broadcast synchronization loses nothing: for every tool, every shard count,
and every trace, the merged report must be *warning-for-warning identical*
to ``make_detector(tool).process(trace)`` — same variables, same kinds,
same ``event_index`` positions, same ``prior`` descriptions, same
suppressed-warning count.  These tests enforce that over seeded random
feasible traces spanning the paper's sharing idioms (disciplined,
semi-disciplined, and chaotic), at 1, 2, and 4 shards.
"""

import json
import random

import pytest

from repro import engine
from repro.detectors import DETECTORS, make_detector
from repro.engine import transport as shard_transport
from repro.engine.checkpoint import CheckpointError, Workdir
from repro.report import dumps_result
from repro.trace.generators import GeneratorConfig, random_feasible_trace

#: The tools the issue calls out, spanning precise VC tools and Eraser.
TOOLS = ("FastTrack", "DJIT+", "Eraser")
SHARD_COUNTS = (1, 2, 4)

#: From fully lock-disciplined (race-free) to chaotic (many races), with
#: fork/join, barriers, and volatiles in the mix.
CONFIGS = (
    GeneratorConfig(
        max_events=350, max_threads=4, n_vars=8, n_locks=3, discipline=1.0
    ),
    GeneratorConfig(
        max_events=350,
        max_threads=5,
        n_vars=10,
        n_locks=2,
        discipline=0.5,
        p_fork=0.1,
        p_join=0.08,
        p_volatile=0.08,
    ),
    GeneratorConfig(
        max_events=350,
        max_threads=6,
        n_vars=6,
        n_locks=2,
        discipline=0.1,
        p_fork=0.12,
        p_barrier=0.05,
    ),
)
SEEDS = (0, 1, 2, 3)


def _tool_kwargs(tool):
    # Mirror the CLI: FastTrack reports both sides of a race via sites.
    return {"track_sites": True} if tool == "FastTrack" else {}


def _traces():
    for config_index, config in enumerate(CONFIGS):
        for seed in SEEDS:
            rng = random.Random(1000 * config_index + seed)
            yield random_feasible_trace(rng, config)


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
@pytest.mark.parametrize("tool", TOOLS)
def test_sharded_identical_to_single_threaded(tool, nshards):
    some_warnings = 0
    for trace in _traces():
        kwargs = _tool_kwargs(tool)
        single = make_detector(tool, **kwargs).process(trace)
        report = engine.check_events(
            trace.events, tool=tool, nshards=nshards, tool_kwargs=kwargs
        )
        assert report.warnings == single.warnings
        assert [str(w) for w in report.warnings] == [
            str(w) for w in single.warnings
        ]
        assert report.suppressed_warnings == single.suppressed_warnings
        assert report.events == len(trace)
        assert report.stats.reads == single.stats.reads
        assert report.stats.writes == single.stats.writes
        assert report.stats.syncs == single.stats.syncs
        some_warnings += report.warning_count
    # The chaotic configurations must actually exercise the merge path.
    assert some_warnings > 0


def test_every_registered_tool_survives_sharding():
    rng = random.Random(99)
    trace = random_feasible_trace(
        rng,
        GeneratorConfig(
            max_events=500, max_threads=5, n_vars=12, discipline=0.3
        ),
    )
    for tool in DETECTORS:
        kwargs = _tool_kwargs(tool)
        single = make_detector(tool, **kwargs).process(trace)
        report = engine.check_events(
            trace.events, tool=tool, nshards=3, tool_kwargs=kwargs
        )
        if tool == "WCP":
            # Sharding envelope (docs/PREDICT.md): per-variable routing
            # hides *other* shards' conflict joins, so sharded WCP warns
            # on a superset of the single-threaded run's variables — it
            # never loses a warning.
            assert {w.var for w in single.warnings} <= {
                w.var for w in report.warnings
            }, tool
            continue
        assert report.warnings == single.warnings, tool
        assert report.suppressed_warnings == single.suppressed_warnings, tool


def test_multiprocessing_workers_identical(tmp_path):
    rng = random.Random(7)
    trace = random_feasible_trace(
        rng,
        GeneratorConfig(
            max_events=800, max_threads=5, n_vars=16, discipline=0.4
        ),
    )
    kwargs = _tool_kwargs("FastTrack")
    single = make_detector("FastTrack", **kwargs).process(trace)
    report = engine.check_events(
        trace.events,
        tool="FastTrack",
        nshards=4,
        jobs=2,
        workdir=str(tmp_path),
        tool_kwargs=kwargs,
    )
    assert report.warnings == single.warnings
    assert report.suppressed_warnings == single.suppressed_warnings


def test_cross_shard_site_dedup_matches_single_threaded():
    """Two variables in *different* shards race at the same source site: a
    single-threaded run reports only the earlier one (the site dedup of the
    reporting discipline), so the merge replay must drop the later one."""
    from repro.engine.partition import shard_of
    from repro.trace import events as ev
    from repro.trace.trace import Trace

    nshards = 2
    var_a = "a0"
    var_b = next(
        f"b{i}"
        for i in range(100)
        if shard_of(f"b{i}", nshards) != shard_of(var_a, nshards)
    )
    site = "hot.line"
    trace = Trace(
        [
            ev.fork(0, 1),
            ev.wr(0, var_a, site=site),
            ev.wr(0, var_b, site=site),
            ev.wr(1, var_a, site=site),  # race on var_a, reported
            ev.wr(1, var_b, site=site),  # race on var_b, same site: suppressed
        ]
    )
    single = make_detector("FastTrack", track_sites=True).process(trace)
    report = engine.check_events(
        trace.events,
        tool="FastTrack",
        nshards=nshards,
        tool_kwargs={"track_sites": True},
    )
    assert single.warning_count == 1  # the premise: site dedup fired
    assert report.warnings == single.warnings
    assert report.suppressed_warnings == single.suppressed_warnings == 1


# -- transport equivalence: shm and mmap publish the same bytes ---------------


def _reference_trace():
    rng = random.Random(4242)
    return random_feasible_trace(
        rng,
        GeneratorConfig(
            max_events=600,
            max_threads=5,
            n_vars=14,
            n_locks=2,
            discipline=0.3,
            p_fork=0.1,
            p_volatile=0.05,
        ),
    )


_TRANSPORTS = ("mmap",) + (
    ("shm",) if shard_transport.supports_shm() else ()
)


@pytest.mark.parametrize("nshards", SHARD_COUNTS)
def test_all_tools_bit_identical_across_transports(tmp_path, nshards):
    """For every registered tool and shard count, the canonical
    ``repro.result/1`` bytes must not depend on how shard buffers
    travel — shm blocks and mmap files are views over the same columns.
    """
    trace = _reference_trace()
    for tool in DETECTORS:
        kwargs = _tool_kwargs(tool)
        documents = {}
        for transport in _TRANSPORTS:
            workdir = tmp_path / f"{tool}-{nshards}-{transport}"
            report = engine.check_events(
                trace.events,
                tool=tool,
                nshards=nshards,
                workdir=str(workdir),
                tool_kwargs=kwargs,
                transport=transport,
            )
            documents[transport] = dumps_result(report.to_json())
            assert report.timings is not None
            assert report.timings["transport"] == transport
            # Caller-provided workdirs are the caller's to sweep (the
            # engine only tears down directories it created itself).
            Workdir(str(workdir)).release_blocks()
        assert len(set(documents.values())) == 1, (tool, nshards)
    assert shard_transport.leaked_blocks() == []


def test_crash_resume_over_v3_partition(tmp_path):
    """A resumed run over a v3 partition reuses checkpoints: delete one
    shard's result, resume, and the bytes match the uninterrupted run."""
    trace = _reference_trace()
    workdir = tmp_path / "resume"
    kwargs = _tool_kwargs("FastTrack")

    def run():
        return engine.check_events(
            trace.events,
            tool="FastTrack",
            nshards=4,
            workdir=str(workdir),
            resume=True,
            tool_kwargs=kwargs,
            transport="mmap",
        )

    full = dumps_result(run().to_json())
    wd = Workdir(str(workdir))
    meta = wd.read_meta()
    assert meta is not None and meta["format_version"] == 3
    assert meta["transport"] == "mmap"
    # Simulate a crash that lost one shard's checkpoint mid-run: the
    # partition and the other three checkpoints survive on disk.
    import os

    os.unlink(wd.result_path("FastTrack", 2))
    assert sorted(wd.completed_shards("FastTrack", 4)) == [0, 1, 3]
    assert dumps_result(run().to_json()) == full
    assert sorted(wd.completed_shards("FastTrack", 4)) == [0, 1, 2, 3]


def test_v2_workdir_rejected_with_version_error(tmp_path):
    """Resuming against a pickle-era (v2) partition must fail fast and
    name both versions — never silently re-partition over it."""
    trace = _reference_trace()
    workdir = tmp_path / "v2"
    workdir.mkdir()
    (workdir / "meta.json").write_text(json.dumps({
        "format_version": 2,
        "nshards": 4,
        "events": len(trace),
        "batches": {"0": 1, "1": 1, "2": 1, "3": 1},
    }))
    with pytest.raises(CheckpointError) as exc:
        engine.check_events(
            trace.events,
            tool="FastTrack",
            nshards=4,
            workdir=str(workdir),
            resume=True,
            transport="mmap",
        )
    message = str(exc.value)
    assert "v2" in message and "v3" in message
    assert "fresh directory" in message
