"""Tests for the table renderers and the bench CLI plumbing."""

import json

import pytest

from repro.bench import harness, reporting
from repro.bench.__main__ import main as bench_main


@pytest.fixture(scope="module")
def table1_results():
    return harness.run_table1(scale=120, workloads=("mtrt", "hedc"))


class TestTable1Rendering:
    def test_not_compute_bound_star(self, table1_results):
        text = reporting.format_table1(table1_results)
        assert "hedc*" in text  # the paper's asterisk convention
        assert "mtrt " in text or "mtrt" in text

    def test_average_excludes_starred_rows(self, table1_results):
        text = reporting.format_table1(table1_results)
        assert "Average" in text

    def test_paper_rows_interleaved(self, table1_results):
        text = reporting.format_table1(table1_results)
        assert text.count("(paper)") == 2

    def test_warning_totals_row(self, table1_results):
        text = reporting.format_table1(table1_results)
        assert "Total" in text


class TestOtherRenderers:
    def test_table2_shows_paper_ratio_column(self):
        results = harness.run_table2(scale=120, workloads=("mtrt",))
        text = reporting.format_table2(results)
        assert "(paper)" in text
        assert "796,816,918" in text  # the published totals footnote

    def test_composition_renders_skipped_cell_as_dash(self):
        table = harness.run_composition(
            scale=120,
            workloads=("mtrt",),
            checkers=("Atomizer",),
            prefilters=("None", "Eraser", "FastTrack"),
            repeats=1,
        )
        text = reporting.format_composition(table)
        assert "—" in text

    def test_figure2_mentions_every_rule(self):
        freq = harness.run_rule_frequencies(scale=120, workloads=("mtrt",))
        text = reporting.format_rule_frequencies(freq)
        for rule in (
            "FT READ SAME EPOCH",
            "FT READ SHARE",
            "FT WRITE SHARED",
            "DJIT+ WRITE",
        ):
            assert rule in text


class TestBenchCli:
    def test_single_experiment(self, capsys):
        assert bench_main(["figure2", "--scale", "100"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "Table 1" not in out

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "results.json"
        assert (
            bench_main(["figure2", "--scale", "100", "--json", str(target)])
            == 0
        )
        payload = json.loads(target.read_text())
        assert "figure2" in payload
        assert payload["figure2"]["reads"] > 0

    def test_json_to_stdout(self, capsys):
        assert bench_main(["figure2", "--scale", "100", "--json", "-"]) == 0
        out = capsys.readouterr().out
        assert '"figure2"' in out

    def test_repro_cli_bench_passthrough(self, capsys):
        from repro.cli import main

        assert main(["bench", "figure2", "--scale", "100"]) == 0
        assert "Figure 2" in capsys.readouterr().out
