"""Differential fuzzing: all the precise tools against each other and the
oracle, over a large deterministic corpus of feasible traces.

This complements the hypothesis suites with bigger traces (hundreds of
events, more threads, every synchronization flavor at once) run across a
fixed seed corpus, so a regression anywhere in the epoch/VC/lockset
machinery surfaces as a cross-tool disagreement.
"""

import random

import pytest

from repro.core.fasttrack import FastTrack
from repro.detectors import BasicVC, DJITPlus, Eraser, Goldilocks, MultiRace
from repro.detectors.registry import make_detector
from repro.predict import WCPDetector
from repro.kernels import KERNEL_TOOLS, run_kernel
from repro.trace.columnar import ColumnarTrace
from repro.trace.feasibility import check_feasible
from repro.trace.generators import GeneratorConfig, random_feasible_trace
from repro.trace.happens_before import HappensBefore

CORPUS_CONFIGS = [
    GeneratorConfig(
        max_events=350,
        max_threads=6,
        n_vars=8,
        n_locks=3,
        n_volatiles=2,
        discipline=discipline,
        p_fork=0.06,
        p_join=0.06,
        p_barrier=0.03,
        p_volatile=0.05,
        p_atomic=0.3,
        seed_threads=2,
    )
    for discipline in (0.0, 0.4, 0.8, 1.0)
]


def corpus():
    rng = random.Random(0xFA57)
    for round_index in range(12):
        config = CORPUS_CONFIGS[round_index % len(CORPUS_CONFIGS)]
        yield round_index, random_feasible_trace(rng, config)


@pytest.mark.parametrize("round_index,trace", list(corpus()))
def test_differential(round_index, trace):
    events = list(trace)
    assert check_feasible(events) == []
    oracle = HappensBefore(events).racy_variables()

    verdicts = {}
    for tool_cls in (FastTrack, BasicVC, DJITPlus, Goldilocks):
        tool = tool_cls().process(events)
        verdicts[tool_cls.__name__] = {
            tool.shadow_key(w.var) for w in tool.warnings
        }
    # All precise tools agree with the oracle, hence with each other.
    for name, warned in verdicts.items():
        assert warned == oracle, (round_index, name)

    # The unsound tools never over-report relative to... MultiRace and the
    # unsound Goldilocks never false-alarm; Eraser may do anything, but it
    # must stay silent when the oracle is empty AND the trace is strictly
    # disciplined (covered by its own suite) — here we just ensure it runs.
    multirace = MultiRace().process(events)
    assert {multirace.shadow_key(w.var) for w in multirace.warnings} <= oracle
    unsound = Goldilocks(unsound_thread_local=True).process(events)
    assert {unsound.shadow_key(w.var) for w in unsound.warnings} <= oracle
    Eraser().process(events)  # must not crash on any feasible trace


@pytest.mark.parametrize("round_index,trace", list(corpus()))
def test_fused_kernels_match_generic(round_index, trace):
    """Every fused kernel is bit-identical to the object path over the
    same corpus: warnings (order, indices, priors), CostStats, rule
    counters, and the suppressed-warning tally."""
    events = list(trace)
    columns = ColumnarTrace.from_events(events)
    for tool in KERNEL_TOOLS:
        generic = make_detector(tool).process(events)
        fused = run_kernel(tool, columns)
        context = (round_index, tool)
        assert [str(w) for w in generic.warnings] == [
            str(w) for w in fused.warnings
        ], context
        assert generic.stats.summary() == fused.stats.summary(), context
        assert list(generic.stats.rules.items()) == list(
            fused.stats.rules.items()
        ), context
        assert generic.suppressed_warnings == fused.suppressed_warnings, (
            context
        )


@pytest.mark.parametrize("round_index,trace", list(corpus()))
def test_fasttrack_warnings_subset_of_wcp(round_index, trace):
    """WCP's weak ordering only ever *removes* edges relative to
    happens-before while its own-clock progression matches, so its
    warned-variable set contains FastTrack's on every feasible trace
    (docs/PREDICT.md gives the pointwise-clock argument).  The corpus
    seed is 0xFA57; ``round_index`` pins the failing trace for replay."""
    events = list(trace)
    fasttrack = FastTrack().process(events)
    wcp = WCPDetector().process(events)
    ft_vars = {fasttrack.shadow_key(w.var) for w in fasttrack.warnings}
    wcp_vars = {wcp.shadow_key(w.var) for w in wcp.warnings}
    assert ft_vars <= wcp_vars, (
        "corpus seed 0xFA57, round",
        round_index,
        "FastTrack-only vars",
        ft_vars - wcp_vars,
    )
    # The oracle's racy variables are exactly FastTrack's (Theorem 1), so
    # transitively: every truly racy variable is WCP-warned too.
    oracle = HappensBefore(events).racy_variables()
    assert oracle <= wcp_vars, ("corpus seed 0xFA57, round", round_index)
