"""Tests for the happens-before oracle (Section 2.1 + Section 4 extensions).

The oracle is what Theorem 1 is tested against, so it gets its own scrutiny:
hand-checked orderings for every edge type, plus a cross-check of the bitset
transitive closure against networkx reachability on random traces.
"""

import networkx as nx
from hypothesis import given, settings

from repro.trace import events as ev
from repro.trace.generators import traces
from repro.trace.happens_before import (
    HappensBefore,
    find_races,
    first_races,
    happens_before_graph,
    is_race_free,
    racy_variables,
)


class TestProgramOrder:
    def test_same_thread_ordered(self):
        hb = HappensBefore([ev.rd(0, "x"), ev.wr(0, "x")])
        assert hb.ordered(0, 1)
        assert not hb.ordered(1, 0)
        assert not hb.concurrent(0, 1)

    def test_different_threads_unordered(self):
        hb = HappensBefore([ev.rd(0, "x"), ev.wr(1, "x")])
        assert hb.concurrent(0, 1)


class TestLockOrder:
    def test_release_acquire_edge(self):
        trace = [
            ev.wr(0, "x"),  # 0
            ev.acq(0, "m"),  # 1
            ev.rel(0, "m"),  # 2
            ev.acq(1, "m"),  # 3
            ev.wr(1, "x"),  # 4
        ]
        hb = HappensBefore(trace)
        assert hb.ordered(0, 4)
        assert is_race_free(trace)

    def test_unrelated_locks_do_not_order(self):
        trace = [
            ev.acq(0, "m"),
            ev.wr(0, "x"),
            ev.rel(0, "m"),
            ev.acq(1, "n"),
            ev.wr(1, "x"),
            ev.rel(1, "n"),
        ]
        assert find_races(trace) == [(1, 4)]


class TestForkJoin:
    def test_fork_orders_child(self):
        trace = [ev.wr(0, "x"), ev.fork(0, 1), ev.wr(1, "x")]
        assert is_race_free(trace)

    def test_join_orders_parent(self):
        trace = [
            ev.fork(0, 1),
            ev.wr(1, "x"),
            ev.join(0, 1),
            ev.wr(0, "x"),
        ]
        assert is_race_free(trace)

    def test_sibling_operations_concurrent(self):
        trace = [ev.fork(0, 1), ev.wr(1, "x"), ev.wr(0, "x")]
        assert find_races(trace) == [(1, 2)]

    def test_parent_op_after_fork_concurrent_with_child(self):
        trace = [ev.fork(0, 1), ev.wr(0, "x"), ev.wr(1, "x")]
        assert not is_race_free(trace)


class TestVolatiles:
    def test_volatile_write_orders_subsequent_reader(self):
        trace = [
            ev.wr(0, "x"),  # 0: data
            ev.vol_wr(0, "v"),  # 1: publish
            ev.vol_rd(1, "v"),  # 2: observe
            ev.rd(1, "x"),  # 3: consume
        ]
        assert is_race_free(trace)

    def test_two_volatile_writes_are_unordered(self):
        # Only write->read edges exist (matching [FT WRITE VOLATILE]).
        trace = [ev.vol_wr(0, "v"), ev.vol_wr(1, "v")]
        hb = HappensBefore(trace)
        assert hb.concurrent(0, 1)

    def test_volatile_read_does_not_order_later_write(self):
        trace = [
            ev.vol_rd(0, "v"),  # 0
            ev.wr(0, "x"),  # 1
            ev.vol_wr(1, "v"),  # 2
            ev.wr(1, "x"),  # 3
        ]
        assert find_races(trace) == [(1, 3)]

    def test_reader_sees_all_prior_writes(self):
        trace = [
            ev.wr(0, "x"),  # 0
            ev.vol_wr(0, "v"),  # 1
            ev.wr(2, "y"),  # 2
            ev.vol_wr(2, "v"),  # 3
            ev.vol_rd(1, "v"),  # 4
            ev.rd(1, "x"),  # 5
            ev.rd(1, "y"),  # 6
        ]
        assert is_race_free(trace)


class TestBarriers:
    def test_barrier_orders_across_members(self):
        trace = [
            ev.wr(0, "x"),  # 0
            ev.barrier_rel((0, 1)),  # 1
            ev.rd(1, "x"),  # 2
        ]
        assert is_race_free(trace)

    def test_barrier_does_not_order_nonmembers(self):
        trace = [
            ev.wr(0, "x"),
            ev.barrier_rel((0, 1)),
            ev.rd(2, "x"),
        ]
        assert find_races(trace) == [(0, 2)]

    def test_consecutive_barriers_chain(self):
        trace = [
            ev.wr(0, "x"),
            ev.barrier_rel((0, 1)),
            ev.barrier_rel((0, 1)),
            ev.rd(1, "x"),
        ]
        assert is_race_free(trace)


class TestRaceEnumeration:
    def test_read_read_is_not_a_race(self):
        trace = [ev.rd(0, "x"), ev.rd(1, "x")]
        assert is_race_free(trace)

    def test_race_kinds(self):
        trace = [ev.wr(0, "x"), ev.rd(1, "x"), ev.wr(1, "y"), ev.rd(0, "y")]
        assert racy_variables(trace) == {"x", "y"}

    def test_first_race_per_variable(self):
        trace = [
            ev.wr(0, "x"),  # 0
            ev.wr(1, "x"),  # 1: first race on x
            ev.wr(0, "x"),  # 2: second race on x
        ]
        assert first_races(trace) == {"x": (0, 1)}
        # (0, 2) is not a race: both writes are by thread 0 (program order).
        assert find_races(trace) == [(0, 1), (1, 2)]


class TestAgainstNetworkx:
    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_bitset_closure_matches_graph_reachability(self, trace):
        events = list(trace)
        hb = HappensBefore(events)
        graph = happens_before_graph(events)
        closure = nx.transitive_closure_dag(graph)
        for j in range(len(events)):
            for i in range(j):
                assert hb.ordered(i, j) == closure.has_edge(i, j), (
                    i,
                    j,
                    events,
                )

    def test_graph_nodes_carry_events(self):
        trace = [ev.rd(0, "x")]
        graph = happens_before_graph(trace)
        assert graph.nodes[0]["event"] == trace[0]
