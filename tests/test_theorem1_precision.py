"""E8: Theorem 1 — FastTrack is precise.

    Suppose α is a feasible trace.  Then α is race-free if and only if
    FastTrack reports no warning on α.

We test both directions against the first-principles happens-before oracle
(:mod:`repro.trace.happens_before`), which shares no code with the epoch /
vector-clock machinery.  Beyond the boolean verdict we check the stronger
per-variable guarantee the paper states in footnote 3: FastTrack detects at
least the first race on *each* variable, so the set of warned variables is
exactly the set of racy variables.
"""

from hypothesis import given, settings

from repro.core.fasttrack import FastTrack
from repro.trace.generators import GeneratorConfig, traces
from repro.trace.happens_before import HappensBefore


def warned_variables(tool):
    return {tool.shadow_key(w.var) for w in tool.warnings}


@settings(max_examples=120, deadline=None)
@given(traces())
def test_theorem1_verdict(trace):
    oracle = HappensBefore(list(trace))
    tool = FastTrack().process(trace)
    assert (tool.warning_count == 0) == oracle.is_race_free()


@settings(max_examples=120, deadline=None)
@given(traces())
def test_first_race_per_variable_guarantee(trace):
    oracle = HappensBefore(list(trace))
    tool = FastTrack().process(trace)
    assert warned_variables(tool) == oracle.racy_variables()


@settings(max_examples=60, deadline=None)
@given(traces(config=GeneratorConfig(discipline=1.0, max_events=80)))
def test_fully_disciplined_traces_are_clean(trace):
    # Perfect lock discipline → race-free → no warnings (soundness side).
    oracle = HappensBefore(list(trace))
    assert oracle.is_race_free()
    assert FastTrack().process(trace).warnings == []


@settings(max_examples=60, deadline=None)
@given(traces(config=GeneratorConfig(discipline=0.0, max_events=60)))
def test_chaotic_traces_match_oracle(trace):
    oracle = HappensBefore(list(trace))
    tool = FastTrack().process(trace)
    assert warned_variables(tool) == oracle.racy_variables()


@settings(max_examples=60, deadline=None)
@given(traces())
def test_ablated_fasttrack_is_still_precise(trace):
    """The fast paths and adaptive demotion are pure optimizations: turning
    them off must not change the verdict."""
    oracle_racy = HappensBefore(list(trace)).racy_variables()
    for kwargs in (
        {"enable_fast_paths": False},
        {"demote_on_shared_write": False},
        {"shared_same_epoch": True},
        {
            "enable_fast_paths": False,
            "demote_on_shared_write": False,
            "shared_same_epoch": False,
        },
    ):
        tool = FastTrack(**kwargs).process(trace)
        assert warned_variables(tool) == oracle_racy, kwargs
