"""Property tests for the vector clock lattice (Section 2.2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.vectorclock import VectorClock

vcs = st.lists(
    st.integers(min_value=0, max_value=100), max_size=6
).map(VectorClock)


class TestLatticeLaws:
    @given(vcs)
    def test_leq_reflexive(self, v):
        assert v.leq(v)

    @given(vcs, vcs)
    def test_leq_antisymmetric(self, v1, v2):
        if v1.leq(v2) and v2.leq(v1):
            assert v1 == v2

    @given(vcs, vcs, vcs)
    def test_leq_transitive(self, v1, v2, v3):
        if v1.leq(v2) and v2.leq(v3):
            assert v1.leq(v3)

    @given(vcs, vcs)
    def test_join_is_least_upper_bound(self, v1, v2):
        joined = v1.joined(v2)
        assert v1.leq(joined)
        assert v2.leq(joined)

    @given(vcs, vcs)
    def test_join_commutative(self, v1, v2):
        assert v1.joined(v2) == v2.joined(v1)

    @given(vcs, vcs, vcs)
    def test_join_associative(self, v1, v2, v3):
        assert v1.joined(v2).joined(v3) == v1.joined(v2.joined(v3))

    @given(vcs)
    def test_join_idempotent(self, v):
        assert v.joined(v) == v

    @given(vcs)
    def test_bottom_is_identity(self, v):
        assert VectorClock.bottom().joined(v) == v
        assert VectorClock.bottom().leq(v)


class TestOperations:
    def test_get_beyond_length_is_zero(self):
        assert VectorClock([1, 2]).get(10) == 0

    def test_set_grows(self):
        v = VectorClock()
        v.set(3, 7)
        assert v.get(3) == 7
        assert v.get(0) == 0

    @given(vcs, st.integers(min_value=0, max_value=8))
    def test_inc_increments_one_component(self, v, tid):
        before = v.get(tid)
        snapshot = v.copy()
        v.inc(tid)
        assert v.get(tid) == before + 1
        for other in range(10):
            if other != tid:
                assert v.get(other) == snapshot.get(other)

    @given(vcs)
    def test_copy_is_independent(self, v):
        fresh = v.copy()
        fresh.inc(0)
        assert fresh.get(0) == v.get(0) + 1

    def test_assign_replaces_contents(self):
        v = VectorClock([9, 9])
        v.assign(VectorClock([1]))
        assert v == VectorClock([1])

    @given(vcs)
    def test_as_tuple_trims_trailing_zeros(self, v):
        t = v.as_tuple()
        assert not t or t[-1] != 0

    @given(vcs)
    def test_equal_vcs_hash_equal(self, v):
        assert hash(v.copy()) == hash(v)
        assert VectorClock(list(v.clocks) + [0]) == v

    def test_repr(self):
        assert repr(VectorClock([4, 0])) == "<4,0,...>"
