"""Tests for the simulated runtime (scheduler semantics + feasibility)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.program import Barrier, Program, ThreadHandle
from repro.runtime.scheduler import (
    DeadlockError,
    Scheduler,
    SchedulerError,
    run_program,
)
from repro.trace import events as ev
from repro.trace.feasibility import check_feasible


class TestBasics:
    def test_single_thread_program(self):
        def main(th):
            yield th.write("x")
            yield th.read("x")

        trace = run_program(Program(main))
        assert list(trace) == [ev.wr(0, "x"), ev.rd(0, "x")]

    def test_fork_returns_child_tid(self):
        seen = {}

        def main(th):
            child = yield th.fork(worker)
            seen["child"] = child
            yield th.join(child)

        def worker(th):
            yield th.write("x")

        trace = run_program(Program(main))
        assert seen["child"] == 1
        assert ev.fork(0, 1) in list(trace)
        assert ev.join(0, 1) in list(trace)

    def test_same_seed_same_trace(self):
        def main(th):
            children = []
            for _ in range(3):
                children.append((yield th.fork(worker)))
            for child in children:
                yield th.join(child)

        def worker(th):
            for _ in range(5):
                yield th.write("x")

        first = run_program(Program(main), seed=7)
        second = run_program(Program(main), seed=7)
        assert first == second
        other = run_program(Program(main), seed=8)
        assert len(other) == len(first)

    def test_roundrobin_is_seed_independent(self):
        def main(th):
            child = yield th.fork(worker)
            yield th.write("a")
            yield th.join(child)

        def worker(th):
            yield th.write("b")

        rr1 = run_program(Program(main), seed=1, policy="roundrobin")
        rr2 = run_program(Program(main), seed=99, policy="roundrobin")
        assert rr1 == rr2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(Program(lambda th: iter(())), policy="fifo")


class TestLocking:
    def test_mutual_exclusion_blocks(self):
        order = []

        def main(th):
            child = yield th.fork(contender)
            yield th.acquire("m")
            order.append("main-in")
            for _ in range(5):
                yield th.write("x")
            order.append("main-out")
            yield th.release("m")
            yield th.join(child)

        def contender(th):
            yield th.acquire("m")
            order.append("child-in")
            yield th.write("x")
            yield th.release("m")

        # Regardless of seed, critical sections never interleave.
        for seed in range(10):
            order.clear()
            run_program(Program(main), seed=seed)
            assert order in (
                ["main-in", "main-out", "child-in"],
                ["child-in", "main-in", "main-out"],
            )

    def test_reentrant_acquires_filtered(self):
        def main(th):
            yield th.acquire("m")
            yield th.acquire("m")
            yield th.write("x")
            yield th.release("m")
            yield th.release("m")

        trace = run_program(Program(main))
        acqs = [e for e in trace if e.kind == ev.ACQUIRE]
        rels = [e for e in trace if e.kind == ev.RELEASE]
        assert len(acqs) == 1 and len(rels) == 1

    def test_release_without_hold_raises(self):
        def main(th):
            yield th.release("m")

        with pytest.raises(SchedulerError):
            run_program(Program(main))

    def test_deadlock_detected(self):
        def one(th):
            yield th.acquire("a")
            yield th.write("x")
            yield th.acquire("b")
            yield th.release("b")
            yield th.release("a")

        def two(th):
            yield th.acquire("b")
            yield th.write("y")
            yield th.acquire("a")
            yield th.release("a")
            yield th.release("b")

        # Some interleavings deadlock; find one and check the error.
        saw_deadlock = False
        for seed in range(40):
            try:
                run_program(Program(one, two), seed=seed)
            except DeadlockError:
                saw_deadlock = True
                break
        assert saw_deadlock


class TestWaitNotify:
    def test_wait_emits_release_and_reacquire(self):
        state = {"ready": False}

        def waiter(th):
            yield th.acquire("m")
            while not state["ready"]:
                yield th.wait("m")
            yield th.read("data")
            yield th.release("m")

        def notifier(th):
            yield th.write("data")
            yield th.acquire("m")
            state["ready"] = True
            yield th.notify_all("m")
            yield th.release("m")

        # Round-robin guarantees the waiter enters the monitor first and
        # actually waits (random seeds may let the notifier win the race
        # to the monitor, in which case no wait happens at all).
        trace = run_program(
            Program(waiter, notifier), policy="roundrobin"
        )
        assert check_feasible(trace) == []
        # The waiter's wait shows up as rel followed (eventually) by acq.
        kinds = [(e.kind, e.tid) for e in trace if e.target == "m"]
        assert kinds.count((ev.RELEASE, 0)) >= 2 or kinds.count(
            (ev.ACQUIRE, 0)
        ) >= 2

    def test_wait_without_lock_raises(self):
        def main(th):
            yield th.wait("m")

        with pytest.raises(SchedulerError):
            run_program(Program(main))

    def test_unnotified_waiter_deadlocks(self):
        def main(th):
            yield th.acquire("m")
            yield th.wait("m")

        with pytest.raises(DeadlockError):
            run_program(Program(main))


class TestBarrier:
    def test_barrier_releases_all_parties(self):
        barrier = Barrier(2)

        def main(th):
            child = yield th.fork(worker)
            yield th.write("a")
            yield th.barrier_await(barrier)
            yield th.join(child)

        def worker(th):
            yield th.write("b")
            yield th.barrier_await(barrier)

        trace = run_program(Program(main), seed=5)
        barriers = [e for e in trace if e.kind == ev.BARRIER_RELEASE]
        assert barriers == [ev.barrier_rel((0, 1))]

    def test_barrier_is_cyclic(self):
        barrier = Barrier(2)

        def main(th):
            child = yield th.fork(worker)
            for _ in range(3):
                yield th.barrier_await(barrier)
            yield th.join(child)

        def worker(th):
            for _ in range(3):
                yield th.barrier_await(barrier)

        trace = run_program(Program(main), seed=2)
        assert sum(1 for e in trace if e.kind == ev.BARRIER_RELEASE) == 3

    def test_invalid_barrier_rejected(self):
        with pytest.raises(ValueError):
            Barrier(0)


class TestJoin:
    def test_join_blocks_until_child_finishes(self):
        def main(th):
            child = yield th.fork(worker)
            yield th.join(child)
            yield th.read("x")

        def worker(th):
            for _ in range(10):
                yield th.write("x")

        for seed in range(5):
            trace = list(run_program(Program(main), seed=seed))
            join_at = trace.index(ev.join(0, 1))
            last_child = max(
                i for i, e in enumerate(trace) if e.tid == 1
            )
            assert last_child < join_at

    def test_join_unknown_thread_raises(self):
        def main(th):
            yield th.join(42)

        with pytest.raises(SchedulerError):
            run_program(Program(main))


class TestHygiene:
    def test_max_steps_guards_livelock(self):
        def main(th):
            while True:
                yield th.pause()

        with pytest.raises(SchedulerError, match="max_steps"):
            run_program(Program(main), max_steps=100)

    def test_sink_receives_events_online(self):
        seen = []

        def main(th):
            yield th.write("x")
            yield th.read("x")

        run_program(Program(main), sink=seen.append)
        assert seen == [ev.wr(0, "x"), ev.rd(0, "x")]

    def test_enter_exit_and_sugar(self):
        def main(th):
            yield from th.atomic("t", th.read("x"), th.write("x"))
            yield from th.critical("m", th.write("y"))

        trace = list(run_program(Program(main)))
        kinds = [e.kind for e in trace]
        assert kinds == [
            ev.ENTER,
            ev.READ,
            ev.WRITE,
            ev.EXIT,
            ev.ACQUIRE,
            ev.WRITE,
            ev.RELEASE,
        ]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_every_schedule_is_feasible(self, seed):
        barrier = Barrier(2)
        state = {"flag": False}

        def main(th):
            a = yield th.fork(worker_a)
            b = yield th.fork(worker_b)
            yield th.acquire("m")
            state["flag"] = True
            yield th.notify_all("m")
            yield th.release("m")
            yield th.join(a)
            yield th.join(b)

        def worker_a(th):
            yield th.acquire("m")
            while not state["flag"]:
                yield th.wait("m")
            yield th.release("m")
            yield th.barrier_await(barrier)

        def worker_b(th):
            yield th.write("x")
            yield th.barrier_await(barrier)

        barrier.arrived.clear()  # fresh barrier per example
        trace = run_program(Program(main), seed=seed)
        assert check_feasible(trace) == []
