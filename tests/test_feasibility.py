"""Tests for the Section 2.1 feasibility constraints."""

import pytest
from hypothesis import given, settings

from repro.trace import events as ev
from repro.trace.feasibility import (
    FeasibilityError,
    check_feasible,
    is_feasible,
    require_feasible,
)
from repro.trace.generators import traces


class TestLocking:
    def test_double_acquire_rejected(self):
        assert not is_feasible([ev.acq(0, "m"), ev.acq(1, "m")])
        assert not is_feasible([ev.acq(0, "m"), ev.acq(0, "m")])

    def test_release_without_hold_rejected(self):
        assert not is_feasible([ev.rel(0, "m")])
        assert not is_feasible([ev.acq(0, "m"), ev.rel(1, "m")])

    def test_well_bracketed_locking_accepted(self):
        assert is_feasible(
            [
                ev.acq(0, "m"),
                ev.rel(0, "m"),
                ev.acq(1, "m"),
                ev.rel(1, "m"),
            ]
        )


class TestForkJoin:
    def test_child_running_before_fork_rejected(self):
        assert not is_feasible([ev.rd(1, "x"), ev.fork(0, 1)])

    def test_child_running_after_join_rejected(self):
        trace = [
            ev.fork(0, 1),
            ev.rd(1, "x"),
            ev.join(0, 1),
            ev.rd(1, "x"),
        ]
        assert not is_feasible(trace)

    def test_join_without_child_ops_rejected(self):
        # Constraint (4): at least one op of u between fork and join.
        assert not is_feasible([ev.fork(0, 1), ev.join(0, 1)])

    def test_self_fork_join_rejected(self):
        assert not is_feasible([ev.fork(0, 0)])
        assert not is_feasible([ev.rd(0, "x"), ev.join(0, 0)])

    def test_double_fork_rejected(self):
        assert not is_feasible([ev.fork(0, 1), ev.rd(1, "x"), ev.fork(2, 1)])

    def test_double_join_rejected(self):
        trace = [
            ev.fork(0, 1),
            ev.rd(1, "x"),
            ev.join(0, 1),
            ev.join(2, 1),
        ]
        assert not is_feasible(trace)

    def test_initial_threads_need_no_fork(self):
        assert is_feasible([ev.rd(0, "x"), ev.rd(5, "x")])

    def test_plain_fork_join_accepted(self):
        assert is_feasible([ev.fork(0, 1), ev.wr(1, "x"), ev.join(0, 1)])


class TestBarriers:
    def test_barrier_of_live_threads_accepted(self):
        assert is_feasible(
            [ev.rd(0, "x"), ev.rd(1, "x"), ev.barrier_rel((0, 1))]
        )

    def test_barrier_of_joined_thread_rejected(self):
        trace = [
            ev.fork(0, 1),
            ev.rd(1, "x"),
            ev.join(0, 1),
            ev.barrier_rel((0, 1)),
        ]
        assert not is_feasible(trace)

    def test_barrier_counts_as_member_operation(self):
        # A forked thread whose only op is a barrier release may be joined.
        trace = [
            ev.fork(0, 1),
            ev.barrier_rel((0, 1)),
            ev.join(0, 1),
        ]
        assert is_feasible(trace)


class TestReporting:
    def test_messages_carry_event_index(self):
        violations = check_feasible([ev.rel(0, "m")])
        assert len(violations) == 1
        assert violations[0].startswith("#0:")

    def test_require_feasible_raises(self):
        with pytest.raises(FeasibilityError):
            require_feasible([ev.rel(0, "m")])
        require_feasible([ev.rd(0, "x")])  # no exception


class TestGeneratedTraces:
    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_generator_only_produces_feasible_traces(self, trace):
        assert check_feasible(trace) == []
