"""Tests for the Section 2.1 feasibility constraints."""

import pytest
from hypothesis import given, settings

from repro.trace import events as ev
from repro.trace.feasibility import (
    FeasibilityError,
    check_feasible,
    is_feasible,
    require_feasible,
)
from repro.trace.generators import traces


class TestLocking:
    def test_double_acquire_rejected(self):
        assert not is_feasible([ev.acq(0, "m"), ev.acq(1, "m")])
        assert not is_feasible([ev.acq(0, "m"), ev.acq(0, "m")])

    def test_release_without_hold_rejected(self):
        assert not is_feasible([ev.rel(0, "m")])
        assert not is_feasible([ev.acq(0, "m"), ev.rel(1, "m")])

    def test_well_bracketed_locking_accepted(self):
        assert is_feasible(
            [
                ev.acq(0, "m"),
                ev.rel(0, "m"),
                ev.acq(1, "m"),
                ev.rel(1, "m"),
            ]
        )


class TestForkJoin:
    def test_child_running_before_fork_rejected(self):
        assert not is_feasible([ev.rd(1, "x"), ev.fork(0, 1)])

    def test_child_running_after_join_rejected(self):
        trace = [
            ev.fork(0, 1),
            ev.rd(1, "x"),
            ev.join(0, 1),
            ev.rd(1, "x"),
        ]
        assert not is_feasible(trace)

    def test_join_without_child_ops_rejected(self):
        # Constraint (4): at least one op of u between fork and join.
        assert not is_feasible([ev.fork(0, 1), ev.join(0, 1)])

    def test_self_fork_join_rejected(self):
        assert not is_feasible([ev.fork(0, 0)])
        assert not is_feasible([ev.rd(0, "x"), ev.join(0, 0)])

    def test_double_fork_rejected(self):
        assert not is_feasible([ev.fork(0, 1), ev.rd(1, "x"), ev.fork(2, 1)])

    def test_double_join_rejected(self):
        trace = [
            ev.fork(0, 1),
            ev.rd(1, "x"),
            ev.join(0, 1),
            ev.join(2, 1),
        ]
        assert not is_feasible(trace)

    def test_initial_threads_need_no_fork(self):
        assert is_feasible([ev.rd(0, "x"), ev.rd(5, "x")])

    def test_plain_fork_join_accepted(self):
        assert is_feasible([ev.fork(0, 1), ev.wr(1, "x"), ev.join(0, 1)])


class TestBarriers:
    def test_barrier_of_live_threads_accepted(self):
        assert is_feasible(
            [ev.rd(0, "x"), ev.rd(1, "x"), ev.barrier_rel((0, 1))]
        )

    def test_barrier_of_joined_thread_rejected(self):
        trace = [
            ev.fork(0, 1),
            ev.rd(1, "x"),
            ev.join(0, 1),
            ev.barrier_rel((0, 1)),
        ]
        assert not is_feasible(trace)

    def test_barrier_counts_as_member_operation(self):
        # A forked thread whose only op is a barrier release may be joined.
        trace = [
            ev.fork(0, 1),
            ev.barrier_rel((0, 1)),
            ev.join(0, 1),
        ]
        assert is_feasible(trace)


class TestReporting:
    def test_messages_carry_event_index(self):
        violations = check_feasible([ev.rel(0, "m")])
        assert len(violations) == 1
        assert violations[0].startswith("#0:")

    def test_require_feasible_raises(self):
        with pytest.raises(FeasibilityError):
            require_feasible([ev.rel(0, "m")])
        require_feasible([ev.rd(0, "x")])  # no exception


class TestGeneratedTraces:
    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_generator_only_produces_feasible_traces(self, trace):
        assert check_feasible(trace) == []


class TestWitnessChecking:
    """The vindicator's contract with the checker (repro.predict).

    A predicted race's witness is a *reordering* of (a prefix-closed
    subset of) an observed trace; ``check_feasible`` is the final word
    on whether that reordering is a real execution.  These tests pin the
    failure modes — and the exact message texts — the vindicator relies
    on when it rejects a reordering.
    """

    def test_reordering_into_held_lock_section_rejected(self):
        """Moving thread 1's acquire inside thread 0's critical section
        is the classic infeasible 'witness'."""
        witness = [
            ev.acq(0, "m"),
            ev.acq(1, "m"),
            ev.wr(1, "x"),
            ev.rel(1, "m"),
            ev.rel(0, "m"),
        ]
        violations = check_feasible(witness)
        assert violations[0] == (
            f"#1: {witness[1]!r} — lock held by thread 0"
        )

    def test_reordering_release_before_acquire_rejected(self):
        witness = [ev.rel(1, "m"), ev.acq(1, "m")]
        violations = check_feasible(witness)
        assert violations[0] == (
            f"#0: {witness[0]!r} — thread 1 does not hold the lock"
            " (holder: None)"
        )

    def test_dangling_acquire_is_feasible(self):
        """A witness may end inside a critical section (the vindicator's
        dangling-section reorderings rely on this)."""
        assert is_feasible(
            [
                ev.acq(1, "m"),
                ev.rel(1, "m"),
                ev.acq(0, "m"),
                ev.wr(0, "x"),
                ev.wr(1, "x"),
            ]
        )

    def test_reordering_child_before_fork_rejected(self):
        witness = [ev.wr(1, "x"), ev.fork(0, 1)]
        violations = check_feasible(witness)
        assert violations == [
            f"#1: {witness[1]!r} — child already ran before fork"
        ]

    def test_reordering_past_join_rejected(self):
        witness = [
            ev.fork(0, 1),
            ev.wr(1, "x"),
            ev.join(0, 1),
            ev.wr(1, "y"),
        ]
        violations = check_feasible(witness)
        assert violations == [
            f"#3: {witness[3]!r} — thread 1 acts after being joined"
        ]

    def test_barrier_member_dropped_after_join_rejected(self):
        witness = [
            ev.fork(0, 1),
            ev.wr(1, "x"),
            ev.join(0, 1),
            ev.barrier_rel((0, 1)),
        ]
        violations = check_feasible(witness)
        assert violations == ["#3: barrier releases joined thread 1"]

    def test_feasibility_error_joins_first_violations(self):
        """require_feasible's message is the '; '-joined violation list
        (capped at five) — what a vindication failure surfaces."""
        witness = [ev.rel(0, "m"), ev.rel(0, "m")]
        with pytest.raises(FeasibilityError) as excinfo:
            require_feasible(witness)
        message = str(excinfo.value)
        assert message.count("does not hold the lock") == 2
        assert "; " in message

    def test_vindicated_witnesses_pass(self):
        """Every witness the vindicator emits on the golden corpus runs
        through this checker clean (the other direction of the contract
        lives in tests/test_predict.py)."""
        from pathlib import Path

        from repro.predict import predict_races
        from repro.trace.serialize import loads

        data = Path(__file__).parent / "data"
        for name in ("predict_lock", "predict_fork"):
            events = list(loads((data / f"{name}.trace").read_text()))
            report = predict_races(events)
            assert report.vindicated, name
            for race in report.vindicated:
                assert check_feasible(race.witness.events(events)) == []
