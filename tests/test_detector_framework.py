"""Tests for the shared detector framework odds and ends."""

from repro.core.detector import CostStats, Detector, RaceWarning
from repro.core.fasttrack import FastTrack
from repro.trace import events as ev
from repro.trace.serialize import dumps_jsonl, loads_jsonl


class TestCostStats:
    def test_summary_flattens_rules(self):
        stats = CostStats()
        stats.events = 10
        stats.reads = 6
        stats.rule("FT READ SHARED")
        stats.rule("FT READ SHARED")
        summary = stats.summary()
        assert summary["events"] == 10
        assert summary["reads"] == 6
        assert summary["rule:FT READ SHARED"] == 2

    def test_counters_populated_by_process(self):
        trace = [
            ev.rd(0, "x"),
            ev.wr(0, "x"),
            ev.acq(0, "m"),
            ev.rel(0, "m"),
            ev.enter(0, "t"),
            ev.exit_(0, "t"),
        ]
        tool = FastTrack().process(trace)
        assert tool.stats.events == 6
        assert tool.stats.reads == 1
        assert tool.stats.writes == 1
        assert tool.stats.syncs == 2
        assert tool.stats.boundaries == 2


class TestRaceWarning:
    def test_str_with_and_without_site(self):
        with_site = RaceWarning(
            var="x",
            kind="write-write",
            tid=1,
            prior="write 4@0",
            event_index=7,
            site="a.py:3",
        )
        assert "at a.py:3" in str(with_site)
        assert "write-write race on 'x'" in str(with_site)
        without = RaceWarning(
            var="x", kind="write-read", tid=0, prior="p", event_index=0
        )
        assert " at " not in str(without).split("conflicts")[0]


class TestBaseDetector:
    def test_base_detector_ignores_everything(self):
        trace = [
            ev.rd(0, "x"),
            ev.vol_wr(0, "v"),
            ev.barrier_rel((0,)),
            ev.enter(0, "t"),
            ev.exit_(0, "t"),
        ]
        tool = Detector().process(trace)
        assert tool.warnings == []
        assert tool.events_handled == len(trace)

    def test_report_dedup_orthogonal_axes(self):
        tool = Detector()
        # Two vars, one shared site: one report, the second var still
        # marked warned.
        tool.handle(ev.wr(0, ("a", 0), site="s"))
        tool.report(ev.wr(0, ("a", 0), site="s"), "write-write", "p")
        tool.handle(ev.wr(0, ("a", 1), site="s"))
        tool.report(ev.wr(0, ("a", 1), site="s"), "write-write", "p")
        assert tool.warning_count == 1
        assert tool.suppressed_warnings == 1
        assert tool.has_warned(("a", 1))


class TestCrossFormatEquality:
    def test_text_and_jsonl_agree(self):
        trace = [
            ev.rd(1, ("grid", 2, 7), site="s"),
            ev.barrier_rel((0, 1)),
            ev.vol_wr(0, "v"),
        ]
        from repro.trace.serialize import dumps, loads

        assert loads(dumps(trace)) == loads_jsonl(dumps_jsonl(trace))
