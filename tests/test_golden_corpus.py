"""Golden-file regression tests.

``tests/data/`` holds serialized traces (the paper's worked examples,
workload snippets, and random samples) plus a manifest recording every
tool's expected warnings on each.  Any behavioural change to a detector,
the trace parser, or the event model shows up here as a concrete diff.
Regenerate deliberately with the snippet in this module's docstring —
never update the manifest to make a red test pass without understanding
why the verdict moved.

Regeneration (after an *intended* change)::

    python - <<'REGEN'
    # see the script in the repository history / EXPERIMENTS.md
    REGEN
"""

import json
from pathlib import Path

import pytest

from repro.bench.harness import WARNING_TOOLS, _tool
from repro.trace.feasibility import check_feasible
from repro.trace.happens_before import racy_variables
from repro.trace.serialize import loads

DATA = Path(__file__).parent / "data"
MANIFEST = json.loads((DATA / "manifest.json").read_text())

#: The manifest's verdict columns: Table 1's warning-reporting tools plus
#: the predictive family (whose extra verdicts tests/test_predict.py
#: vindicates individually).
CORPUS_TOOLS = WARNING_TOOLS + ("WCP",)


def load_trace(name):
    return loads((DATA / f"{name}.trace").read_text())


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_trace_parses_and_is_feasible(name):
    trace = load_trace(name)
    assert len(trace) == MANIFEST[name]["events"]
    assert check_feasible(trace) == []


@pytest.mark.parametrize("name", sorted(MANIFEST))
@pytest.mark.parametrize("tool_name", CORPUS_TOOLS)
def test_golden_verdicts(name, tool_name):
    trace = load_trace(name)
    tool = _tool(tool_name)
    tool.process(trace)
    measured = sorted(str(w.var) for w in tool.warnings)
    assert measured == MANIFEST[name]["warnings"][tool_name], (
        name,
        tool_name,
    )


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_precise_golden_verdicts_match_oracle(name):
    """FastTrack's per-variable verdicts equal ground truth on the corpus —
    so the stored expectations cannot drift into recording a wrong verdict.
    (The manifest's warning *list* is site-deduplicated; the variable-level
    check goes through ``has_warned``.)"""
    trace = load_trace(name)
    tool = _tool("FastTrack")
    tool.process(trace)
    oracle = racy_variables(trace)
    for var in oracle:
        assert tool.has_warned(var), var
    for warning in tool.warnings:
        assert warning.var in oracle, warning.var
