"""Fine-grained checks on each workload's warning *structure* — not just
the counts, but which races, at which sites, of which kinds, found and
missed by whom.  These pin down the narratives of Section 5.1."""

import pytest

from repro.bench.harness import _tool
from repro.bench.workload import WORKLOADS

SCALE = 260


def warnings_of(name, tool):
    return _tool(tool).process(WORKLOADS[name].trace(scale=SCALE)).warnings


class TestTsp:
    """One benign bound race; eight fork/join false alarms for Eraser."""

    def test_precise_tools_flag_the_bound(self):
        for tool in ("FastTrack", "DJIT+", "BasicVC"):
            warnings = warnings_of("tsp", tool)
            assert len(warnings) == 1
            assert warnings[0].var == "best"

    def test_eraser_false_alarms_are_the_seeded_fields(self):
        sites = {w.site for w in warnings_of("tsp", "Eraser")}
        seeded = {f"tsp.seed_{f}" for f in (
            "path", "visited", "depth", "cost",
            "best_local", "stack", "prefix", "cache",
        )}
        assert seeded < sites  # the 8 spurious sites, plus the real race
        assert len(sites - seeded) == 1


class TestHedc:
    """Three real thread-pool races; the write-read ones hide from the
    lockset-based tools."""

    def test_fasttrack_finds_all_three_families(self):
        sites = {w.site for w in warnings_of("hedc", "FastTrack")}
        assert sites == {"hedc.status", "hedc.result_poll", "hedc.url_poll"}

    def test_eraser_sees_only_the_write_write_race(self):
        warnings = warnings_of("hedc", "Eraser")
        real = [w for w in warnings if w.site == "hedc.status"]
        assert len(real) == 1
        # ...and its other report is the spurious pool-slot handoff.
        assert {w.site for w in warnings} == {"hedc.status", "hedc.slot"}

    def test_multirace_sees_only_the_write_write_race(self):
        warnings = warnings_of("hedc", "MultiRace")
        assert [w.site for w in warnings] == ["hedc.status"]

    def test_unsound_goldilocks_misses_everything(self):
        assert warnings_of("hedc", "Goldilocks") == []

    def test_sound_goldilocks_finds_all_three(self):
        from repro.detectors import Goldilocks

        tool = Goldilocks(unsound_thread_local=False)
        tool.process(WORKLOADS["hedc"].trace(scale=SCALE))
        assert tool.warning_count == 3


class TestRaytracerAndMtrt:
    def test_raytracer_checksum_race_kind(self):
        warnings = warnings_of("raytracer", "FastTrack")
        assert len(warnings) == 1
        assert warnings[0].var == "checksum"

    def test_mtrt_progress_counter(self):
        warnings = warnings_of("mtrt", "FastTrack")
        assert len(warnings) == 1
        assert warnings[0].var == "progress"


class TestEraserFalseAlarmTaxonomy:
    """Every Eraser warning on the race-free workloads is one of the
    synchronization idioms the paper says Eraser cannot express."""

    @pytest.mark.parametrize(
        "name,expected_sites",
        [
            (
                "colt",
                {"colt.config_handoff", "colt.scratch_handoff", "colt.total_rd"},
            ),
            (
                "lufact",
                {
                    "lufact.col_write",
                    "lufact.pivot_value",
                    "lufact.row_swap",
                    "lufact.norm_read",
                },
            ),
            ("series", {"series.base"}),
            (
                "sor",
                {"sor.bounds_handoff", "sor.wres_handoff", "sor.scatter"},
            ),
        ],
    )
    def test_spurious_sites(self, name, expected_sites):
        assert {w.site for w in warnings_of(name, "Eraser")} == expected_sites

    @pytest.mark.parametrize("name", ["colt", "lufact", "series", "sor"])
    def test_all_spurious_none_real(self, name):
        """The precise tools confirm every one of those is a false alarm."""
        assert warnings_of(name, "FastTrack") == []


class TestJbb:
    def test_two_real_races(self):
        assert {w.var for w in warnings_of("jbb", "FastTrack")} == {
            "txn_count",
            "mode_flag",
        }

    def test_multirace_misses_the_polling_race(self):
        assert {w.var for w in warnings_of("jbb", "MultiRace")} == {
            "txn_count"
        }

    def test_race_kinds(self):
        kinds = {
            w.var: w.kind for w in warnings_of("jbb", "FastTrack")
        }
        assert kinds["txn_count"] in ("write-write", "read-write", "write-read")
        assert kinds["mode_flag"] in ("write-read", "read-write")


class TestCleanWorkloadIdioms:
    @pytest.mark.parametrize(
        "name", ["crypt", "moldyn", "montecarlo", "raja", "sparse",
                 "elevator", "philo"]
    )
    def test_every_tool_on_clean_workloads(self, name):
        for tool in ("MultiRace", "Goldilocks", "BasicVC", "DJIT+",
                     "FastTrack"):
            assert warnings_of(name, tool) == [], (name, tool)

    def test_moldyn_uses_barriers(self):
        from repro.trace import events as ev

        trace = WORKLOADS["moldyn"].trace(scale=SCALE)
        assert any(e.kind == ev.BARRIER_RELEASE for e in trace)

    def test_raja_uses_wait_notify(self):
        from repro.trace import events as ev

        trace = WORKLOADS["raja"].trace(scale=SCALE)
        # wait shows up as extra acquire/release pairs on the monitor.
        monitor_ops = [e for e in trace if e.target == "q"]
        assert len(monitor_ops) > 4

    def test_colt_uses_volatiles(self):
        from repro.trace import events as ev

        trace = WORKLOADS["colt"].trace(scale=SCALE)
        kinds = {e.kind for e in trace}
        assert ev.VOLATILE_WRITE in kinds and ev.VOLATILE_READ in kinds
