"""Tests for the unified telemetry layer (:mod:`repro.obs`).

Covers the tentpole contracts: span nesting and exception safety,
batched-counter flush correctness, rule-frequency metrics that are
deterministic across shard counts and exactly equal to the offline
Figure 2 arithmetic, exposition-format determinism (sorted blocks and
label sets, ``+Inf`` bucket, content type), the structured-log fallback,
and — most load-bearing — that telemetry never perturbs analysis output
(``repro check --json`` is byte-identical with the sink on or off).
"""

import json
import os

import pytest

from repro import obs
from repro.bench.workload import WORKLOADS
from repro.cli import main
from repro.detectors import default_tool_kwargs, make_detector
from repro.obs.metrics import MetricsRegistry
from repro.obs.rules import derived_rule_counts, record_rule_counts
from repro.trace import events as ev
from repro.trace.serialize import dumps


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled."""
    if obs.enabled():
        obs.disable()
    yield
    if obs.enabled():
        obs.disable()


@pytest.fixture(scope="module")
def tsp_trace_text():
    return dumps(WORKLOADS["tsp"].trace(scale=6))


@pytest.fixture
def tsp_file(tmp_path, tsp_trace_text):
    path = tmp_path / "tsp.trace"
    path.write_text(tsp_trace_text)
    return str(path)


def _spans(directory):
    return obs.read_spans(os.path.join(directory, obs.SPANS_FILENAME))


class TestSpans:
    def test_disabled_span_is_shared_null_and_free(self):
        assert not obs.enabled()
        assert obs.span("x") is obs.NULL_SPAN
        assert obs.span("y", a=1) is obs.NULL_SPAN
        with obs.span("z") as span:
            assert span.set(k="v") is span  # set() works on the null span

    def test_nesting_parent_ids(self, tmp_path):
        obs.enable(str(tmp_path))
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
            with obs.span("sibling"):
                pass
        obs.disable()
        records = {r["name"]: r for r in _spans(str(tmp_path))}
        assert records["outer"]["parent"] is None
        assert records["inner"]["parent"] == records["outer"]["id"]
        assert records["sibling"]["parent"] == records["outer"]["id"]
        assert records["inner"]["id"] != records["sibling"]["id"]
        del outer

    def test_exception_marks_error_and_reraises(self, tmp_path):
        obs.enable(str(tmp_path))
        with pytest.raises(RuntimeError, match="boom"):
            with obs.span("failing", shard=3):
                raise RuntimeError("boom")
        obs.disable()
        (record,) = _spans(str(tmp_path))
        assert record["status"] == "error"
        assert record["error"] == "RuntimeError: boom"
        assert record["attrs"] == {"shard": 3}

    def test_stack_unwinds_after_exception(self, tmp_path):
        obs.enable(str(tmp_path))
        with pytest.raises(ValueError):
            with obs.span("a"):
                raise ValueError()
        with obs.span("b"):
            pass
        obs.disable()
        records = {r["name"]: r for r in _spans(str(tmp_path))}
        assert records["b"]["parent"] is None  # "a" did not leak a frame

    def test_emit_span_and_schema_validation(self, tmp_path):
        obs.enable(str(tmp_path))
        obs.emit_span("shard.analyze", 0.25, cpu_s=0.2, shard=1, events=10)
        obs.disable()
        path = os.path.join(str(tmp_path), obs.SPANS_FILENAME)
        assert obs.validate_spans_file(path) == 1
        (record,) = obs.read_spans(path)
        assert record["wall_s"] == 0.25
        assert record["attrs"]["shard"] == 1

    def test_validation_rejects_malformed_records(self):
        with pytest.raises(ValueError):
            obs.validate_record({"type": "span", "name": "x"})
        with pytest.raises(ValueError):
            obs.validate_record({"type": "nope"})
        with pytest.raises(ValueError):
            obs.validate_record(
                {
                    "type": "span", "name": "x", "id": 1, "parent": None,
                    "start_unix": 0, "wall_s": 0.1, "cpu_s": 0.0,
                    "status": "error", "attrs": {},  # error without message
                }
            )

    def test_enable_truncates_nothing_but_resets_metrics(self, tmp_path):
        first = obs.enable(str(tmp_path))
        first.registry.counter("stale_total", "stale").inc()
        obs.disable()
        second = obs.enable(str(tmp_path))
        assert second.registry is not first.registry
        obs.disable()
        snapshot = json.load(open(os.path.join(str(tmp_path), "metrics.json")))
        assert "stale_total" not in snapshot  # fresh registry per enable


class TestBatchedCounter:
    def test_flush_folds_once(self):
        registry = MetricsRegistry()
        events = registry.counter("events_total", "events")
        handle = events.handle(detector="FastTrack")
        for _ in range(1000):
            handle.inc()
        handle.inc(500)
        assert events.value(detector="FastTrack") == 0.0  # not yet flushed
        assert handle.flush() == 1500
        assert handle.flush() == 0  # idempotent once drained
        assert events.value(detector="FastTrack") == 1500.0

    @pytest.mark.parametrize("nshards", [1, 2, 4])
    def test_rule_metrics_deterministic_across_shard_counts(
        self, nshards, tsp_trace_text
    ):
        """Per-shard tallies merged then flushed give the same rule counts
        at any shard count (FastTrack's rules are per-access, and the
        merge corrects the event mix to one sync stream)."""
        from repro import engine
        from repro.trace.serialize import loads

        events = loads(tsp_trace_text).events
        registry = MetricsRegistry()
        report = engine.check_events(
            events,
            tool="FastTrack",
            nshards=nshards,
            tool_kwargs=default_tool_kwargs("FastTrack"),
        )
        record_rule_counts("FastTrack", report.stats, registry)
        rule = registry.counter("repro_rule_total", "")
        single = make_detector(
            "FastTrack", **default_tool_kwargs("FastTrack")
        )
        single.process(loads(tsp_trace_text))
        expected = derived_rule_counts("FastTrack", single.stats)
        for name, count in expected.items():
            assert rule.value(detector="FastTrack", rule=name) == count, name


class TestRuleFrequencies:
    def test_profile_matches_figure2_arithmetic(self, tsp_file, capsys):
        """The acceptance criterion: ``repro profile`` reports exactly the
        counts the offline Figure 2 benchmark derives."""
        assert main(["profile", tsp_file]) == 0
        out = capsys.readouterr().out
        single = make_detector(
            "FastTrack", **default_tool_kwargs("FastTrack")
        )
        from repro.trace.serialize import load

        with open(tsp_file) as stream:
            single.process(load(stream))
        for name, count in derived_rule_counts(
            "FastTrack", single.stats
        ).items():
            for line in out.splitlines():
                if line.strip().startswith(name):
                    assert f"{count:,d}" in line, (name, line)
                    break
            else:  # pragma: no cover - assertion context
                pytest.fail(f"rule {name} missing from profile output")

    def test_derived_counts_cover_fast_paths(self):
        trace_events = [
            ev.wr(0, "x"), ev.wr(0, "x"), ev.rd(0, "x"), ev.rd(0, "x")
        ]
        from repro.trace.trace import Trace

        detector = make_detector("FastTrack")
        detector.process(Trace(trace_events))
        counts = derived_rule_counts("FastTrack", detector.stats)
        # Second write and second read hit the counter-free same-epoch
        # fast paths; the derivation must account for every access.
        read_total = sum(c for r, c in counts.items() if "READ" in r)
        write_total = sum(c for r, c in counts.items() if "WRITE" in r)
        assert read_total == detector.stats.reads
        assert write_total == detector.stats.writes
        assert counts["FT WRITE SAME EPOCH"] == 1


class TestExposition:
    def test_blocks_and_labels_sorted(self):
        registry = MetricsRegistry()
        zz = registry.counter("zz_total", "last")
        aa = registry.counter("aa_total", "first")
        zz.inc(b="2", a="1")
        aa.inc(state="done")
        text = registry.render()
        assert text.index("# HELP aa_total") < text.index("# HELP zz_total")
        assert 'zz_total{a="1",b="2"} 1' in text

    def test_render_independent_of_registration_order(self):
        def build(order):
            registry = MetricsRegistry()
            for name in order:
                registry.counter(name, f"help {name}").inc(tool=name)
            return registry.render()

        assert build(["b_total", "a_total"]) == build(["a_total", "b_total"])

    def test_histogram_has_inf_bucket_and_consistent_count(self):
        registry = MetricsRegistry()
        latency = registry.histogram("lat_seconds", "latency", buckets=(0.1,))
        latency.observe(0.05, route="/metrics")
        latency.observe(99.0, route="/metrics")  # beyond every finite bucket
        text = registry.render()
        assert 'lat_seconds_bucket{route="/metrics",le="0.1"} 1' in text
        assert 'lat_seconds_bucket{route="/metrics",le="+Inf"} 2' in text
        assert 'lat_seconds_count{route="/metrics"} 2' in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "escapes")
        counter.inc(path='a"b\\c\nd')
        rendered = registry.render()
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in rendered

    def test_exposition_content_type_pinned(self):
        assert obs.EXPOSITION_CONTENT_TYPE == (
            "text/plain; version=0.0.4; charset=utf-8"
        )


class TestStructuredLog:
    def test_stderr_fallback_only_for_warnings(self, capsys):
        obs.log.info("engine.resume", "resuming")
        obs.log.warning("engine.jobs", "too many jobs", jobs=8)
        err = capsys.readouterr().err
        assert err == "warning: too many jobs\n"

    def test_sink_records_all_levels(self, tmp_path, capsys):
        obs.enable(str(tmp_path))
        obs.log.info("engine.resume", "resuming", completed=2)
        obs.log.warning("engine.jobs", "too many jobs", jobs=8)
        obs.disable()
        assert capsys.readouterr().err == ""  # nothing leaks to stderr
        records = _spans(str(tmp_path))
        levels = [r["level"] for r in records]
        assert levels == ["info", "warning"]
        assert records[0]["fields"] == {"completed": 2}

    def test_oversubscription_warning_routed(self, tsp_file, tmp_path,
                                             capsys, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        telemetry = tmp_path / "tel"
        assert main(
            ["check", tsp_file, "--jobs", "2",
             "--telemetry", str(telemetry)]
        ) in (0, 1)
        assert capsys.readouterr().err == ""  # went to the sink instead
        records = _spans(str(telemetry))
        warnings = [
            r for r in records
            if r["type"] == "log" and r["event"] == "engine.jobs.oversubscribed"
        ]
        assert len(warnings) == 1
        assert warnings[0]["fields"] == {"jobs": 2, "cpus": 1}

    def test_oversubscription_warning_text_unchanged_without_sink(
        self, tsp_file, capsys, monkeypatch
    ):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert main(["check", tsp_file, "--jobs", "2"]) in (0, 1)
        err = capsys.readouterr().err
        assert err.startswith("warning: --jobs 2 exceeds the 1 available")


class TestTelemetryDoesNotPerturb:
    def test_check_json_byte_identical_with_telemetry(
        self, tsp_file, tmp_path, capsys
    ):
        code_plain = main(["check", tsp_file, "--json"])
        plain = capsys.readouterr().out
        telemetry = tmp_path / "tel"
        code_telemetry = main(
            ["check", tsp_file, "--json", "--telemetry", str(telemetry)]
        )
        with_telemetry = capsys.readouterr().out
        assert code_plain == code_telemetry
        assert plain == with_telemetry
        assert not obs.enabled()  # CLI turned the sink back off

    def test_check_telemetry_writes_both_artifacts(
        self, tsp_file, tmp_path, capsys
    ):
        telemetry = tmp_path / "tel"
        main(["check", tsp_file, "--telemetry", str(telemetry)])
        capsys.readouterr()
        count = obs.validate_spans_file(
            str(telemetry / obs.SPANS_FILENAME)
        )
        assert count >= 2  # check.read + check.analyze at minimum
        snapshot = json.load(open(telemetry / "metrics.json"))
        assert "repro_rule_total" in snapshot
        samples = snapshot["repro_rule_total"]["samples"]
        assert any(
            s["labels"]["rule"] == "FT READ SAME EPOCH" for s in samples
        )

    def test_sharded_check_emits_shard_spans(
        self, tsp_file, tmp_path, capsys
    ):
        telemetry = tmp_path / "tel"
        main(
            ["check", tsp_file, "--jobs", "1", "--shards", "3",
             "--telemetry", str(telemetry)]
        )
        capsys.readouterr()
        records = _spans(str(telemetry))
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names.count("shard.analyze") == 3
        assert "engine.partition" in names
        assert "engine.merge" in names
        shard_spans = [r for r in records if r["name"] == "shard.analyze"]
        assert {s["attrs"]["shard"] for s in shard_spans} == {0, 1, 2}
        for span in shard_spans:
            assert span["attrs"]["queue_wait_s"] >= 0.0


class TestProfileCommand:
    def test_profile_renders_all_sections(self, tsp_file, capsys):
        assert main(["profile", tsp_file, "--jobs", "1", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "operation mix" in out
        assert "rule frequencies" in out
        assert "stage timings" in out
        assert "shard balance" in out
        assert "FT READ SAME EPOCH" in out

    def test_profile_keeps_telemetry_when_asked(
        self, tsp_file, tmp_path, capsys
    ):
        telemetry = tmp_path / "kept"
        assert main(
            ["profile", tsp_file, "--telemetry", str(telemetry)]
        ) == 0
        capsys.readouterr()
        assert obs.validate_spans_file(
            str(telemetry / obs.SPANS_FILENAME)
        ) > 0

    def test_profile_rejects_missing_trace(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "absent.trace")]) == 2
        assert "error" in capsys.readouterr().err
