"""The streaming live monitor (``repro watch`` / ``repro.watch``).

The load-bearing property is the **differential gate**: over a completed
trace, the warning objects streamed by :class:`WatchMonitor` (and by the
``repro watch`` CLI) must be byte-identical, in order, to the
``warnings`` array of ``repro check --json`` — for FastTrack, WCP, and
AsyncFinish over every golden trace, including the async corpus.  The
rest covers the tail reader (partial writes, follow mode, idle timeout),
live incremental delivery (first warning before EOF), compaction,
metrics, and CLI exit codes.
"""

import io
import json
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.detectors import default_tool_kwargs, make_detector
from repro.obs.metrics import MetricsRegistry
from repro.report import warning_to_json
from repro.trace import events as ev
from repro.trace.generators import async_pipeline_trace, task_pool_trace
from repro.trace.serialize import dumps, dumps_jsonl, loads
from repro.trace.trace import Trace
from repro.watch import (
    WARNING_SCHEMA,
    WATCH_EVENTS_COUNTER,
    WATCH_LAG_GAUGE,
    WATCH_WARNINGS_COUNTER,
    TailReader,
    WatchMonitor,
)

DATA = Path(__file__).parent / "data"
GOLDEN = sorted(json.loads((DATA / "manifest.json").read_text()))
ASYNC_GOLDEN = sorted(json.loads((DATA / "async_manifest.json").read_text()))
GATE_TOOLS = ("FastTrack", "WCP", "AsyncFinish")

RACY = Trace([ev.wr(0, "x"), ev.fork(0, 1), ev.wr(1, "x"), ev.wr(0, "x")])


def _canonical(obj):
    return json.dumps(obj, sort_keys=True)


def _batch_warning_lines(tool, trace):
    """The ``warnings`` array ``repro check --tool T --json`` reports,
    each entry canonically encoded — the differential reference."""
    detector = make_detector(tool, **default_tool_kwargs(tool))
    detector.process(trace)
    return [_canonical(warning_to_json(w)) for w in detector.warnings]


def _monitor_warning_lines(tool, trace, **kwargs):
    monitor = WatchMonitor(tool, registry=MetricsRegistry(), **kwargs)
    records = [json.loads(r) for r in monitor.drain(iter(trace))]
    for record in records:
        assert record["schema"] == WARNING_SCHEMA
        assert record["tool"] == tool
    return [_canonical(record["warning"]) for record in records]


class TestDifferentialGate:
    @pytest.mark.parametrize("tool", GATE_TOOLS)
    @pytest.mark.parametrize("name", GOLDEN + ASYNC_GOLDEN)
    def test_streamed_warnings_equal_batch_check(self, name, tool):
        trace = loads((DATA / f"{name}.trace").read_text())
        assert _monitor_warning_lines(tool, trace) == _batch_warning_lines(
            tool, trace
        )

    @pytest.mark.parametrize("tool", GATE_TOOLS)
    @pytest.mark.parametrize("name", GOLDEN + ASYNC_GOLDEN)
    def test_compaction_does_not_change_the_stream(self, name, tool):
        trace = loads((DATA / f"{name}.trace").read_text())
        assert _monitor_warning_lines(
            tool, trace, compact_every=7
        ) == _batch_warning_lines(tool, trace)

    def test_cli_watch_matches_cli_check_json(self, tmp_path, capsys):
        path = tmp_path / "pool.trace"
        path.write_text(dumps(task_pool_trace(racy=True, seed=1)))
        assert main(["check", str(path), "--tool", "async", "--json"]) == 1
        check_doc = json.loads(capsys.readouterr().out)
        code = main(
            ["watch", str(path), "--format", "text", "--tool", "async"]
        )
        assert code == 1
        streamed = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert [_canonical(r["warning"]) for r in streamed] == [
            _canonical(w) for w in check_doc["warnings"]
        ]


class TestWatchMonitor:
    def test_warning_fires_on_the_completing_event(self):
        monitor = WatchMonitor("FastTrack", registry=MetricsRegistry())
        assert monitor.feed(ev.wr(0, "x")) == []
        assert monitor.feed(ev.fork(0, 1)) == []
        assert monitor.feed(ev.wr(1, "x")) == []
        records = monitor.feed(ev.wr(0, "x"))
        assert len(records) == 1
        record = json.loads(records[0])
        assert record["warning"]["var"] == "x"
        assert record["warning"]["kind"] == "write-write"

    def test_alias_and_summary(self):
        monitor = WatchMonitor("async", registry=MetricsRegistry())
        assert monitor.tool == "AsyncFinish"
        list(monitor.drain(iter(task_pool_trace(racy=True, seed=0))))
        summary = monitor.finish()
        assert summary["tool"] == "AsyncFinish"
        assert summary["events"] == len(task_pool_trace(racy=True, seed=0))
        assert summary["warnings"] == 1

    def test_compaction_counters(self):
        monitor = WatchMonitor(
            "AsyncFinish", compact_every=4, registry=MetricsRegistry()
        )
        trace = task_pool_trace(tasks=6, racy=True, seed=0)
        list(monitor.drain(iter(trace)))
        assert monitor.compactions == len(trace) // 4
        assert monitor.released >= 1

    def test_metrics(self):
        registry = MetricsRegistry()
        clock = iter(float(i) for i in range(10_000))
        monitor = WatchMonitor(
            "FastTrack", registry=registry, clock=lambda: next(clock)
        )
        trace = RACY
        for event in trace:
            monitor.feed(event, arrival=0.0)
        monitor.finish()
        events = registry.counter(WATCH_EVENTS_COUNTER, "").value(
            tool="FastTrack"
        )
        warnings = registry.counter(WATCH_WARNINGS_COUNTER, "").value(
            tool="FastTrack"
        )
        lag = registry.gauge(WATCH_LAG_GAUGE, "").value(tool="FastTrack")
        assert events == len(trace)
        assert warnings == 1
        assert lag > 0.0  # fake clock marches on while arrival stays 0


class TestTailReader:
    def test_reads_complete_lines_with_terminators(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("one\ntwo\n")
        assert list(TailReader(str(path)).lines()) == ["one\n", "two\n"]

    def test_unterminated_tail_is_yielded_last(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("one\ntw")
        assert list(TailReader(str(path)).lines()) == ["one\n", "tw"]

    def test_from_start_false_skips_existing_content(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("old\n")
        reader = TailReader(str(path), from_start=False)
        assert list(reader.lines()) == []

    def test_follow_waits_for_growth_then_idle_times_out(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("first\n")
        clock_now = [0.0]
        writes = iter([b"second\nthi", b"rd\n"])

        def fake_sleep(_seconds):
            clock_now[0] += 1.0
            chunk = next(writes, None)
            if chunk is not None:
                with open(path, "ab") as handle:
                    handle.write(chunk)

        reader = TailReader(
            str(path),
            follow=True,
            idle_timeout=5.0,
            clock=lambda: clock_now[0],
            sleep=fake_sleep,
        )
        assert list(reader.lines()) == ["first\n", "second\n", "third\n"]

    def test_torn_multibyte_character_decodes_leniently(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"ok\n" + "é".encode("utf-8")[:1])
        lines = list(TailReader(str(path)).lines())
        assert lines[0] == "ok\n"
        assert lines[1] == "�"

    def test_last_read_at_tracks_reads(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("line\n")
        ticks = iter(float(i) for i in range(100))
        reader = TailReader(str(path), clock=lambda: next(ticks))
        list(reader.lines())
        assert reader.last_read_at > 0.0
        assert reader.bytes_read == 5


class TestLiveStreaming:
    def test_first_warning_arrives_before_eof(self, tmp_path):
        """The point of watch: with a producer still appending, the racy
        prefix alone must already have produced a streamed warning."""
        path = tmp_path / "live.jsonl"
        trace = task_pool_trace(tasks=3, racy=True, seed=0)
        lines = dumps_jsonl(trace).splitlines(keepends=True)
        racy_detector = make_detector(
            "AsyncFinish", **default_tool_kwargs("AsyncFinish")
        )
        racy_detector.process(trace)
        first_warning_index = racy_detector.warnings[0].event_index
        got_warning = threading.Event()
        done = threading.Event()

        def produce():
            with open(path, "w") as handle:
                for index, line in enumerate(lines):
                    if index == first_warning_index + 1:
                        # Stall at the point right after the race fires:
                        # the consumer must warn *now*, long before EOF.
                        handle.flush()
                        assert got_warning.wait(timeout=10.0)
                    handle.write(line)
                handle.flush()
            done.set()

        path.write_text("")
        producer = threading.Thread(target=produce)
        producer.start()
        try:
            # idle_timeout bounds the run: the reader stops shortly after
            # the producer finishes (drain only yields on warnings, so
            # the loop cannot be exited from inside).
            reader = TailReader(
                str(path),
                follow=True,
                poll_interval=0.005,
                idle_timeout=1.0,
            )
            monitor = WatchMonitor("AsyncFinish", registry=MetricsRegistry())
            from repro.trace.serialize import iter_parse_jsonl

            records = []
            for record in monitor.drain(iter_parse_jsonl(reader.lines())):
                records.append(json.loads(record))
                if not got_warning.is_set():
                    assert not done.is_set()  # streamed before EOF
                    got_warning.set()
        finally:
            got_warning.set()
            producer.join(timeout=10.0)
        assert done.is_set()
        assert monitor.events_seen == len(trace)
        assert records
        assert records[0]["warning"]["var"] == "counter"

    def test_partial_write_is_completed_not_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = RACY
        lines = dumps_jsonl(trace).splitlines(keepends=True)
        # First event written in two torn halves.
        path.write_text(lines[0][:7])
        reads = [0]

        def fake_sleep(_seconds):
            reads[0] += 1
            with open(path, "a") as handle:
                if reads[0] == 1:
                    handle.write(lines[0][7:])
                else:
                    handle.writelines(lines[1:])

        reader = TailReader(str(path), follow=True, sleep=fake_sleep)
        from repro.trace.serialize import iter_parse_jsonl

        monitor = WatchMonitor("FastTrack", registry=MetricsRegistry())
        records = []
        for record in monitor.drain(iter_parse_jsonl(reader.lines())):
            records.append(json.loads(record))
            break  # stop after the first warning; reader would follow on
        assert records[0]["warning"]["var"] == "x"
        assert monitor.events_seen == len(trace)


class TestCli:
    def _write(self, tmp_path, trace, name="t.jsonl"):
        path = tmp_path / name
        path.write_text(dumps_jsonl(trace))
        return str(path)

    def test_exit_one_on_warnings(self, tmp_path, capsys):
        assert main(["watch", self._write(tmp_path, RACY)]) == 1
        captured = capsys.readouterr()
        record = json.loads(captured.out.splitlines()[0])
        assert record["schema"] == WARNING_SCHEMA
        assert "1 warning(s)" in captured.err

    def test_exit_zero_on_clean_trace(self, tmp_path, capsys):
        trace = task_pool_trace(racy=False, seed=0)
        path = self._write(tmp_path, trace)
        assert main(["watch", path, "--tool", "async"]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert f"watched {len(trace)} event(s): 0 warning(s)" in captured.err

    def test_exit_two_on_missing_file(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such file" in capsys.readouterr().err.lower()

    def test_exit_two_on_parse_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"bogus": true}\n')
        assert main(["watch", str(path)]) == 2

    def test_tolerates_unterminated_final_line(self, tmp_path, capsys):
        text = dumps_jsonl(RACY)
        half = dumps_jsonl(Trace([ev.rd(0, "y")])).rstrip("\n")
        path = tmp_path / "torn.jsonl"
        path.write_text(text + half[: len(half) // 2])
        assert main(["watch", str(path)]) == 1
        assert f"watched {len(RACY)} event(s)" in capsys.readouterr().err

    def test_stdin_source(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(dumps_jsonl(RACY))
        )
        assert main(["watch", "-"]) == 1
        record = json.loads(capsys.readouterr().out.splitlines()[0])
        assert record["warning"]["var"] == "x"

    def test_text_format_and_compact_every(self, tmp_path, capsys):
        path = tmp_path / "pool.trace"
        path.write_text(dumps(task_pool_trace(tasks=5, racy=True, seed=2)))
        code = main(
            [
                "watch",
                str(path),
                "--format",
                "text",
                "--tool",
                "AsyncFinish",
                "--compact-every",
                "6",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "compaction(s)" in captured.err
        record = json.loads(captured.out.splitlines()[0])
        assert record["warning"]["var"] == "counter"

    def test_follow_mode_with_idle_timeout(self, tmp_path, capsys):
        path = self._write(tmp_path, RACY)
        code = main(
            [
                "watch",
                path,
                "--follow",
                "--from-start",
                "--idle-timeout",
                "0.05",
                "--poll-interval",
                "0.01",
            ]
        )
        assert code == 1
        assert "1 warning(s)" in capsys.readouterr().err
