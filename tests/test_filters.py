"""Tests for the event-stream prefilters (Section 5.2 plumbing)."""

from repro.checkers import Velodrome
from repro.runtime.filters import (
    DJITFilter,
    EraserFilter,
    FastTrackFilter,
    NoneFilter,
    ThreadLocalFilter,
    compose,
)
from repro.trace import events as ev

RACY = [
    ev.fork(0, 1),
    ev.wr(0, "x"),
    ev.wr(1, "x"),
    ev.wr(0, "x"),
    ev.wr(0, "private"),
    ev.wr(0, "private"),
]


class TestNoneFilter:
    def test_passes_everything(self):
        prefilter = NoneFilter()
        kept = list(prefilter.filtered(RACY))
        assert kept == RACY
        assert prefilter.events_in == prefilter.events_out == len(RACY)


class TestThreadLocalFilter:
    def test_drops_thread_local_accesses(self):
        prefilter = ThreadLocalFilter()
        kept = list(prefilter.filtered(RACY))
        assert ev.wr(0, "private") not in kept
        # x becomes shared at thread 1's write; later x accesses pass.
        assert kept[-1] == ev.wr(0, "x")

    def test_sync_events_always_pass(self):
        prefilter = ThreadLocalFilter()
        assert list(prefilter.filtered([ev.fork(0, 1)])) == [ev.fork(0, 1)]

    def test_first_shared_access_passes(self):
        prefilter = ThreadLocalFilter()
        kept = list(prefilter.filtered([ev.wr(0, "x"), ev.rd(1, "x")]))
        assert kept == [ev.rd(1, "x")]


class TestDetectorFilters:
    def test_fasttrack_filter_passes_racy_accesses_only(self):
        prefilter = FastTrackFilter()
        kept = list(prefilter.filtered(RACY))
        accesses = [e for e in kept if e.kind in (ev.READ, ev.WRITE)]
        assert all(e.target == "x" for e in accesses)
        # The first racy access (where the race is *detected*) passes; the
        # access before detection does not — footnote 6's coverage caveat.
        assert ev.wr(1, "x") in kept

    def test_race_free_stream_is_fully_filtered(self):
        clean = [ev.wr(0, "x"), ev.fork(0, 1), ev.rd(1, "x")]
        for prefilter_cls in (FastTrackFilter, DJITFilter, EraserFilter):
            prefilter = prefilter_cls()
            kept = list(prefilter.filtered(clean))
            assert [e for e in kept if e.kind in (ev.READ, ev.WRITE)] == []

    def test_eraser_filter_uses_eraser_verdicts(self):
        # A fork-ordered handoff: spurious for Eraser, so its filter passes
        # the access while FastTrack's does not.
        handoff = [ev.wr(0, "x"), ev.fork(0, 1), ev.wr(1, "x"), ev.wr(1, "x")]
        eraser_kept = list(EraserFilter().filtered(handoff))
        ft_kept = list(FastTrackFilter().filtered(handoff))
        assert any(e.kind == ev.WRITE for e in eraser_kept)
        assert not any(e.kind == ev.WRITE for e in ft_kept)


class TestComposeChain:
    def test_two_filters_then_checker(self):
        from repro.runtime.filters import compose_chain

        prefilters = [ThreadLocalFilter(), FastTrackFilter()]
        checker = Velodrome()
        result = compose_chain(prefilters, checker, RACY)
        assert result.events_in == len(RACY)
        assert result.events_passed <= len(RACY)
        assert checker.events_handled == result.events_passed

    def test_empty_chain_feeds_checker_directly(self):
        from repro.runtime.filters import compose_chain

        checker = Velodrome()
        result = compose_chain([], checker, RACY)
        assert result.events_passed == len(RACY)

    def test_cli_compose(self, tmp_path, capsys):
        from repro.cli import main
        from repro.trace.serialize import dumps
        from repro.trace.trace import Trace

        path = tmp_path / "t.trace"
        path.write_text(dumps(Trace(RACY)))
        code = main(["compose", "FastTrack:Velodrome", str(path)])
        # The unsynchronized back-and-forth writes on x are themselves a
        # non-serializable pattern, so Velodrome reports and we exit 1.
        assert code == 1
        out = capsys.readouterr().out
        assert "reached Velodrome" in out
        assert "violation" in out

    def test_cli_compose_rejects_unknown_stage(self, tmp_path, capsys):
        from repro.cli import main
        from repro.trace.serialize import dumps
        from repro.trace.trace import Trace

        path = tmp_path / "t.trace"
        path.write_text(dumps(Trace(RACY)))
        assert main(["compose", "Nope:Velodrome", str(path)]) == 2
        assert main(["compose", "Velodrome", str(path)]) == 2


class TestCompose:
    def test_composition_reports_pass_statistics(self):
        result = compose(FastTrackFilter(), Velodrome(), RACY)
        assert result.events_in == len(RACY)
        assert 0 < result.events_passed < len(RACY)
        assert 0.0 < result.pass_fraction < 1.0

    def test_checker_only_sees_kept_events(self):
        checker = Velodrome()
        result = compose(ThreadLocalFilter(), checker, RACY)
        assert checker.events_handled == result.events_passed
