"""The predictive detector family: WCP, vindication, and its wiring.

Covers the ISSUE acceptance matrix for ``repro.predict``:

* WCP's warning set is a superset of FastTrack's everywhere, and a
  *strict* superset on the golden corpus — with every extra report
  vindicated by a feasibility-checked witness reordering;
* the fused WCP kernel is bit-identical to the object path (including
  the vindicator's candidate pairs) and the sharded engine honours the
  per-shard soundness envelope at 1/2/4 shards;
* ``repro check --tool wcp`` / ``repro predict`` / ``tool: wcp``
  service jobs run end to end, and ``obs.rules`` exposes the WCP edge
  kinds as ``repro_rule_total{detector="WCP",rule=...}``;
* ``HappensBefore.races()``'s bitmask candidate index returns exactly
  what the naive quadratic enumeration did.
"""

import io
import json
import random
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro import cli, engine
from repro.core.fasttrack import FastTrack
from repro.detectors.registry import (
    DETECTORS,
    make_detector,
    resolve_tool_name,
)
from repro.kernels import KERNEL_TOOLS, run_kernel
from repro.obs.metrics import MetricsRegistry
from repro.obs.rules import record_rule_counts
from repro.predict import (
    PredictionReport,
    RaceCandidate,
    WCPDetector,
    build_witness,
    predict_races,
    vindicate,
)
from repro.trace import events as ev
from repro.trace.columnar import ColumnarTrace
from repro.trace.feasibility import check_feasible
from repro.trace.generators import GeneratorConfig, random_feasible_trace
from repro.trace.happens_before import HappensBefore
from repro.trace.serialize import loads

DATA = Path(__file__).parent / "data"
MANIFEST = json.loads((DATA / "manifest.json").read_text())
SHARD_COUNTS = (1, 2, 4)


def load_trace(name):
    return loads((DATA / f"{name}.trace").read_text())


def warned_vars(detector):
    return {detector.shadow_key(w.var) for w in detector.warnings}


# -- the algorithm ------------------------------------------------------------


class TestWCPDetector:
    def test_registered_with_kernel(self):
        assert "WCP" in DETECTORS
        assert "WCP" in KERNEL_TOOLS
        assert not DETECTORS["WCP"].precise

    def test_resolve_tool_name_case_insensitive(self):
        assert resolve_tool_name("wcp") == "WCP"
        assert resolve_tool_name("WcP") == "WCP"
        assert resolve_tool_name("fasttrack") == "FastTrack"
        assert resolve_tool_name("djit+") == "DJIT+"
        # Unknown names pass through for the caller's own error message.
        assert resolve_tool_name("TSan") == "TSan"

    def test_nonconflicting_sections_do_not_order(self):
        """The canonical predictive race: coincidental lock ordering."""
        events = list(load_trace("predict_lock"))
        assert not FastTrack().process(events).warnings
        wcp = WCPDetector().process(events)
        assert [w.kind for w in wcp.warnings] == ["write-write"]
        assert wcp.candidates == [
            RaceCandidate(
                var="x",
                kind="write-write",
                earlier_index=2,
                later_index=7,
                earlier_tid=0,
                later_tid=1,
            )
        ]

    def test_conflicting_sections_do_order(self):
        """Both sections write x → the release-acquire edge is kept and
        the accesses are properly protected."""
        events = [
            ev.acq(0, "m"),
            ev.wr(0, "x"),
            ev.rel(0, "m"),
            ev.acq(1, "m"),
            ev.wr(1, "x"),
            ev.rel(1, "m"),
        ]
        wcp = WCPDetector().process(events)
        assert not wcp.warnings
        assert wcp.stats.rules["WCP CONFLICT JOIN"] == 1

    def test_read_read_sections_do_not_conflict(self):
        """Two read-only sections commute; the unprotected write after
        them races with the first section's read."""
        events = [
            ev.acq(0, "m"),
            ev.rd(0, "x"),
            ev.rel(0, "m"),
            ev.acq(1, "m"),
            ev.rd(1, "x"),
            ev.rel(1, "m"),
            ev.wr(1, "y"),
            ev.wr(0, "x"),
        ]
        wcp = WCPDetector().process(events)
        assert [w.kind for w in wcp.warnings] == ["read-write"]

    def test_fork_join_edges_stay_strong(self):
        events = [
            ev.fork(0, 1),
            ev.wr(1, "x"),
            ev.join(0, 1),
            ev.wr(0, "x"),
        ]
        assert not WCPDetector().process(events).warnings

    def test_rule_counters(self):
        events = list(load_trace("predict_lock"))
        wcp = WCPDetector().process(events)
        rules = wcp.stats.rules
        assert rules["WCP ACQUIRE"] == 2
        assert rules["WCP RELEASE"] == 2
        # Section 0 flushes {a, x} into the write history; section 1 {b}.
        assert rules["WCP RELEASE FLUSH"] == 3
        assert "WCP CONFLICT JOIN" not in rules

    def test_superset_of_fasttrack_on_random_traces(self):
        rng = random.Random(0x5E7)
        for round_index in range(10):
            trace = random_feasible_trace(
                rng,
                GeneratorConfig(
                    max_events=300,
                    max_threads=6,
                    n_vars=8,
                    n_locks=3,
                    n_volatiles=2,
                    discipline=0.4,
                    p_fork=0.06,
                    p_join=0.06,
                    p_barrier=0.03,
                    p_volatile=0.05,
                    seed_threads=2,
                ),
            )
            events = list(trace)
            ft = FastTrack().process(events)
            wcp = WCPDetector().process(events)
            assert warned_vars(ft) <= warned_vars(wcp), round_index


# -- golden corpus: superset + vindication ------------------------------------


def test_wcp_strict_superset_on_golden_corpus():
    """The headline acceptance criterion: WCP ⊋ FastTrack over the corpus
    as a whole, with per-trace containment."""
    strict = 0
    for name in sorted(MANIFEST):
        expected = MANIFEST[name]["warnings"]
        assert set(expected["FastTrack"]) <= set(expected["WCP"]), name
        if set(expected["FastTrack"]) < set(expected["WCP"]):
            strict += 1
    assert strict >= 3  # predict_lock, predict_fork, section2


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_every_golden_extra_is_vindicated(name):
    """Every WCP report beyond FastTrack's carries a feasibility-checked
    witness; FastTrack-visible races classify as observed."""
    events = list(load_trace(name))
    report = predict_races(events)
    hb = HappensBefore(events)
    for race in report.races:
        if race.status == "observed":
            # The observed trace is its own witness: the pair really is
            # concurrent in the happens-before order (FastTrack may have
            # site-deduplicated the report, but the race is visible).
            assert hb.concurrent(
                race.candidate.earlier_index, race.candidate.later_index
            ), (name, race)
            continue
        assert race.status == "vindicated", (name, race)
        witness = race.witness.events(events)
        assert check_feasible(witness) == [], (name, race)
        # The racing pair is adjacent and last, in original order.
        assert race.witness.order[-2:] == (
            race.candidate.earlier_index,
            race.candidate.later_index,
        )
    assert report.unvindicated == [], name


@pytest.mark.parametrize("name", ("predict_lock", "predict_fork"))
def test_annotated_witnesses_match(name):
    """The witness reorderings annotated in the trace files are the ones
    the vindicator actually constructs."""
    annotated = {
        "predict_lock": (4, 5, 6, 0, 1, 2, 7),
        "predict_fork": (0, 5, 6, 7, 1, 2, 3, 8),
    }[name]
    report = predict_races(list(load_trace(name)))
    assert [r.status for r in report.races] == ["vindicated"]
    assert report.races[0].witness.order == annotated


# -- vindication negatives ----------------------------------------------------


class TestVindication:
    def test_required_intervening_conflicting_access_rejected(self):
        """A conflicting access in the later thread's own prefix sits
        between the pair in every order-preserving witness."""
        events = [
            ev.wr(0, "x"),
            ev.wr(1, "x"),
            ev.wr(1, "x"),
        ]
        assert build_witness(events, 0, 2) is None
        assert build_witness(events, 0, 1) is not None

    def test_droppable_intervening_access_is_not_required(self):
        """An intervening conflicting access in the *earlier* thread's
        suffix is simply dropped from the witness."""
        events = [
            ev.wr(0, "x"),
            ev.wr(0, "y"),
            ev.wr(0, "x"),
            ev.wr(1, "x"),
        ]
        order = build_witness(events, 0, 3)
        assert order is not None
        assert 2 not in order
        assert check_feasible([events[pos] for pos in order]) == []

    def test_join_forces_observed_order(self):
        """join(1,0) drags thread 0's write before thread 1's: the
        observed order is control-forced, no witness exists."""
        events = [
            ev.wr(0, "x"),
            ev.join(1, 0),
            ev.wr(1, "x"),
        ]
        assert build_witness(events, 0, 2) is None

    def test_same_thread_pair_rejected(self):
        events = [ev.wr(0, "x"), ev.wr(0, "x")]
        assert build_witness(events, 0, 1) is None

    def test_vindicate_requires_feasible_witness(self):
        """vindicate() trusts check_feasible, not the scheduler: a
        candidate whose 'witness' would be infeasible comes back None."""
        events = list(load_trace("predict_lock"))
        bogus = RaceCandidate(
            var="x",
            kind="write-write",
            earlier_index=0,  # an acquire, not an access
            later_index=7,
            earlier_tid=0,
            later_tid=1,
        )
        assert vindicate(events, bogus) is None

    def test_window_bounds_vindication(self):
        events = list(load_trace("predict_lock"))
        wide = predict_races(events, window=10)
        assert [r.status for r in wide.races] == ["vindicated"]
        narrow = predict_races(events, window=2)
        assert [r.status for r in narrow.races] == ["out-of-window"]
        assert narrow.races[0].witness is None

    def test_report_json_schema(self):
        events = list(load_trace("predict_lock"))
        document = predict_races(events, window=16).to_json()
        assert document["schema"] == "repro.predict/1"
        assert document["events"] == len(events)
        assert document["window"] == 16
        (race,) = document["races"]
        assert race["status"] == "vindicated"
        assert race["witness"] == [4, 5, 6, 0, 1, 2, 7]

    def test_prediction_report_accessors(self):
        report = PredictionReport(events=0, window=None)
        assert report.observed == []
        assert report.vindicated == []
        assert report.unvindicated == []


# -- kernel + engine ----------------------------------------------------------


class TestWCPKernel:
    def test_candidates_bit_identical(self):
        """The fused kernel reproduces the exact candidate pairs — the
        vindicator sees no difference between the two paths."""
        rng = random.Random(0xF00D)
        trace = random_feasible_trace(
            rng,
            GeneratorConfig(
                max_events=400,
                max_threads=6,
                n_vars=6,
                n_locks=3,
                discipline=0.2,
                p_fork=0.07,
                p_join=0.06,
                p_volatile=0.05,
                seed_threads=2,
            ),
        )
        events = list(trace)
        generic = WCPDetector().process(events)
        fused = run_kernel("WCP", ColumnarTrace.from_events(events))
        assert generic.candidates == fused.candidates
        assert generic.candidates, "trace should produce candidates"

    def test_kernel_rejects_wrong_detector(self):
        col = ColumnarTrace.from_events([ev.wr(0, "x")])
        with pytest.raises(TypeError):
            run_kernel("WCP", col, detector=make_detector("FastTrack"))

    @pytest.mark.parametrize("nshards", SHARD_COUNTS)
    def test_engine_envelope(self, nshards):
        """docs/PREDICT.md's sharding envelope: sharded ⊇ single (equal
        at one shard), fused == generic at every shard count, and both
        still ⊇ FastTrack through the same engine."""
        rng = random.Random(77 + nshards)
        trace = random_feasible_trace(
            rng,
            GeneratorConfig(
                max_events=500,
                max_threads=5,
                n_vars=10,
                n_locks=3,
                discipline=0.3,
                p_fork=0.06,
                p_join=0.05,
                seed_threads=2,
            ),
        )
        single = WCPDetector().process(trace)
        fused = engine.check_events(
            trace.events, tool="WCP", nshards=nshards, kernel="fused"
        )
        generic = engine.check_events(
            trace.events, tool="WCP", nshards=nshards, kernel="generic"
        )
        assert [str(w) for w in fused.warnings] == [
            str(w) for w in generic.warnings
        ]
        single_vars = {w.var for w in single.warnings}
        sharded_vars = {w.var for w in fused.warnings}
        assert single_vars <= sharded_vars
        if nshards == 1:
            assert [str(w) for w in fused.warnings] == [
                str(w) for w in single.warnings
            ]
        ft = engine.check_events(
            trace.events,
            tool="FastTrack",
            nshards=nshards,
            tool_kwargs={"track_sites": True},
        )
        assert {w.var for w in ft.warnings} <= sharded_vars


# -- wiring: CLI, service, obs ------------------------------------------------


class TestPredictCLI:
    @pytest.fixture
    def lock_trace(self):
        return str(DATA / "predict_lock.trace")

    def test_check_tool_wcp_case_insensitive(self, lock_trace, capsys):
        assert cli.main(["check", lock_trace, "--tool", "wcp"]) == 1
        out = capsys.readouterr().out
        assert "WCP: 1 warning(s)" in out
        assert cli.main(["check", lock_trace, "--tool", "FastTrack"]) == 0

    def test_check_tool_wcp_sharded(self, lock_trace, capsys):
        for kernel in ("fused", "generic"):
            assert (
                cli.main(
                    [
                        "check",
                        lock_trace,
                        "--tool",
                        "WCP",
                        "--shards",
                        "2",
                        "--kernel",
                        kernel,
                    ]
                )
                == 1
            )

    def test_predict_command(self, lock_trace, capsys):
        assert cli.main(["predict", lock_trace]) == 1
        out = capsys.readouterr().out
        assert "1 predicted+vindicated" in out

    def test_predict_json(self, lock_trace, capsys):
        assert cli.main(["predict", lock_trace, "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro.predict/1"
        assert document["races"][0]["status"] == "vindicated"

    def test_predict_window_out_of_range_exits_zero(self, lock_trace, capsys):
        assert cli.main(["predict", lock_trace, "--window", "2"]) == 0
        assert "out of window" in capsys.readouterr().out

    def test_predict_race_free_trace_exits_zero(self, capsys):
        assert cli.main(["predict", str(DATA / "figure4.trace")]) == 0

    def test_predict_missing_file(self, capsys):
        assert cli.main(["predict", "/no/such/file.trace"]) == 2
        assert "error" in capsys.readouterr().err

    def test_tools_lists_wcp(self, capsys):
        assert cli.main(["tools"]) == 0
        assert "WCP" in capsys.readouterr().out


def test_service_runs_wcp_jobs(tmp_path):
    """A ``tool: wcp`` job (case-insensitive) through the real daemon
    equals ``repro check --tool WCP --json`` byte for byte."""
    from repro.service.client import Client
    from repro.service.server import ServiceConfig, start_in_thread

    handle = start_in_thread(
        ServiceConfig(port=0, workers=1, store_dir=str(tmp_path))
    )
    try:
        client = Client(port=handle.port, timeout=30.0)
        trace_path = DATA / "predict_lock.trace"
        job = client.submit(path=str(trace_path), tools=["wcp"])
        assert job["tools"] == ["WCP"]
        client.wait(job["id"], timeout=60.0, poll=0.05)
        served = client.result_bytes(job["id"]).decode("utf-8")
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = cli.main(
                ["check", str(trace_path), "--tool", "WCP", "--json"]
            )
        assert code == 1
        assert served == buffer.getvalue()
    finally:
        handle.stop(grace=5.0)


def test_wcp_rule_metrics_exposed():
    """The WCP edge kinds surface as repro_rule_total{detector="WCP"}."""
    registry = MetricsRegistry()
    wcp = WCPDetector().process(list(load_trace("predict_lock")))
    counts = record_rule_counts("WCP", wcp.stats, registry)
    assert counts["WCP ACQUIRE"] == 2
    assert counts["WCP RELEASE"] == 2
    assert counts["WCP RELEASE FLUSH"] == 3
    assert list(counts) == sorted(counts)
    text = registry.render()
    assert 'repro_rule_total{detector="WCP",rule="WCP ACQUIRE"} 2' in text


# -- HappensBefore.races() bitmask index --------------------------------------


def _naive_races(hb):
    """The pre-optimization quadratic enumeration, kept as the reference."""
    per_var = {}
    for index, event in enumerate(hb.events):
        if event.kind in (ev.READ, ev.WRITE):
            per_var.setdefault(event.target, []).append(index)
    found = []
    for accesses in per_var.values():
        for a_pos, i in enumerate(accesses):
            event_i = hb.events[i]
            for j in accesses[a_pos + 1 :]:
                event_j = hb.events[j]
                if event_i.kind == ev.READ and event_j.kind == ev.READ:
                    continue
                if not hb.ordered(i, j):
                    found.append((i, j))
    found.sort(key=lambda pair: (pair[1], pair[0]))
    return found


@pytest.mark.parametrize("seed", range(15))
def test_races_bitmask_matches_naive_enumeration(seed):
    rng = random.Random(seed)
    trace = random_feasible_trace(
        rng,
        GeneratorConfig(
            max_events=250,
            max_threads=6,
            n_vars=5,
            n_locks=2,
            n_volatiles=1,
            discipline=rng.choice([0.0, 0.3, 0.8]),
            p_fork=0.06,
            p_join=0.05,
            p_barrier=0.03,
            p_volatile=0.05,
            seed_threads=2,
        ),
    )
    hb = HappensBefore(list(trace))
    assert hb.races() == _naive_races(hb)


@pytest.mark.parametrize("name", sorted(MANIFEST))
def test_races_bitmask_matches_naive_on_corpus(name):
    hb = HappensBefore(list(load_trace(name)))
    assert hb.races() == _naive_races(hb)
