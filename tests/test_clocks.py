"""Lemmas 3 and 4 (Appendix A): clocks characterize happens-before.

Lemma 3 (*clocks imply happens-before*): if ``C_a(t) ≤ C_b(u)`` at ``t``'s
component then ``a <α b``.  Lemma 4 (*happens-before implies clocks*): if
``a <α b`` then ``K_a ⊑ K_b``.  Together they give the classic vector-clock
characterization of the happens-before partial order, which we test
exhaustively on random feasible traces against the independent graph-based
oracle.
"""

from hypothesis import given, settings

from repro.trace import events as ev
from repro.trace.clocks import EventClocks, annotate
from repro.trace.generators import traces
from repro.trace.happens_before import HappensBefore


class TestAnnotator:
    def test_initial_clock_is_inc_of_bottom(self):
        clocks = annotate([ev.rd(0, "x"), ev.rd(3, "y")])
        assert clocks.pre[0].as_tuple() == (1,)
        assert clocks.pre[1].as_tuple() == (0, 0, 0, 1)

    def test_release_acquire_transfer(self):
        clocks = annotate(
            [
                ev.acq(0, "m"),
                ev.rel(0, "m"),
                ev.acq(1, "m"),
            ]
        )
        # After the acquire, thread 1 knows thread 0's release clock.
        assert clocks.post[2].get(0) == 1
        assert clocks.pre[2].get(0) == 0

    def test_release_starts_new_epoch(self):
        clocks = annotate([ev.acq(0, "m"), ev.rel(0, "m"), ev.rd(0, "x")])
        assert clocks.pre[1].get(0) == 1
        assert clocks.post[1].get(0) == 2
        assert clocks.pre[2].get(0) == 2

    def test_fork_propagates_and_increments(self):
        clocks = annotate([ev.fork(0, 1), ev.rd(1, "x"), ev.rd(0, "x")])
        assert clocks.pre[1].get(0) == 1  # child saw parent's clock
        assert clocks.pre[1].get(1) == 1
        assert clocks.pre[2].get(0) == 2  # parent entered a new epoch

    def test_barrier_joins_and_increments_members(self):
        clocks = annotate(
            [
                ev.rd(0, "x"),
                ev.rd(1, "x"),
                ev.barrier_rel((0, 1)),
                ev.rd(0, "x"),
                ev.rd(1, "x"),
            ]
        )
        assert clocks.pre[3].as_tuple() == (2, 1)
        assert clocks.pre[4].as_tuple() == (1, 2)

    def test_volatile_write_read_transfer(self):
        clocks = annotate(
            [ev.vol_wr(0, "v"), ev.vol_rd(1, "v"), ev.rd(1, "x")]
        )
        assert clocks.pre[2].get(0) == 1


class TestLemmas:
    @settings(max_examples=80, deadline=None)
    @given(traces())
    def test_clock_characterization_matches_oracle(self, trace):
        events = list(trace)
        oracle = HappensBefore(events)
        clocks = EventClocks(events)
        for j in range(len(events)):
            for i in range(j):
                assert clocks.clocks_ordered(i, j) == oracle.ordered(i, j), (
                    i,
                    j,
                    events,
                )

    @settings(max_examples=40, deadline=None)
    @given(traces())
    def test_lemma4_full_vc_monotonicity(self, trace):
        """a <α b implies K_a ⊑ K_b (the full pointwise order, Lemma 4).

        Stated, as in the Appendix, for the core per-thread operations: a
        barrier release acts for *all* its members at once, so its joined
        post-clock is deliberately not ⊑ any single member's next clock.
        """
        events = list(trace)
        oracle = HappensBefore(events)
        clocks = EventClocks(events)
        for j in range(len(events)):
            if events[j].kind == ev.BARRIER_RELEASE:
                continue
            for i in range(j):
                if events[i].kind == ev.BARRIER_RELEASE:
                    continue
                if oracle.ordered(i, j):
                    assert clocks.k(i).leq(clocks.k(j)), (i, j, events)
