"""Unit tests for the shadow state (Figure 5) and the shared Figure 3
synchronization rules."""

from repro.core.epoch import EPOCH_BOTTOM, make_epoch
from repro.core.state import LockState, ThreadState, VarState
from repro.core.vcsync import VCSyncDetector
from repro.core.vectorclock import VectorClock
from repro.trace import events as ev


class TestThreadState:
    def test_initial_state_matches_sigma0(self):
        t = ThreadState(3)
        assert t.vc.as_tuple() == (0, 0, 0, 1)  # inc_3(bottom)
        assert t.epoch == make_epoch(1, 3)

    def test_refresh_epoch_tracks_clock(self):
        t = ThreadState(0)
        t.vc.inc(0)
        t.refresh_epoch()
        assert t.epoch == make_epoch(2, 0)

    def test_explicit_vc(self):
        t = ThreadState(1, VectorClock([4, 8]))
        assert t.epoch == make_epoch(8, 1)

    def test_repr(self):
        assert "tid=2" in repr(ThreadState(2))


class TestVarState:
    def test_initial_epochs_are_bottom(self):
        x = VarState()
        assert x.write_epoch == EPOCH_BOTTOM
        assert x.read_epoch == EPOCH_BOTTOM
        assert x.read_vc is None

    def test_shadow_words_grow_with_read_vc(self):
        x = VarState()
        base = x.shadow_words()
        x.read_vc = VectorClock([1, 2, 3])
        assert x.shadow_words() == base + 1 + 3


class TestLockState:
    def test_initial_vc_is_bottom(self):
        m = LockState()
        assert m.vc.as_tuple() == ()
        assert m.shadow_words() >= 2


class TestFigure3Rules:
    """The synchronization rules, tested through the shared base class."""

    def run(self, events):
        tool = VCSyncDetector()
        for event in events:
            tool.handle(event)
        return tool

    def test_acquire_joins_lock_clock(self):
        tool = self.run([ev.acq(0, "m"), ev.rel(0, "m"), ev.acq(1, "m")])
        assert tool.threads[1].vc.get(0) == 1

    def test_release_copies_and_increments(self):
        tool = self.run([ev.acq(0, "m"), ev.rel(0, "m")])
        assert tool.locks["m"].vc.get(0) == 1
        assert tool.threads[0].vc.get(0) == 2
        assert tool.threads[0].epoch == make_epoch(2, 0)

    def test_fork_rule(self):
        tool = self.run([ev.fork(0, 1)])
        assert tool.threads[1].vc.as_tuple() == (1, 1)  # C_u ⊔ C_t
        assert tool.threads[0].vc.as_tuple() == (2,)  # inc_t

    def test_join_rule(self):
        tool = self.run([ev.fork(0, 1), ev.join(0, 1)])
        assert tool.threads[0].vc.get(1) == 1
        assert tool.threads[1].vc.get(1) == 2  # inc_u after join

    def test_volatile_rules(self):
        tool = self.run(
            [ev.vol_wr(0, "v"), ev.vol_rd(1, "v"), ev.vol_wr(1, "v")]
        )
        # Reader joined the writer's clock.
        assert tool.threads[1].vc.get(0) == 1
        # The second write accumulated into L_v without ordering writers.
        assert tool.volatiles["v"].vc.get(0) == 1
        assert tool.volatiles["v"].vc.get(1) == 1

    def test_barrier_rule(self):
        tool = self.run(
            [
                ev.acq(0, "m"),
                ev.rel(0, "m"),  # C0 = <2>
                ev.barrier_rel((0, 1)),
            ]
        )
        # Every member gets inc_t of the join of all members.
        assert tool.threads[0].vc.as_tuple() == (3, 1)
        assert tool.threads[1].vc.as_tuple() == (2, 2)

    def test_empty_barrier_is_a_noop(self):
        tool = self.run([ev.barrier_rel(())])
        assert tool.threads == {}

    def test_counters(self):
        tool = self.run([ev.acq(0, "m"), ev.rel(0, "m"), ev.fork(0, 1)])
        # 1 thread VC + 1 lock VC + 1 child VC allocated.
        assert tool.stats.vc_allocs == 3
        assert tool.stats.vc_ops == 3  # join, assign, fork-join

    def test_sync_shadow_words(self):
        tool = self.run([ev.acq(0, "m"), ev.vol_wr(0, "v")])
        assert tool.sync_shadow_words() > 0
