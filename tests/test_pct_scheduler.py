"""Tests for the PCT scheduling policy."""

import pytest

from repro.core.fasttrack import FastTrack
from repro.runtime.program import Program
from repro.runtime.scheduler import Scheduler, run_program
from repro.trace.feasibility import check_feasible


def _flagged_program():
    """A race that needs one well-placed preemption to manifest: the
    reader only touches the payload if it observes the half-published
    flag (the rare-interleaving pattern)."""
    state = {"flag": False}

    def writer(th):
        yield th.acquire("m")
        state["flag"] = True
        yield th.release("m")
        yield th.write("payload")

    def reader(th):
        yield th.acquire("m")
        saw = state["flag"]
        yield th.release("m")
        if saw:
            yield th.read("payload")
        else:
            yield th.read("cold")

    return Program(writer, reader)


class TestMechanics:
    def test_pct_is_deterministic_per_seed(self):
        first = run_program(_flagged_program(), seed=11, policy="pct")
        second = run_program(_flagged_program(), seed=11, policy="pct")
        assert first == second

    def test_pct_traces_are_feasible(self):
        for seed in range(20):
            trace = run_program(_flagged_program(), seed=seed, policy="pct")
            assert check_feasible(trace) == []

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(_flagged_program(), policy="pct", pct_depth=0)

    def test_priorities_assigned_to_spawned_threads(self):
        def main(th):
            child = yield th.fork(worker)
            yield th.join(child)

        def worker(th):
            yield th.write("x")

        scheduler = Scheduler(Program(main), policy="pct", seed=4)
        scheduler.run()
        assert set(scheduler._priorities) == {0, 1}


class TestBugFinding:
    def test_pct_and_random_both_explore_the_race(self):
        """Across seeds, both policies hit racy and non-racy schedules of
        the flag program; PCT's per-run hit rate is at least comparable."""

        def hit_rate(policy, seeds=40):
            hits = 0
            for seed in range(seeds):
                trace = run_program(
                    _flagged_program(), seed=seed, policy=policy
                )
                tool = FastTrack().process(trace)
                hits += bool(tool.warnings)
            return hits / seeds

        random_rate = hit_rate("random")
        pct_rate = hit_rate("pct")
        assert 0.0 < random_rate < 1.0  # genuinely schedule-dependent
        assert pct_rate > 0.0
