"""Tests for the downstream checkers: Atomizer, Velodrome, SingleTrack."""

from repro.checkers import Atomizer, SingleTrack, Velodrome
from repro.trace import events as ev


def txn(tid, label, *ops):
    return [ev.enter(tid, label), *ops, ev.exit_(tid, label)]


class TestVelodrome:
    def test_serializable_interleaving_accepted(self):
        trace = (
            [ev.fork(0, 1)]
            + txn(0, "A", ev.acq(0, "m"), ev.wr(0, "x"), ev.rel(0, "m"))
            + txn(1, "B", ev.acq(1, "m"), ev.wr(1, "x"), ev.rel(1, "m"))
        )
        assert Velodrome().process(trace).violations == []

    def test_interleaved_conflicts_form_a_cycle(self):
        # A starts, B completes in the middle of A, and A then conflicts
        # with B's write: A -> B (A's read before B's write) and B -> A
        # (B's write before A's second access) — a classic atomicity bug.
        trace = [
            ev.fork(0, 1),
            ev.enter(0, "A"),
            ev.rd(0, "x"),
            ev.enter(1, "B"),
            ev.wr(1, "x"),
            ev.exit_(1, "B"),
            ev.rd(0, "x"),
            ev.exit_(0, "A"),
        ]
        checker = Velodrome().process(trace)
        # Both transactions participate in the cycle; each is reported once.
        assert {label for label, _reason in checker.violations} == {"A", "B"}

    def test_unary_operations_participate_in_cycles(self):
        # The same stale-read shape with B's write outside any transaction.
        trace = [
            ev.fork(0, 1),
            ev.enter(0, "A"),
            ev.rd(0, "x"),
            ev.wr(1, "x"),
            ev.rd(0, "x"),
            ev.exit_(0, "A"),
        ]
        assert Velodrome().process(trace).violation_count == 1

    def test_lock_edges_do_not_create_false_cycles(self):
        trace = (
            [ev.fork(0, 1)]
            + txn(0, "A", ev.acq(0, "m"), ev.rd(0, "x"), ev.rel(0, "m"))
            + txn(1, "B", ev.acq(1, "m"), ev.wr(1, "x"), ev.rel(1, "m"))
            + txn(0, "C", ev.acq(0, "m"), ev.rd(0, "x"), ev.rel(0, "m"))
        )
        assert Velodrome().process(trace).violations == []

    def test_one_report_per_label(self):
        trace = []
        trace.append(ev.fork(0, 1))
        for _round in range(3):
            trace += [
                ev.enter(0, "A"),
                ev.rd(0, "x"),
                ev.wr(1, "x"),
                ev.rd(0, "x"),
                ev.exit_(0, "A"),
            ]
        checker = Velodrome().process(trace)
        # Three rounds of the same violation collapse to one report per
        # participating label (A plus thread 1's unary work).
        labels = [label for label, _reason in checker.violations]
        assert labels.count("A") == 1
        assert len(labels) == len(set(labels))


class TestAtomizer:
    def test_reducible_transaction_accepted(self):
        # acquire* (accesses) release*: right-movers then left-movers.
        trace = [ev.fork(0, 1)] + txn(
            0,
            "A",
            ev.acq(0, "m"),
            ev.rd(0, "x"),
            ev.wr(0, "x"),
            ev.rel(0, "m"),
        )
        assert Atomizer().process(trace).violations == []

    def test_acquire_after_release_violates_reduction(self):
        trace = txn(
            0,
            "A",
            ev.acq(0, "m"),
            ev.rel(0, "m"),
            ev.acq(0, "n"),
            ev.rel(0, "n"),
        )
        checker = Atomizer().process(trace)
        assert checker.violation_count == 1
        assert checker.violations[0][0] == "A"

    def test_racy_access_after_commit_point_violates(self):
        # Make "x" racy for the embedded Eraser first, then access it after
        # a release inside a transaction.
        warmup = [ev.wr(0, "x"), ev.fork(0, 1), ev.wr(1, "x")]
        trace = warmup + txn(
            1,
            "B",
            ev.acq(1, "m"),
            ev.rel(1, "m"),
            ev.wr(1, "x"),  # non-mover in the left-mover suffix
        )
        assert Atomizer().process(trace).violation_count == 1

    def test_two_non_movers_violate(self):
        warmup = [
            ev.wr(0, "x"),
            ev.wr(0, "y"),
            ev.fork(0, 1),
            ev.wr(1, "x"),
            ev.wr(1, "y"),
        ]
        trace = warmup + txn(1, "B", ev.wr(1, "x"), ev.wr(1, "y"))
        assert Atomizer().process(trace).violation_count == 1

    def test_race_free_accesses_are_both_movers(self):
        trace = txn(0, "A", ev.rd(0, "x"), ev.wr(0, "y"), ev.rd(0, "z"))
        assert Atomizer().process(trace).violations == []

    def test_nested_blocks_fold_into_outer(self):
        trace = [
            ev.enter(0, "outer"),
            ev.enter(0, "inner"),
            ev.acq(0, "m"),
            ev.rel(0, "m"),
            ev.exit_(0, "inner"),
            ev.acq(0, "n"),  # right-mover after commit: violation on outer
            ev.rel(0, "n"),
            ev.exit_(0, "outer"),
        ]
        checker = Atomizer().process(trace)
        assert checker.violation_count == 1
        assert checker.violations[0][0] == "outer"


class TestSingleTrack:
    def test_fork_join_parallelism_is_deterministic(self):
        trace = [
            ev.wr(0, "x"),
            ev.fork(0, 1),
            ev.rd(1, "x"),
            ev.wr(1, "y"),
            ev.join(0, 1),
            ev.rd(0, "y"),
        ]
        assert SingleTrack().process(trace).violations == []

    def test_barrier_phases_are_deterministic(self):
        trace = [
            ev.fork(0, 1),
            ev.wr(0, "x"),
            ev.barrier_rel((0, 1)),
            ev.rd(1, "x"),
        ]
        assert SingleTrack().process(trace).violations == []

    def test_lock_mediated_conflict_is_nondeterministic(self):
        # Race-free, but the lock order is the scheduler's choice, so the
        # program's result depends on the schedule.
        trace = [
            ev.fork(0, 1),
            ev.acq(0, "m"),
            ev.wr(0, "x"),
            ev.rel(0, "m"),
            ev.acq(1, "m"),
            ev.wr(1, "x"),
            ev.rel(1, "m"),
        ]
        checker = SingleTrack().process(trace)
        assert checker.violation_count == 1

    def test_plain_race_is_also_flagged(self):
        trace = [ev.fork(0, 1), ev.wr(0, "x"), ev.wr(1, "x")]
        assert SingleTrack().process(trace).violation_count == 1

    def test_one_report_per_variable(self):
        trace = [ev.fork(0, 1)] + [ev.wr(0, "x"), ev.wr(1, "x")] * 5
        assert SingleTrack().process(trace).violation_count == 1
