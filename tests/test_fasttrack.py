"""Unit tests for the FastTrack algorithm (Figures 2, 3, 5)."""

from repro.core.epoch import EPOCH_BOTTOM, READ_SHARED, make_epoch
from repro.core.fasttrack import FastTrack
from repro.trace import events as ev


def ft(events, **kwargs):
    return FastTrack(**kwargs).process(list(events))


class TestWriteWriteRaces:
    def test_concurrent_writes_detected(self):
        tool = ft([ev.wr(0, "x"), ev.fork(0, 1), ev.wr(0, "x"), ev.wr(1, "x")])
        assert [w.kind for w in tool.warnings] == ["write-write"]

    def test_lock_ordered_writes_clean(self):
        tool = ft(
            [
                ev.acq(0, "m"),
                ev.wr(0, "x"),
                ev.rel(0, "m"),
                ev.acq(1, "m"),
                ev.wr(1, "x"),
                ev.rel(1, "m"),
            ]
        )
        assert tool.warnings == []


class TestWriteReadRaces:
    def test_unordered_read_after_write_detected(self):
        tool = ft([ev.fork(0, 1), ev.wr(0, "x"), ev.rd(1, "x")])
        assert [w.kind for w in tool.warnings] == ["write-read"]

    def test_fork_ordered_handoff_clean(self):
        tool = ft([ev.wr(0, "x"), ev.fork(0, 1), ev.rd(1, "x")])
        assert tool.warnings == []


class TestReadWriteRaces:
    def test_write_concurrent_with_epoch_read_detected(self):
        tool = ft([ev.fork(0, 1), ev.rd(1, "x"), ev.wr(0, "x")])
        assert [w.kind for w in tool.warnings] == ["read-write"]

    def test_write_concurrent_with_one_of_many_reads_detected(self):
        # Read-shared variable: the write races with thread 2's read even
        # though thread 1's read was joined.
        tool = ft(
            [
                ev.fork(0, 1),
                ev.fork(0, 2),
                ev.rd(1, "x"),
                ev.rd(2, "x"),
                ev.join(0, 1),
                ev.wr(0, "x"),
            ]
        )
        assert [w.kind for w in tool.warnings] == ["read-write"]

    def test_write_after_all_reads_joined_clean(self):
        tool = ft(
            [
                ev.fork(0, 1),
                ev.fork(0, 2),
                ev.rd(1, "x"),
                ev.rd(2, "x"),
                ev.join(0, 1),
                ev.join(0, 2),
                ev.wr(0, "x"),
            ]
        )
        assert tool.warnings == []


class TestAdaptiveRepresentation:
    def test_single_reader_stays_in_epoch_mode(self):
        tool = FastTrack()
        tool.process([ev.rd(0, "x"), ev.rd(0, "x")])
        state = tool.vars["x"]
        assert state.read_epoch != READ_SHARED
        assert state.read_vc is None

    def test_concurrent_readers_promote_to_vc(self):
        tool = FastTrack()
        tool.process([ev.fork(0, 1), ev.rd(0, "x"), ev.rd(1, "x")])
        state = tool.vars["x"]
        assert state.read_epoch == READ_SHARED
        assert state.read_vc is not None
        assert tool.warnings == []  # read-read is no race

    def test_ordered_second_reader_stays_in_epoch_mode(self):
        # Reads ordered by lock transfer: [FT READ EXCLUSIVE] applies.
        tool = FastTrack()
        tool.process(
            [
                ev.acq(0, "m"),
                ev.rd(0, "x"),
                ev.rel(0, "m"),
                ev.acq(1, "m"),
                ev.rd(1, "x"),
                ev.rel(1, "m"),
            ]
        )
        state = tool.vars["x"]
        assert state.read_epoch != READ_SHARED
        assert state.read_vc is None

    def test_dominating_write_demotes_to_epoch_mode(self):
        tool = FastTrack()
        tool.process(
            [
                ev.fork(0, 1),
                ev.rd(0, "x"),
                ev.rd(1, "x"),
                ev.join(0, 1),
                ev.wr(0, "x"),
            ]
        )
        state = tool.vars["x"]
        assert state.read_epoch == EPOCH_BOTTOM
        assert state.read_vc is None
        assert tool.warnings == []

    def test_demotion_can_be_disabled_for_ablation(self):
        tool = FastTrack(demote_on_shared_write=False)
        tool.process(
            [
                ev.fork(0, 1),
                ev.rd(0, "x"),
                ev.rd(1, "x"),
                ev.join(0, 1),
                ev.wr(0, "x"),
            ]
        )
        assert tool.vars["x"].read_epoch == READ_SHARED


class TestRuleCounting:
    def test_rule_breakdown_covers_all_accesses(self):
        trace = [
            ev.rd(0, "x"),  # read exclusive (first read)
            ev.rd(0, "x"),  # read same epoch (derived)
            ev.wr(0, "x"),  # write exclusive
            ev.wr(0, "x"),  # write same epoch (derived)
            ev.fork(0, 1),
            ev.rd(1, "x"),  # read exclusive (ordered after 0's read)
        ]
        tool = ft(trace)
        rules = tool.stats.rules
        assert rules["FT READ EXCLUSIVE"] == 2
        assert rules["FT WRITE EXCLUSIVE"] == 1
        reads = tool.stats.reads
        derived_same_epoch = reads - sum(
            rules.get(r, 0)
            for r in ("FT READ SHARED", "FT READ EXCLUSIVE", "FT READ SHARE")
        )
        assert derived_same_epoch == 1

    def test_shared_same_epoch_extension(self):
        trace = [
            ev.fork(0, 1),
            ev.rd(0, "x"),
            ev.rd(1, "x"),  # promotes to VC
            ev.rd(1, "x"),  # extension hit
        ]
        extended = ft(trace, shared_same_epoch=True)
        assert extended.stats.rules["FT READ SAME EPOCH SHARED"] == 1
        plain = ft(trace)
        assert plain.stats.rules["FT READ SHARED"] >= 1

    def test_fast_paths_can_be_disabled(self):
        trace = [ev.rd(0, "x"), ev.rd(0, "x"), ev.wr(0, "x"), ev.wr(0, "x")]
        tool = ft(trace, enable_fast_paths=False)
        # Every access takes a full rule, so the derived same-epoch count
        # is zero.
        rules = tool.stats.rules
        assert rules["FT READ EXCLUSIVE"] == 2
        assert rules["FT WRITE EXCLUSIVE"] == 2


class TestVolatiles:
    def test_volatile_publication_orders_data(self):
        tool = ft(
            [
                ev.fork(0, 1),
                ev.wr(0, "x"),
                ev.vol_wr(0, "v"),
                ev.vol_rd(1, "v"),
                ev.rd(1, "x"),
            ]
        )
        assert tool.warnings == []

    def test_without_volatile_the_same_trace_races(self):
        tool = ft([ev.fork(0, 1), ev.wr(0, "x"), ev.rd(1, "x")])
        assert tool.warning_count == 1


class TestBarriers:
    def test_barrier_release_orders_members(self):
        tool = ft(
            [
                ev.fork(0, 1),
                ev.wr(0, "x"),
                ev.barrier_rel((0, 1)),
                ev.rd(1, "x"),
            ]
        )
        assert tool.warnings == []

    def test_post_barrier_steps_mutually_unordered(self):
        tool = ft(
            [
                ev.fork(0, 1),
                ev.barrier_rel((0, 1)),
                ev.wr(0, "x"),
                ev.wr(1, "x"),
            ]
        )
        assert tool.warning_count == 1


class TestWarningDeduplication:
    def test_one_warning_per_variable(self):
        tool = ft(
            [
                ev.fork(0, 1),
                ev.wr(0, "x"),
                ev.wr(1, "x"),
                ev.wr(0, "x"),
                ev.wr(1, "x"),
            ]
        )
        assert tool.warning_count == 1
        assert tool.suppressed_warnings >= 1

    def test_one_warning_per_site(self):
        tool = ft(
            [
                ev.fork(0, 1),
                ev.wr(0, ("a", 0), "arr"),
                ev.wr(1, ("a", 0), "arr"),
                ev.wr(0, ("a", 1), "arr"),
                ev.wr(1, ("a", 1), "arr"),
            ]
        )
        assert tool.warning_count == 1

    def test_epoch_state_still_updated_after_race(self):
        # FastTrack guarantees the first race per variable; afterwards the
        # shadow state tracks the latest access so the analysis continues.
        tool = FastTrack()
        tool.process([ev.fork(0, 1), ev.wr(0, "x"), ev.wr(1, "x")])
        assert tool.vars["x"].write_epoch == make_epoch(1, 1)
