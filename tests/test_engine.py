"""Unit tests for the engine's partitioner, checkpoints, resume, and merge."""

import json
import os
import random

import pytest

from repro import engine
from repro.detectors import make_detector
from repro.detectors.classifier import SharingClassifier
from repro.engine.checkpoint import CheckpointError, Workdir
from repro.engine.merge import merge_stats, render_markdown
from repro.engine.partition import iter_shard, partition_events, shard_of
from repro.engine.worker import run_shard
from repro.trace import events as ev
from repro.trace.generators import GeneratorConfig, random_feasible_trace
from repro.trace.trace import Trace


def _racy_trace(seed=5, max_events=600):
    return random_feasible_trace(
        random.Random(seed),
        GeneratorConfig(
            max_events=max_events,
            max_threads=5,
            n_vars=14,
            n_locks=3,
            discipline=0.35,
            p_fork=0.1,
            p_volatile=0.06,
        ),
    )


class TestPartition:
    def test_shard_of_is_deterministic_and_in_range(self):
        targets = ["x", "y0", 42, ("grid", 2, 7), ("acc", "w")]
        for nshards in (1, 2, 4, 7):
            for target in targets:
                shard = shard_of(target, nshards)
                assert 0 <= shard < nshards
                assert shard == shard_of(target, nshards)

    def test_sync_broadcast_and_access_routing(self, tmp_path):
        trace = _racy_trace()
        nshards = 4
        wd = Workdir(str(tmp_path))
        meta = partition_events(iter(trace.events), wd, nshards)
        assert meta["events"] == len(trace)

        access_seen = {}
        for shard in range(nshards):
            previous = -1
            sync_indices = []
            for index, event in iter_shard(wd, shard):
                assert index > previous  # per-shard order preserved
                previous = index
                assert trace.events[index] == event
                if event.kind in (ev.READ, ev.WRITE):
                    # Routed: exactly one shard, the hashed one.
                    assert shard == shard_of(event.target, nshards)
                    assert index not in access_seen
                    access_seen[index] = shard
                else:
                    sync_indices.append(index)
            # Broadcast: every shard sees the complete sync order.
            assert sync_indices == [
                i
                for i, e in enumerate(trace.events)
                if e.kind not in (ev.READ, ev.WRITE)
            ]
        assert len(access_seen) == meta["reads"] + meta["writes"]

    def test_small_batches_flush_correctly(self, tmp_path):
        trace = _racy_trace(max_events=200)
        wd = Workdir(str(tmp_path))
        partition_events(iter(trace.events), wd, 2, batch_events=7)
        recovered = sorted(
            [pair for s in range(2) for pair in iter_shard(wd, s)],
            key=lambda pair: pair[0],
        )
        accesses = [p for p in recovered if p[1].kind in (ev.READ, ev.WRITE)]
        assert [e for _, e in accesses] == [
            e for e in trace.events if e.kind in (ev.READ, ev.WRITE)
        ]

    def test_rejects_zero_shards(self, tmp_path):
        with pytest.raises(ValueError):
            partition_events(iter([]), Workdir(str(tmp_path)), 0)


class TestCheckpoint:
    def test_meta_round_trip_and_version_gate(self, tmp_path):
        wd = Workdir(str(tmp_path))
        assert wd.read_meta() is None
        wd.write_meta({"nshards": 3, "events": 10})
        meta = wd.read_meta()
        assert meta["nshards"] == 3
        # A future incompatible format is treated as "no partition here".
        with open(wd.meta_path, "w", encoding="utf-8") as stream:
            json.dump({"nshards": 3, "format_version": 999}, stream)
        assert wd.read_meta() is None

    def test_validate_meta_rejects_geometry_mismatch(self, tmp_path):
        wd = Workdir(str(tmp_path))
        partition_events(iter(_racy_trace(max_events=50).events), wd, 2)
        meta = wd.read_meta()
        with pytest.raises(CheckpointError):
            wd.validate_meta(meta, 8)
        wd.validate_meta(meta, 2)  # matching geometry passes
        wd.validate_meta(meta, None)  # unspecified inherits the partition's

    def test_validate_meta_rejects_missing_shard_file(self, tmp_path):
        wd = Workdir(str(tmp_path))
        partition_events(iter(_racy_trace(max_events=50).events), wd, 2)
        os.unlink(wd.shard_path(1))
        with pytest.raises(CheckpointError):
            wd.validate_meta(wd.read_meta(), None)

    def test_results_are_per_tool(self, tmp_path):
        wd = Workdir(str(tmp_path))
        wd.write_result("FastTrack", 0, {"shard": 0})
        wd.write_result("DJIT+", 1, {"shard": 1})
        assert wd.completed_shards("FastTrack", 4) == [0]
        assert wd.completed_shards("DJIT+", 4) == [1]
        wd.clear_results("FastTrack", 4)
        assert wd.completed_shards("FastTrack", 4) == []
        assert wd.completed_shards("DJIT+", 4) == [1]

    def test_clear_results_removes_out_of_range_checkpoints(self, tmp_path):
        """Re-partitioning into fewer shards must not leave high-index
        checkpoints behind for a later resume to trust."""
        wd = Workdir(str(tmp_path))
        for shard in range(6):
            wd.write_result("FastTrack", shard, {"shard": shard})
        wd.clear_results("FastTrack", 2)
        assert wd.result_files() == []

    def test_ensure_resumable_layout_rejects_orphaned_results(self, tmp_path):
        wd = Workdir(str(tmp_path))
        wd.write_result("FastTrack", 0, {"shard": 0})
        with pytest.raises(CheckpointError, match="no valid partition"):
            wd.ensure_resumable_layout(None)
        wd.ensure_resumable_layout({"nshards": 2})  # meta present: fine


class TestResume:
    def test_resume_skips_completed_shards(self, tmp_path):
        """Complete two shards, then *corrupt their shard files*: a resumed
        run can only succeed by trusting the checkpoints instead of
        re-analyzing — which is exactly the contract."""
        trace = _racy_trace()
        single = make_detector("FastTrack").process(trace)
        root = str(tmp_path)
        wd = Workdir(root)
        partition_events(iter(trace.events), wd, 4)
        run_shard(root, 0, "FastTrack")
        run_shard(root, 1, "FastTrack")
        for shard in (0, 1):
            with open(wd.shard_path(shard), "wb") as stream:
                stream.write(b"garbage: re-analysis would crash here")
        report = engine.check_events(
            trace.events,
            tool="FastTrack",
            workdir=root,
            resume=True,
        )
        assert report.warnings == single.warnings
        assert report.suppressed_warnings == single.suppressed_warnings

    def test_fresh_run_clears_stale_results(self, tmp_path):
        trace = _racy_trace(max_events=150)
        root = str(tmp_path)
        wd = Workdir(root)
        wd.write_result("FastTrack", 0, {"shard": 0, "tool": "FastTrack",
                                         "warnings": [], "suppressed": 0,
                                         "stats": {}, "events": 0})
        single = make_detector("FastTrack").process(trace)
        report = engine.check_events(
            trace.events, tool="FastTrack", nshards=2, workdir=root
        )
        assert report.warnings == single.warnings

    def test_resume_rejects_different_shard_count(self, tmp_path):
        """Satellite guard: ``--resume DIR --shards M`` with an M that
        differs from the partition on disk must fail fast, not silently
        mix layouts."""
        trace = _racy_trace(max_events=100)
        root = str(tmp_path)
        engine.check_events(trace.events, tool="FastTrack", nshards=2,
                            workdir=root, resume=True)
        with pytest.raises(CheckpointError):
            engine.check_events(trace.events, tool="FastTrack", nshards=5,
                                workdir=root, resume=True)

    def test_resume_with_results_but_corrupt_meta_fails_fast(self, tmp_path):
        trace = _racy_trace(max_events=100)
        root = str(tmp_path)
        wd = Workdir(root)
        engine.check_events(trace.events, tool="FastTrack", nshards=2,
                            workdir=root, resume=True)
        with open(wd.meta_path, "w", encoding="utf-8") as stream:
            stream.write("{not json")
        with pytest.raises(CheckpointError, match="mix shard layouts"):
            engine.check_events(trace.events, tool="FastTrack", nshards=2,
                                workdir=root, resume=True)

    def test_resume_on_empty_dir_partitions_first(self, tmp_path):
        trace = _racy_trace(max_events=200)
        single = make_detector("FastTrack").process(trace)
        report = engine.check_events(
            trace.events,
            tool="FastTrack",
            nshards=3,
            workdir=str(tmp_path),
            resume=True,
        )
        assert report.warnings == single.warnings
        assert Workdir(str(tmp_path)).read_meta()["nshards"] == 3


class TestMerge:
    def test_merged_stats_event_mix_is_trace_accurate(self):
        trace = _racy_trace()
        single = make_detector("DJIT+").process(trace)
        report = engine.check_events(trace.events, tool="DJIT+", nshards=4)
        assert report.stats.events == single.stats.events == len(trace)
        assert report.stats.reads == single.stats.reads
        assert report.stats.writes == single.stats.writes
        assert report.stats.syncs == single.stats.syncs
        assert report.stats.boundaries == single.stats.boundaries
        # Work counters are summed: sync-side VC work happens once per
        # shard, so the merged total is at least the single-threaded one.
        assert report.stats.vc_ops >= single.stats.vc_ops

    def test_merge_stats_empty(self):
        assert merge_stats([]).events == 0

    def test_classifier_counts_merge_to_single_threaded_fractions(self):
        trace = _racy_trace()
        classifier = SharingClassifier()
        classifier.process(trace)
        expected = classifier.fractions()
        report = engine.check_events(
            trace.events, tool="FastTrack", nshards=4, classify=True
        )
        fractions = report.classifier_fractions()
        assert fractions is not None
        for cls, fraction in expected.items():
            assert fractions[cls] == pytest.approx(fraction)
        assert sum(report.classifier_variable_counts.values()) == len(
            classifier.profiles
        )

    def test_render_markdown_mentions_warnings_and_shards(self):
        trace = _racy_trace()
        report = engine.check_events(trace.events, tool="FastTrack", nshards=2)
        text = render_markdown(report)
        assert "Engine report — FastTrack × 2 shard(s)" in text
        assert "## Shard balance" in text
        if report.warning_count:
            assert str(report.warnings[0].var) in text


class TestStreamingSource:
    def test_check_trace_file_streams_text_and_jsonl(self, tmp_path):
        from repro.trace import serialize

        trace = _racy_trace(max_events=300)
        single = make_detector("FastTrack").process(trace)
        text_path = tmp_path / "t.trace"
        text_path.write_text(serialize.dumps(trace))
        jsonl_path = tmp_path / "t.jsonl"
        jsonl_path.write_text(serialize.dumps_jsonl(trace))
        for path, fmt in ((text_path, "text"), (jsonl_path, "jsonl")):
            report = engine.check_trace_file(
                str(path), tool="FastTrack", fmt=fmt, nshards=3
            )
            assert report.warnings == single.warnings

    def test_barrier_and_tuple_targets_round_trip_through_shards(self):
        trace = Trace(
            [
                ev.wr(0, ("grid", 1, 2), site="g.wr"),
                ev.fork(0, 1),
                ev.barrier_rel((0, 1)),
                ev.wr(1, ("grid", 1, 2), site="g.wr2"),
                ev.rd(0, ("grid", 1, 2)),
            ]
        )
        single = make_detector("FastTrack", track_sites=True).process(trace)
        report = engine.check_events(
            trace.events,
            tool="FastTrack",
            nshards=2,
            tool_kwargs={"track_sites": True},
        )
        assert report.warnings == single.warnings
        if report.warnings:
            assert isinstance(report.warnings[0].var, tuple)
