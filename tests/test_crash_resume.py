"""Crash/drain semantics: SIGTERM checkpoints in-flight work, and a
restarted run (or daemon) finishes without re-analyzing or diverging.

Three layers:

* unit — a pool worker with the drain flag set checkpoints its shard
  and exits with :data:`DRAIN_EXIT_CODE`; the sequential engine loop
  raises :class:`DrainRequested` at a shard boundary.
* ``repro check`` — a subprocess killed mid-run exits 3 ("drained"),
  and re-running with ``--resume`` yields byte-identical ``--json``
  output to an uninterrupted run.
* ``repro serve`` — a daemon killed mid-job restarts, completes the
  job without rewriting the shards it already checkpointed, and serves
  the same bytes ``repro check --json`` prints.
"""

import json
import multiprocessing
import os
import random
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import engine
from repro.detectors import make_detector
from repro.engine.checkpoint import Workdir
from repro.engine.partition import partition_events
from repro.engine.worker import DRAIN_EXIT_CODE, request_drain, run_shard
from repro.service.client import Client
from repro.trace import serialize
from repro.trace.generators import GeneratorConfig, random_feasible_trace

SRC = str(Path(__file__).parents[1] / "src")
NSHARDS = 6


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _repro(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=_subprocess_env(), capture_output=True, text=True, **kwargs,
    )


def _small_trace(seed=11, max_events=400):
    return random_feasible_trace(
        random.Random(seed),
        GeneratorConfig(max_events=max_events, max_threads=4, n_vars=10,
                        n_locks=3, discipline=0.35),
    )


@pytest.fixture(scope="module")
def big_trace_path(tmp_path_factory):
    """A trace large enough that a run spans several seconds across
    shards, so a SIGTERM lands mid-analysis."""
    trace = random_feasible_trace(
        random.Random(99),
        GeneratorConfig(max_events=400_000, max_threads=6, n_vars=60,
                        n_locks=5, discipline=0.4, p_fork=0.02,
                        p_volatile=0.03),
    )
    path = tmp_path_factory.mktemp("crash") / "big.trace"
    path.write_text(serialize.dumps(trace))
    return str(path)


# -- unit layer ---------------------------------------------------------------


def _drained_worker(root):
    request_drain()  # as if SIGTERM had already arrived
    run_shard(root, 0, "FastTrack")
    os._exit(7)  # unreachable: run_shard must exit DRAIN_EXIT_CODE first


def test_pool_worker_checkpoints_shard_then_exits_143(tmp_path):
    trace = _small_trace()
    root = str(tmp_path)
    wd = Workdir(root)
    partition_events(iter(trace.events), wd, 2)
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    process = context.Process(target=_drained_worker, args=(root,))
    process.start()
    process.join(timeout=60)
    assert process.exitcode == DRAIN_EXIT_CODE
    # The shard finished and checkpointed before the worker exited.
    assert wd.completed_shards("FastTrack", 2) == [0]


def test_sequential_loop_drains_at_shard_boundary(tmp_path):
    trace = _small_trace()
    root = str(tmp_path)
    try:
        engine.reset_drain()
        engine.request_drain()
        with pytest.raises(engine.DrainRequested):
            engine.check_events(trace.events, tool="FastTrack",
                                nshards=3, workdir=root, resume=True)
    finally:
        engine.reset_drain()
    # The partition survived; a resumed run completes and agrees with
    # the single-threaded detector.
    report = engine.check_events(trace.events, tool="FastTrack",
                                 nshards=3, workdir=root, resume=True)
    single = make_detector("FastTrack").process(trace)
    assert report.warnings == single.warnings


# -- repro check layer --------------------------------------------------------


def _wait_for_checkpoints(results_dir, minimum, process, timeout=60.0):
    """Poll until ``minimum`` shard checkpoints exist (or the process
    exits first); returns how many were seen."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            count = len(os.listdir(results_dir))
        except OSError:
            count = 0
        if count >= minimum or process.poll() is not None:
            return count
        time.sleep(0.02)
    return 0


def test_check_sigterm_then_resume_is_bit_identical(big_trace_path, tmp_path):
    uninterrupted = _repro(
        ["check", big_trace_path, "--shards", str(NSHARDS), "--json"]
    )
    assert uninterrupted.returncode in (0, 1), uninterrupted.stderr

    workdir = str(tmp_path / "resume")
    argv = [sys.executable, "-m", "repro", "check", big_trace_path,
            "--shards", str(NSHARDS), "--resume", workdir, "--json"]
    process = subprocess.Popen(
        argv, env=_subprocess_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    results_dir = os.path.join(workdir, "results", "FastTrack")
    _wait_for_checkpoints(results_dir, 1, process)
    process.send_signal(signal.SIGTERM)
    _, stderr = process.communicate(timeout=120)
    finished = sorted(os.listdir(results_dir))
    if process.returncode == 3:
        # Drained mid-run: progress was reported and checkpointed.
        assert "drained:" in stderr
        assert 0 < len(finished) <= NSHARDS
    else:
        # The run won the race and completed; resume is then a no-op.
        assert process.returncode in (0, 1), stderr

    resumed = subprocess.run(
        argv, env=_subprocess_env(), capture_output=True, text=True,
    )
    assert resumed.returncode in (0, 1), resumed.stderr
    assert resumed.stdout == uninterrupted.stdout
    # The resumed run reused every checkpoint the killed run left.
    assert sorted(os.listdir(results_dir))[: len(finished)] == finished


# -- repro serve layer --------------------------------------------------------


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_daemon(store, port):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--store", store, "--workers", "1"],
        env=_subprocess_env(), stderr=subprocess.PIPE, text=True,
    )
    client = Client(port=port, timeout=10.0)
    deadline = time.monotonic() + 30.0
    while True:
        try:
            client.healthz()
            return process, client
        except OSError:
            if process.poll() is not None or time.monotonic() > deadline:
                process.kill()
                raise RuntimeError(
                    f"daemon did not come up: {process.stderr.read()}"
                )
            time.sleep(0.1)


def test_daemon_sigterm_checkpoints_and_restart_completes(
    big_trace_path, tmp_path
):
    store = str(tmp_path / "store")
    first, client = _start_daemon(store, _free_port())
    try:
        job = client.submit(path=big_trace_path, shards=NSHARDS)
        # The daemon analyzes inside a resident partition keyed by the
        # trace digest; the key lands on the job record when the runner
        # picks the job up.
        job_json = os.path.join(store, "jobs", job["id"], "job.json")
        deadline = time.monotonic() + 60.0
        partition = None
        while partition is None:
            try:
                with open(job_json) as stream:
                    partition = json.load(stream).get("partition")
            except (OSError, json.JSONDecodeError):
                pass
            if partition is None:
                assert first.poll() is None, "daemon died before analysis"
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.05)
        results_dir = os.path.join(
            store, "partitions", partition, "results", "FastTrack"
        )
        _wait_for_checkpoints(results_dir, 2, first)
    finally:
        first.send_signal(signal.SIGTERM)
    assert first.wait(timeout=120) == 0  # graceful drain, not a crash

    checkpointed = {
        name: os.stat(os.path.join(results_dir, name)).st_mtime_ns
        for name in os.listdir(results_dir)
    }
    with open(os.path.join(store, "jobs", job["id"], "job.json")) as stream:
        state = json.load(stream)["state"]
    assert state in ("queued", "done")  # requeued for restart, not lost

    second, client = _start_daemon(store, _free_port())
    try:
        client.wait(job["id"], timeout=300.0, poll=0.1)
        served = client.result_bytes(job["id"]).decode("utf-8")
    finally:
        second.send_signal(signal.SIGTERM)
        second.wait(timeout=60)
    # Shards the first daemon checkpointed were not re-analyzed.
    for name, mtime in checkpointed.items():
        assert os.stat(os.path.join(results_dir, name)).st_mtime_ns == mtime
    expected = _repro(
        ["check", big_trace_path, "--shards", str(NSHARDS), "--json"]
    )
    assert served == expected.stdout
