"""Unit tests for the Eraser LockSet state machine [33] + barrier extension."""

from repro.detectors.eraser import (
    EXCLUSIVE,
    SHARED,
    SHARED_MODIFIED,
    VIRGIN,
    Eraser,
)
from repro.trace import events as ev


def run(events, **kwargs):
    return Eraser(**kwargs).process(list(events))


class TestStateMachine:
    def test_virgin_to_exclusive(self):
        tool = Eraser()
        tool.process([ev.wr(0, "x")])
        assert tool.vars["x"].state == EXCLUSIVE
        assert tool.vars["x"].owner == 0

    def test_exclusive_tolerates_owner_accesses(self):
        tool = run([ev.wr(0, "x"), ev.rd(0, "x"), ev.wr(0, "x")])
        assert tool.warnings == []
        assert tool.vars["x"].state == EXCLUSIVE

    def test_second_thread_read_moves_to_shared(self):
        tool = Eraser()
        tool.process([ev.wr(0, "x"), ev.rd(1, "x")])
        assert tool.vars["x"].state == SHARED
        assert tool.warnings == []  # the unsound read-share forgiveness

    def test_second_thread_write_moves_to_shared_modified(self):
        tool = Eraser()
        tool.process([ev.wr(0, "x"), ev.wr(1, "x")])
        assert tool.vars["x"].state == SHARED_MODIFIED
        assert tool.warning_count == 1

    def test_consistent_lock_keeps_lockset_nonempty(self):
        tool = run(
            [
                ev.acq(0, "m"),
                ev.wr(0, "x"),
                ev.rel(0, "m"),
                ev.acq(1, "m"),
                ev.wr(1, "x"),
                ev.rel(1, "m"),
            ]
        )
        assert tool.warnings == []
        assert tool.vars["x"].lockset == frozenset({"m"})

    def test_lockset_refinement_to_empty_reports(self):
        # The candidate set is initialized at the *second* thread's access
        # ({n} here), so a third access under a disjoint lock is what
        # empties it — faithful to the original algorithm.
        partial = [
            ev.acq(0, "m"),
            ev.wr(0, "x"),
            ev.rel(0, "m"),
            ev.acq(1, "n"),
            ev.wr(1, "x"),
            ev.rel(1, "n"),
        ]
        assert run(partial).warnings == []
        full = partial + [ev.acq(0, "m"), ev.wr(0, "x"), ev.rel(0, "m")]
        assert [w.kind for w in run(full).warnings] == ["lockset-empty"]

    def test_write_in_shared_state_checks_lockset(self):
        tool = run([ev.wr(0, "x"), ev.rd(1, "x"), ev.wr(2, "x")])
        assert tool.warning_count == 1
        assert tool.vars["x"].state == SHARED_MODIFIED


class TestUnsoundness:
    def test_fork_join_false_alarm(self):
        # Perfectly ordered handoff, but Eraser has no happens-before.
        tool = run([ev.wr(0, "x"), ev.fork(0, 1), ev.wr(1, "x")])
        assert tool.warning_count == 1

    def test_write_then_foreign_reads_missed(self):
        # A real write-read race Eraser forgives (the hedc pattern).
        tool = run([ev.fork(0, 1), ev.wr(1, "x"), ev.rd(0, "x")])
        assert tool.warnings == []


class TestBarrierExtension:
    def test_barrier_reset_forgives_phased_sharing(self):
        trace = [
            ev.wr(0, "x"),
            ev.barrier_rel((0, 1)),
            ev.wr(1, "x"),
        ]
        assert run(trace).warnings == []
        assert run(trace, handle_barriers=False).warning_count == 1

    def test_reset_restores_virgin(self):
        tool = Eraser()
        tool.process([ev.wr(0, "x"), ev.barrier_rel((0,))])
        assert tool.vars["x"].state == VIRGIN


class TestBookkeeping:
    def test_held_locks_tracked_per_thread(self):
        tool = Eraser()
        tool.process([ev.acq(0, "m"), ev.acq(1, "n")])
        assert tool.held[0] == {"m"}
        assert tool.held[1] == {"n"}
        tool.process([ev.rel(0, "m")])
        assert tool.held[0] == set()

    def test_shadow_memory_accounts_locksets(self):
        tool = run([ev.acq(0, "m"), ev.wr(0, "x"), ev.rel(0, "m")])
        assert tool.shadow_memory_words() > 0
