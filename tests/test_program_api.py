"""Unit tests for the Program / ThreadHandle / Barrier construction API."""

import pytest

from repro.runtime.program import Barrier, Program, ThreadHandle
from repro.runtime.scheduler import run_program
from repro.trace import events as ev


class TestProgram:
    def test_positional_bodies(self):
        def a(th):
            yield th.write("x")

        def b(th):
            yield th.read("y")

        program = Program(a, b, name="pair")
        assert program.name == "pair"
        trace = run_program(program, policy="roundrobin")
        assert trace.threads() == {0, 1}

    def test_with_args(self):
        def body(th, label, count):
            for _ in range(count):
                yield th.write(label)

        program = Program.with_args(
            (body, ("left", 2)), (body, ("right", 3)), name="argued"
        )
        trace = run_program(program)
        assert sum(1 for e in trace if e.target == "left") == 2
        assert sum(1 for e in trace if e.target == "right") == 3

    def test_empty_program_yields_empty_trace(self):
        assert len(run_program(Program())) == 0


class TestThreadHandle:
    def test_action_constructors_carry_payload(self):
        th = ThreadHandle(3)
        assert th.read("x", site="s").var == "x"
        assert th.read("x", site="s").site == "s"
        assert th.write("y").var == "y"
        assert th.acquire("m").lock == "m"
        assert th.release("m").lock == "m"
        assert th.join(7).tid == 7
        assert th.wait("m").lock == "m"
        assert th.notify_all("m").lock == "m"
        assert th.volatile_read("v").var == "v"
        assert th.volatile_write("v").var == "v"
        assert th.enter("t").label == "t"
        assert th.exit("t").label == "t"
        fork_action = th.fork(lambda handle: iter(()), 1, 2)
        assert fork_action.args == (1, 2)

    def test_critical_sugar_shape(self):
        th = ThreadHandle(0)
        actions = list(th.critical("m", th.read("x"), th.write("x")))
        assert len(actions) == 4  # acq, rd, wr, rel

    def test_atomic_sugar_shape(self):
        th = ThreadHandle(0)
        actions = list(th.atomic("t", th.read("x")))
        assert len(actions) == 3  # enter, rd, exit


class TestBarrier:
    def test_named_and_anonymous(self):
        named = Barrier(2, name="phase")
        assert named.name == "phase"
        anonymous = Barrier(3)
        assert anonymous.name.startswith("barrier")
        assert "parties=3" in repr(anonymous)

    def test_barriers_are_not_shared_across_runs_accidentally(self):
        # A fresh barrier per program run (factory style) trips cleanly.
        def build():
            barrier = Barrier(2)

            def main(th):
                child = yield th.fork(worker)
                yield th.barrier_await(barrier)
                yield th.join(child)

            def worker(th):
                yield th.barrier_await(barrier)

            return Program(main)

        for seed in range(3):
            trace = run_program(build(), seed=seed)
            assert (
                sum(1 for e in trace if e.kind == ev.BARRIER_RELEASE) == 1
            )
