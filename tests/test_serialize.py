"""Round-trip and error tests for the trace serialization formats."""

import io

import pytest
from hypothesis import given, settings

from repro.trace import events as ev
from repro.trace.generators import traces
from repro.trace.serialize import (
    TraceParseError,
    dump,
    dumps,
    dumps_jsonl,
    format_event,
    format_target,
    iter_load,
    iter_load_jsonl,
    iter_parse,
    iter_parse_jsonl,
    load,
    load_jsonl,
    loads,
    loads_jsonl,
    parse_event,
    parse_target,
)
from repro.trace.trace import Trace

SAMPLE = Trace(
    [
        ev.wr(0, "x"),
        ev.fork(0, 1),
        ev.rd(1, ("grid", 2, 7), site="sor.rd_left"),
        ev.acq(1, "m"),
        ev.rel(1, ("wlock", 3)),
        ev.vol_wr(0, "flag"),
        ev.vol_rd(1, "flag"),
        ev.barrier_rel((0, 1)),
        ev.enter(0, "sweep"),
        ev.exit_(0, "sweep"),
        ev.join(0, 1),
    ]
)


class TestTargets:
    def test_format_scalars_and_tuples(self):
        assert format_target("x") == "x"
        assert format_target(7) == "7"
        assert format_target(("grid", 2, 7)) == "grid[2][7]"
        assert format_target(("acc", "w")) == "acc[w]"

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("x", "x"),
            ("42", 42),
            ("grid[2][7]", ("grid", 2, 7)),
            ("acc[w]", ("acc", "w")),
            ("a[-1]", ("a", -1)),
        ],
    )
    def test_parse_targets(self, text, expected):
        assert parse_target(text) == expected

    def test_bad_targets_rejected(self):
        with pytest.raises(TraceParseError):
            parse_target("[3]")


class TestTextFormat:
    def test_format_matches_paper_syntax(self):
        assert format_event(ev.wr(0, "x")) == "wr(0, x)"
        assert format_event(ev.fork(0, 1)) == "fork(0, 1)"
        assert format_event(ev.barrier_rel((1, 0))) == "barrier_rel(0, 1)"
        assert (
            format_event(ev.rd(1, ("a", 3), site="s"))
            == "rd(1, a[3]) @ s"
        )

    def test_round_trip(self):
        assert loads(dumps(SAMPLE)) == SAMPLE

    def test_sites_survive_round_trip(self):
        trip = loads(dumps(SAMPLE))
        assert trip[2].site == "sor.rd_left"

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nwr(0, x)\n  # indented comment\nrd(1, x)\n"
        assert loads(text) == Trace([ev.wr(0, "x"), ev.rd(1, "x")])

    def test_streams(self):
        buffer = io.StringIO()
        dump(SAMPLE, buffer)
        buffer.seek(0)
        assert load(buffer) == SAMPLE

    @pytest.mark.parametrize(
        "line",
        [
            "frobnicate(0, x)",
            "wr(zero, x)",
            "wr(0)",
            "rd 0 x",
            "fork(0, child)",
            "barrier_rel(a, b)",
        ],
    )
    def test_bad_lines_rejected(self, line):
        with pytest.raises(TraceParseError):
            parse_event(line)

    @settings(max_examples=50, deadline=None)
    @given(traces())
    def test_generated_traces_round_trip(self, trace):
        assert loads(dumps(trace)) == trace


class TestStreaming:
    """The engine's streaming entry points: iter_parse / iter_load."""

    def test_iter_parse_is_lazy(self):
        lines = iter(dumps(SAMPLE).splitlines())
        stream = iter_parse(lines)
        first = next(stream)
        assert first == SAMPLE[0]
        # The source has not been consumed past what was requested (+1 for
        # generator read-ahead is not a thing here: one line per event).
        assert list(stream) == list(SAMPLE)[1:]

    def test_iter_parse_skips_comments_and_blanks(self):
        text = "# header\n\nwr(0, x)\n  # indented\nrd(1, x)\n"
        assert list(iter_parse(text.splitlines())) == [
            ev.wr(0, "x"),
            ev.rd(1, "x"),
        ]

    def test_iter_load_from_open_stream(self):
        buffer = io.StringIO(dumps(SAMPLE))
        assert Trace(iter_load(buffer)) == SAMPLE

    def test_iter_load_jsonl_from_open_stream(self):
        buffer = io.StringIO(dumps_jsonl(SAMPLE))
        assert Trace(iter_load_jsonl(buffer)) == SAMPLE
        assert load_jsonl(io.StringIO(dumps_jsonl(SAMPLE))) == SAMPLE


class TestParseErrorLocation:
    """Satellite bugfix: file-level parse errors carry line number + text."""

    def test_loads_reports_line_number_and_text(self):
        text = "# comment\nwr(0, x)\n\nfrobnicate(1, y)\n"
        with pytest.raises(TraceParseError) as excinfo:
            loads(text)
        error = excinfo.value
        assert error.lineno == 4
        assert error.line == "frobnicate(1, y)"
        assert "line 4" in str(error)
        assert "frobnicate" in str(error)

    def test_load_stream_reports_line_number(self):
        with pytest.raises(TraceParseError) as excinfo:
            load(io.StringIO("wr(0, x)\nwr(zero, x)\n"))
        assert excinfo.value.lineno == 2

    def test_jsonl_invalid_json_reports_line_number(self):
        text = '{"op": "wr", "tid": 0, "target": "x"}\n{not json\n'
        with pytest.raises(TraceParseError) as excinfo:
            loads_jsonl(text)
        assert excinfo.value.lineno == 2
        assert "invalid JSON" in str(excinfo.value)

    def test_jsonl_unknown_op_reports_line_number(self):
        text = '{"op": "wr", "tid": 0, "target": "x"}\n' * 2
        text += '{"op": "nope", "tid": 0, "target": "x"}\n'
        with pytest.raises(TraceParseError) as excinfo:
            list(iter_parse_jsonl(text.splitlines()))
        assert excinfo.value.lineno == 3

    def test_token_level_errors_have_no_location(self):
        with pytest.raises(TraceParseError) as excinfo:
            parse_event("frobnicate(0, x)")
        assert excinfo.value.lineno is None
        assert excinfo.value.line is None


class TestJsonl:
    def test_round_trip(self):
        trip = loads_jsonl(dumps_jsonl(SAMPLE))
        assert trip == SAMPLE
        assert trip[2].site == "sor.rd_left"
        assert trip[2].target == ("grid", 2, 7)

    @settings(max_examples=50, deadline=None)
    @given(traces())
    def test_generated_traces_round_trip(self, trace):
        assert loads_jsonl(dumps_jsonl(trace)) == trace

    def test_unknown_op_rejected(self):
        with pytest.raises(TraceParseError):
            loads_jsonl('{"op": "nope", "tid": 0, "target": "x"}')

    def test_partially_written_trailing_line_is_tolerated(self):
        """Live-tail regression: a producer cut off mid-record leaves an
        unterminated, non-JSON final line — parsing must stop cleanly
        after the complete events instead of raising."""
        complete = dumps_jsonl(SAMPLE)
        torn = '{"op": "wr", "tid": 3, "tar'
        events = list(iter_parse_jsonl((complete + torn).splitlines(keepends=True)))
        assert len(events) == len(SAMPLE)
        assert loads_jsonl(complete + torn) == SAMPLE

    def test_terminated_garbage_final_line_still_raises(self):
        # Only a *missing newline* marks a line as in-flight; committed
        # garbage is corruption wherever it appears, end of file included.
        text = dumps_jsonl(SAMPLE) + '{"op": "wr", "tid": 3, "tar\n'
        with pytest.raises(TraceParseError) as excinfo:
            loads_jsonl(text)
        assert excinfo.value.lineno == len(SAMPLE) + 1

    def test_tolerance_does_not_delay_preceding_events(self):
        # The flag must come from the line itself, not lookahead: event N
        # has to parse before line N+1 exists (the live-monitor case).
        lines = dumps_jsonl(SAMPLE).splitlines(keepends=True)

        def one_then_hang():
            yield lines[0]
            raise RuntimeError("asked for a second line too early")

        stream = iter_parse_jsonl(one_then_hang())
        assert next(stream) == SAMPLE[0]
