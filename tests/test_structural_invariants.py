"""Structural invariants that hold after any analysis run."""

import networkx as nx
from hypothesis import given, settings

from repro.checkers import Velodrome
from repro.core.adaptive import AdaptiveFastTrack
from repro.detectors import Goldilocks
from repro.bench.workload import WORKLOADS
from repro.trace import events as ev
from repro.trace.generators import GeneratorConfig, traces
from repro.trace.happens_before import racy_variables


@settings(max_examples=50, deadline=None)
@given(traces(config=GeneratorConfig(max_events=70, p_atomic=0.4)))
def test_velodrome_graph_stays_acyclic(trace):
    """Velodrome refuses to materialize cycle-closing edges, so its
    transactional graph is a DAG at all times."""
    checker = Velodrome().process(list(trace))
    graph = nx.DiGraph()
    seen = {}
    stack = list(checker.current.values())
    while stack:
        node = stack.pop()
        if node.nid in seen:
            continue
        seen[node.nid] = node
        for succ in node.succs:
            stack.append(succ)
    # Walk from every node ever linked (roots may have been superseded).
    for source in list(seen.values()):
        for succ in source.succs:
            graph.add_edge(source.nid, succ.nid)
    assert nx.is_directed_acyclic_graph(graph)


@settings(max_examples=40, deadline=None)
@given(traces(config=GeneratorConfig(max_events=80, p_barrier=0.08)))
def test_goldilocks_lazy_barriers(trace):
    """Barrier transfer rules survive arbitrary lazy-replay interleavings
    (tiny flush threshold = maximal laziness churn)."""
    events = list(trace)
    racy = racy_variables(events)
    tool = Goldilocks(flush_threshold=3).process(events)
    assert {tool.shadow_key(w.var) for w in tool.warnings} == racy


class TestAdaptiveOnWorkloads:
    def test_no_false_alarms_anywhere(self):
        for name, workload in WORKLOADS.items():
            trace = workload.trace(scale=160)
            tool = AdaptiveFastTrack().process(trace)
            oracle = racy_variables(trace)
            for warning in tool.warnings:
                assert warning.var in oracle, (name, warning)

    def test_repeating_races_still_caught(self):
        # The benign counters race over and over; one refinement cannot
        # hide them.
        for name, var in (("mtrt", "progress"), ("raytracer", "checksum"),
                          ("tsp", "best")):
            trace = WORKLOADS[name].trace(scale=260)
            tool = AdaptiveFastTrack().process(trace)
            assert tool.has_warned(var), name

    def test_race_free_workloads_stay_clean(self):
        for name in ("crypt", "moldyn", "sparse", "raja", "philo"):
            trace = WORKLOADS[name].trace(scale=200)
            assert AdaptiveFastTrack().process(trace).warnings == [], name


def test_detectors_tolerate_enter_exit_noise():
    """Race detectors ignore transaction markers entirely."""
    from repro.core.fasttrack import FastTrack

    base = [ev.fork(0, 1), ev.wr(0, "x"), ev.wr(1, "x")]
    noisy = [ev.enter(0, "t"), *base, ev.exit_(0, "t")]
    assert (
        FastTrack().process(base).warning_count
        == FastTrack().process(noisy).warning_count
        == 1
    )
