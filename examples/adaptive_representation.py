"""The Figure 4 walkthrough: watching FastTrack adapt its representation.

FastTrack keeps the read history of each variable as a single epoch while
reads are totally ordered, promotes it to a vector clock when reads become
concurrent, and demotes it back to an epoch once a write dominates all
reads.  This script replays the exact trace of Figure 4 and prints the
shadow state after every operation, reproducing the figure's columns.

Run:  python examples/adaptive_representation.py
"""

from repro import FastTrack, format_epoch
from repro.core.epoch import READ_SHARED
from repro.trace.generators import figure4_trace


def render_read_state(var_state) -> str:
    if var_state.read_epoch == READ_SHARED:
        return repr(var_state.read_vc)
    return format_epoch(var_state.read_epoch)


def main() -> None:
    trace = figure4_trace()
    tool = FastTrack()
    preamble = len(trace) - 8  # clock warm-up, not shown in the figure

    print(f"{'operation':<16s}{'C0':>12s}{'C1':>12s}{'W_x':>8s}{'R_x':>12s}")
    print("-" * 60)
    for index, event in enumerate(trace):
        tool.handle(event)
        if index < preamble:
            continue
        c0 = tool.threads[0].vc if 0 in tool.threads else "-"
        c1 = tool.threads[1].vc if 1 in tool.threads else "⊥"
        x = tool.vars.get("x")
        w = format_epoch(x.write_epoch) if x else "⊥e"
        r = render_read_state(x) if x else "⊥e"
        print(f"{str(event):<16s}{str(c0):>12s}{str(c1):>12s}{w:>8s}{r:>12s}")

    print()
    print("R_x went  ⊥e → 1@1 → <8,1> → ⊥e → 8@0 :")
    print("  epoch (exclusive reads) → vector clock (concurrent reads)")
    print("  → epoch again once the post-join write dominated all reads.")
    assert tool.warnings == [], "the figure's trace is race-free"


if __name__ == "__main__":
    main()
