"""Analysis composition: FastTrack as a prefilter (Section 5.2).

RoadRunner's ``-tool FastTrack:Velodrome`` feeds the event stream through
FastTrack, which drops race-free memory accesses before they reach the
expensive downstream checker.  This example runs the Velodrome atomicity
checker over the mtrt workload raw and behind each prefilter, showing the
event reduction and the wall-clock effect.

Run:  python examples/compose_checkers.py
"""

import time

from repro.bench.workload import WORKLOADS
from repro.checkers import Velodrome
from repro.runtime.filters import (
    DJITFilter,
    FastTrackFilter,
    NoneFilter,
    ThreadLocalFilter,
    compose,
)


def main() -> None:
    trace = WORKLOADS["mtrt"].trace(scale=1200)
    print(f"checking atomicity of mtrt ({len(trace)} events) with Velodrome\n")
    header = (
        f"{'prefilter':<12s}{'events passed':>15s}{'fraction':>10s}"
        f"{'time':>10s}{'violations':>12s}"
    )
    print(header)
    print("-" * len(header))
    for prefilter_cls in (NoneFilter, ThreadLocalFilter, DJITFilter, FastTrackFilter):
        prefilter = prefilter_cls()
        checker = Velodrome()
        start = time.perf_counter()
        result = compose(prefilter, checker, trace.events)
        elapsed = time.perf_counter() - start
        print(
            f"{prefilter.name:<12s}{result.events_passed:>15d}"
            f"{result.pass_fraction:>10.1%}{elapsed * 1000:>8.0f}ms"
            f"{checker.violation_count:>12d}"
        )
    print()
    print("the FastTrack prefilter forwards only synchronization events and")
    print("accesses to variables with detected races — everything a sound")
    print("atomicity checker still needs, at a fraction of the event volume.")


if __name__ == "__main__":
    main()
