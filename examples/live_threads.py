"""Race detection on real Python threads.

The GIL serializes Python bytecode, but it does not create happens-before
edges: an unsynchronized read-modify-write on shared state is still a data
race (and still loses updates at preemption points).  This example
instruments genuine ``threading`` threads with the live monitor and shows
FastTrack catching the race on the unlocked counter while certifying the
locked one clean.

Run:  python examples/live_threads.py
"""

from repro import FastTrack
from repro.runtime.monitor import MonitoredLock, SharedVar, ThreadMonitor


def main() -> None:
    monitor = ThreadMonitor()
    safe = SharedVar(monitor, "safe_counter", 0)
    unsafe = SharedVar(monitor, "unsafe_counter", 0)
    lock = MonitoredLock(monitor, "counter_lock")

    def worker() -> None:
        for _ in range(200):
            with lock:
                safe.value = safe.value + 1
            unsafe.value = unsafe.value + 1  # classic lost-update race

    threads = [monitor.spawn(worker) for _ in range(4)]
    for thread in threads:
        monitor.join(thread)

    trace = monitor.trace()
    print(f"captured {len(trace)} events from {len(trace.threads())} threads")
    print(f"final counters: safe={safe._value} unsafe={unsafe._value}")
    if unsafe._value < 800:
        print("(the unsafe counter lost updates on this run!)")

    tool = monitor.check(FastTrack())
    print("\nFastTrack verdict:")
    for warning in tool.warnings:
        print(f"  {warning}")
    assert all(w.var == "unsafe_counter" for w in tool.warnings)
    print("\nthe locked counter is certified race-free; the unlocked one is not.")


if __name__ == "__main__":
    main()
