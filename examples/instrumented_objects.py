"""Automatic instrumentation: whole objects, lists, and dicts.

Instead of declaring every shared location by hand, wrap the objects once —
every attribute and element access then flows to the detectors with its
real ``file.py:line`` source site, and FastTrack's report names both lines
of the race.

Run:  python examples/instrumented_objects.py
"""

from repro import FastTrack
from repro.report import build_report
from repro.runtime.instrument import MonitoredDict, MonitoredList, monitored_object
from repro.runtime.monitor import MonitoredLock, ThreadMonitor


class Inventory:
    """An ordinary class — nothing repro-specific about it."""

    def __init__(self) -> None:
        self.stock = 100
        self.reserved = 0


def main() -> None:
    monitor = ThreadMonitor()
    inventory = monitored_object(monitor, "inventory", Inventory())
    orders = MonitoredList(monitor, "orders")
    customers = MonitoredDict(monitor, "customers")
    ledger_lock = MonitoredLock(monitor, "ledger_lock")

    def sales_desk(desk: int) -> None:
        for order in range(25):
            # BUG: read-modify-write on two fields with no lock.
            if inventory.stock > 0:
                inventory.stock = inventory.stock - 1
                inventory.reserved = inventory.reserved + 1
            # Correct: the ledger is consistently locked.
            with ledger_lock:
                orders.append((desk, order))
                customers[desk] = customers.get(desk, 0) + 1

    threads = [monitor.spawn(sales_desk, desk) for desk in range(3)]
    for thread in threads:
        monitor.join(thread)

    trace = monitor.trace()
    print(f"captured {len(trace)} events from 4 threads")
    tool = FastTrack(track_sites=True)
    tool.process(trace)
    print(f"\nFastTrack: {tool.warning_count} warning(s)")
    for warning in tool.warnings:
        print(f"  {warning}")

    racy_fields = {w.var for w in tool.warnings}
    assert ("inventory", "stock") in racy_fields
    assert not any(var[0] == "customers" for var in racy_fields)
    print("\nthe unlocked inventory fields race; the locked ledger")
    print("(orders list + customers dict) is certified clean.")
    print("\n--- report excerpt ---")
    report = build_report(trace, tool)
    print("\n".join(report.splitlines()[:6]))


if __name__ == "__main__":
    main()
