"""Compare all seven tools on a benchmark workload (a one-row Table 1).

Replays the tsp workload — the classic branch-and-bound solver with one
benign race on the global bound and eight fork/join handoffs that fool
Eraser — through every detector, printing time, warnings, and the Table 2
cost counters.

Run:  python examples/compare_detectors.py [workload] [scale]
"""

import sys

from repro.bench.harness import TABLE1_TOOLS, run_tool
from repro.bench.workload import WORKLOADS


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "tsp"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 800
    workload = WORKLOADS[workload_name]
    trace = workload.trace(scale=scale)
    print(
        f"workload {workload.name!r}: {len(trace)} events, "
        f"{len(trace.threads())} threads — {workload.description}"
    )
    print()
    header = (
        f"{'tool':<12s}{'time':>10s}{'slowdown':>10s}{'warnings':>10s}"
        f"{'VC allocs':>11s}{'VC ops':>9s}{'shadow words':>14s}"
    )
    print(header)
    print("-" * len(header))
    for tool_name in TABLE1_TOOLS:
        result = run_tool(workload, tool_name, scale=scale)
        print(
            f"{tool_name:<12s}{result.seconds * 1000:>8.1f}ms"
            f"{result.slowdown:>10.1f}{result.warnings:>10d}"
            f"{result.vc_allocs:>11d}{result.vc_ops:>9d}"
            f"{result.memory_words:>14d}"
        )
    print()
    print("expected shape (Table 1/2): the precise tools agree on warnings;")
    print("FastTrack does a fraction of DJIT+'s O(n) VC work; Eraser is fast")
    print("but reports spurious fork/join warnings.")


if __name__ == "__main__":
    main()
