"""Why dynamic race detection is hard: races on rare interleavings.

The paper's introduction: race conditions "typically cause problems only on
certain rare interleavings, making them extremely difficult to detect,
reproduce, and eliminate."  This example builds a publisher/subscriber
program whose race only *exists* on schedules where the subscriber observes
the published flag before the writer finishes its (unsynchronized) payload
write — then enumerates EVERY schedule of the program to measure exactly
how rare those interleavings are, and shows that FastTrack flags each one.

Run:  python examples/rare_interleavings.py
"""

from repro.runtime import Program, race_coverage
from repro.runtime.explore import explore
from repro.core.fasttrack import FastTrack


def build_program() -> Program:
    state = {"announced": False}

    def publisher(th):
        yield th.acquire("m")
        state["announced"] = True  # announce BEFORE the payload is ready
        yield th.release("m")
        yield th.write("payload")  # the bug: written after the announce

    def subscriber(th):
        yield th.acquire("m")
        announced = state["announced"]
        yield th.release("m")
        if announced:
            yield th.read("payload")  # may race with the late write
        else:
            yield th.read("local_cache")

    return Program(publisher, subscriber)


def main() -> None:
    summary = race_coverage(build_program)
    completed = summary.total_schedules - summary.deadlocked_schedules
    print(
        f"explored {summary.total_schedules} distinct schedules "
        f"({summary.deadlocked_schedules} deadlocked)"
    )
    print(
        f"racy schedules: {summary.racy_schedules}/{completed} "
        f"({summary.race_probability:.0%})"
    )
    print(f"racy variables: {sorted(summary.racy_variables)}")
    print()
    print("one racy and one clean interleaving:")
    shown = {"racy": False, "clean": False}
    for outcome in explore(build_program):
        if outcome.deadlock:
            continue
        racy = bool(FastTrack().process(outcome.trace).warnings)
        label = "racy" if racy else "clean"
        if not shown[label]:
            shown[label] = True
            print(f"\n--- {label} schedule {outcome.schedule}")
            print(outcome.trace.pretty())
        if all(shown.values()):
            break
    print()
    print("a single test run only sees ONE of these schedules — precisely")
    print("why precise dynamic detectors that never cry wolf matter.")


if __name__ == "__main__":
    main()
