"""End-to-end tour of the toolchain on one bug.

Takes the hedc workload (the thread-pool harvester with the paper's three
real races), and walks the full path a developer would:

1. record an execution (the simulated runtime);
2. check it with FastTrack (precise: every warning is real);
3. cross-examine with the imprecise tools (what Eraser sees and misses);
4. confirm against the happens-before ground truth;
5. classify how the rest of the program synchronizes;
6. minimize one race to a tiny reproducible witness;
7. write a triage report.

Run:  python examples/tutorial_walkthrough.py
"""

import tempfile

from repro import Eraser, FastTrack, MultiRace, racy_variables
from repro.bench.workload import WORKLOADS
from repro.detectors.classifier import SharingClassifier
from repro.report import build_report
from repro.trace.minimize import minimize_trace
from repro.trace.serialize import dumps


def main() -> None:
    # 1. Record.
    workload = WORKLOADS["hedc"]
    trace = workload.trace(scale=400)
    print(f"1. recorded {len(trace)} events from {workload.description!r}")

    # 2. Precise check.
    fasttrack = FastTrack(track_sites=True)
    fasttrack.process(trace)
    print(f"\n2. FastTrack: {fasttrack.warning_count} warning(s)")
    for warning in fasttrack.warnings:
        print(f"   - {warning}")

    # 3. The imprecise tools tell a partial story.
    eraser = Eraser().process(trace)
    multirace = MultiRace().process(trace)
    print(
        f"\n3. Eraser sees {eraser.warning_count} (one of them spurious, "
        f"two real races missed); MultiRace sees {multirace.warning_count}"
    )

    # 4. Ground truth agrees with FastTrack (Theorem 1).
    oracle = racy_variables(trace)
    assert all(fasttrack.has_warned(var) for var in oracle)
    print(f"4. the happens-before oracle confirms {len(oracle)} racy "
          "variable(s); FastTrack flagged every one")

    # 5. Context: how the rest of the program synchronizes.
    classifier = SharingClassifier()
    classifier.process(trace)
    fractions = classifier.fractions()
    print("\n5. sharing profile: " + ", ".join(
        f"{cls} {fraction:.0%}"
        for cls, fraction in fractions.items()
        if fraction >= 0.005
    ))

    # 6. Minimize the write-write race to a reproducible witness.
    target = next(
        w.var for w in fasttrack.warnings if w.kind == "write-write"
    )
    witness = minimize_trace(trace, var=target)
    print(f"\n6. minimized the race on {target!r} from {len(trace)} events "
          f"to {len(witness)}:")
    print(dumps(witness).rstrip())

    # 7. A shareable report.
    with tempfile.NamedTemporaryFile(
        "w", suffix=".md", delete=False
    ) as stream:
        stream.write(
            build_report(trace, fasttrack, oracle_racy=oracle)
        )
        print(f"\n7. full report written to {stream.name}")


if __name__ == "__main__":
    main()
