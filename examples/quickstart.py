"""Quickstart: detect a data race with FastTrack in ten lines.

Run:  python examples/quickstart.py
"""

from repro import DETECTORS, FastTrack, Trace, fork, join, racy_variables, rd, wr


def main() -> None:
    # A trace in the paper's notation (Figure 1): thread 0 writes x, forks
    # thread 1, and both then write x with no synchronization between them.
    trace = Trace(
        [
            wr(0, "x"),  # ordered before everything below (program order)
            fork(0, 1),  # child inherits the parent's history
            wr(1, "x"),  # ...
            wr(0, "x"),  # concurrent with thread 1's write -> race!
            join(0, 1),
            rd(0, "x"),  # after the join: ordered, no further race
        ]
    )

    tool = FastTrack().process(trace)
    print("FastTrack warnings:")
    for warning in tool.warnings:
        print(f"  {warning}")

    # The happens-before oracle agrees (Theorem 1: FastTrack is precise).
    print(f"\nground-truth racy variables: {racy_variables(trace)}")

    # The same trace through every tool of the paper's evaluation:
    print("\nwarnings per tool:")
    for name, cls in DETECTORS.items():
        print(f"  {name:<12s} {cls().process(trace).warning_count}")


if __name__ == "__main__":
    main()
