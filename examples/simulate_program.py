"""Writing your own model program for the simulated runtime.

The runtime (our RoadRunner analogue) runs generator-based threads under a
seeded scheduler with real lock / join / wait / barrier semantics.  This
example builds a small producer/consumer system with a deliberate bug — the
producer publishes a "batch ready" flag without holding the queue lock —
and shows that (a) different seeds give different interleavings, and
(b) FastTrack flags exactly the buggy flag on every schedule.

Run:  python examples/simulate_program.py
"""

from repro import FastTrack, racy_variables
from repro.runtime import Program, run_program


def build_program(items: int) -> Program:
    state = {"queue": [], "done": False}

    def producer(th):
        consumer_tid = yield th.fork(consumer)
        for item in range(items):
            yield th.acquire("q")
            yield th.write(("slot", item))
            state["queue"].append(item)
            yield th.notify_all("q")
            yield th.release("q")
            # BUG: the freshness flag is written outside the lock.
            yield th.write("batch_ready", site="producer.flag")
        yield th.acquire("q")
        state["done"] = True
        yield th.notify_all("q")
        yield th.release("q")
        yield th.join(consumer_tid)

    def consumer(th):
        while True:
            yield th.acquire("q")
            while not state["queue"] and not state["done"]:
                yield th.wait("q")
            if not state["queue"]:
                yield th.release("q")
                return
            item = state["queue"].pop(0)
            yield th.read(("slot", item))
            yield th.release("q")
            # BUG (the other half): checked without the lock.
            yield th.read("batch_ready", site="consumer.flag")
            yield th.write(("result", item))

    return Program(producer, name="producer-consumer")


def main() -> None:
    for seed in (0, 1, 2):
        trace = run_program(build_program(items=30), seed=seed)
        tool = FastTrack().process(trace)
        racy = racy_variables(trace)
        print(
            f"seed {seed}: {len(trace):4d} events, "
            f"racy={sorted(map(str, racy))}, "
            f"FastTrack -> {[w.var for w in tool.warnings]}"
        )
    print()
    print("every schedule orders the queue slots through the lock, but the")
    print("batch_ready flag is never protected — FastTrack reports it (and")
    print("only it) on every interleaving.")


if __name__ == "__main__":
    main()
