"""Sharded, streaming, parallel offline race-checking engine.

``repro.engine`` scales the offline analyses to traces that are too large
for a single in-memory pass and to machines with more than one core, with
*zero* precision loss.  Four layers (one module each):

1. :mod:`~repro.engine.partition` — a single streaming pass routes each
   read/write to ``stable_hash(variable) % nshards`` and broadcasts every
   synchronization event to all shards, publishing flat zero-copy
   columnar buffers against shared intern tables through
   :mod:`~repro.engine.transport` (format v3: shared-memory blocks or
   mmap'd shard files, ``transport='shm'|'mmap'|'auto'``);
2. :mod:`~repro.engine.worker` — per-shard detector runs (optionally in
   ``multiprocessing`` workers), each seeing the complete sync order plus
   its variables' accesses, so per-variable analysis is exact;
   kernel-equipped tools consume the shard columns through the fused
   kernels of :mod:`repro.kernels` (``kernel='auto'|'fused'|'generic'``);
3. :mod:`~repro.engine.merge` — deterministic merge of warnings, cost
   stats, and sharing-classifier counts, ordered by original trace
   position and deduplicated with the single-threaded reporting
   discipline;
4. :mod:`~repro.engine.checkpoint` — crash-safe per-shard progress records
   so an interrupted run resumes without re-analyzing finished shards.

Entry points::

    from repro.engine import check_trace_file, check_events

    report = check_trace_file("big.trace", tool="FastTrack", jobs=4)
    report = check_events(trace.events, tool="DJIT+", nshards=8)

Both return a :class:`~repro.engine.merge.MergedReport` whose warnings are
bit-identical to ``make_detector(tool).process(trace).warnings`` (the
differential suite ``tests/test_engine_equivalence.py`` enforces this).
The CLI exposes the engine as ``repro check --jobs N [--shards M]
[--resume DIR]``; see docs/ENGINE.md for the precision argument and the
checkpoint layout.
"""

from __future__ import annotations

import concurrent.futures
import shutil
import signal
import tempfile
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro import obs

from repro.engine.checkpoint import CheckpointError, Workdir
from repro.engine.merge import (
    MergedReport,
    merge_shard_results,
    merge_stats,
    merge_warnings,
    render_markdown,
)
from repro.engine.partition import (
    attach_shard,
    iter_shard,
    load_shard_columns,
    partition_events,
    resolve_transport,
    shard_of,
)
from repro.engine.supervise import (
    EngineTimeout,
    QuarantineExhausted,
    RetryPolicy,
    ShardFailure,
    run_supervised,
)
from repro.engine.worker import (
    DrainRequested,
    analyze_shard,
    drain_requested,
    install_drain_handler,
    load_payloads,
    request_drain,
    reset_drain,
    resolve_kernel,
    run_shard,
)
from repro.trace import events as ev
from repro.trace import serialize

__all__ = [
    "CheckpointError",
    "DrainRequested",
    "EngineTimeout",
    "MergedReport",
    "QuarantineExhausted",
    "RetryPolicy",
    "ShardFailure",
    "Workdir",
    "analyze_shard",
    "attach_shard",
    "check_events",
    "check_trace_file",
    "default_nshards",
    "drain_requested",
    "install_drain_handler",
    "iter_shard",
    "load_payloads",
    "load_shard_columns",
    "merge_shard_results",
    "merge_stats",
    "merge_warnings",
    "partition_events",
    "render_markdown",
    "request_drain",
    "reset_drain",
    "resolve_transport",
    "run_shard",
    "run_supervised",
    "shard_of",
]


def default_nshards(jobs: int) -> int:
    """Two shards per worker: variable weight is skewed, so over-sharding
    lets fast workers steal a second helping instead of idling."""
    return max(1, 2 * max(1, jobs))


#: Below this many events per shard, worker startup dominates the shard's
#: analysis time and ``--jobs N`` loses to the sequential loop; the engine
#: warns (``engine.jobs.tiny_shards``) and suggests fewer shards or
#: sequential mode.  ~10k events is roughly 150ms of fused-kernel work —
#: on the order of one spawned worker's import cost.
MIN_EVENTS_PER_SHARD = 10_000


def _restore_sigterm(previous) -> None:
    if previous is None:
        return
    try:
        signal.signal(signal.SIGTERM, previous)
    except ValueError:  # pragma: no cover - non-main thread
        pass


def _run_pending(
    root: str,
    pending: List[int],
    tool: str,
    tool_kwargs: Optional[Dict],
    jobs: int,
    classify: bool,
    kernel: str,
    executor: Optional[concurrent.futures.Executor] = None,
    policy: Optional[RetryPolicy] = None,
    trace: Optional[Dict] = None,
) -> List[ShardFailure]:
    """Analyze the pending shards under supervision.

    Delegates to :func:`repro.engine.supervise.run_supervised` — bounded
    per-shard retries, pool self-healing, watchdog, quarantine — and
    returns the quarantined shards' failures (empty on a clean run).
    With ``executor`` (the daemon's persistent pool) shards are submitted
    there; otherwise ``jobs`` decides between the in-process sequential
    loop and a supervisor-owned :class:`ProcessPoolExecutor`.  Either way
    a SIGTERM lets in-flight shards checkpoint and then raises
    :class:`DrainRequested` instead of losing work.  ``trace`` carries
    the active trace context into every worker.
    """
    owns_process = executor is None
    previous = install_drain_handler() if owns_process else None
    try:
        return run_supervised(
            root, pending, tool, tool_kwargs, jobs, classify, kernel,
            executor=executor, policy=policy, trace=trace,
        )
    finally:
        if owns_process:
            _restore_sigterm(previous)


def _run(
    events_factory: Callable[[], Iterator[ev.Event]],
    tool: str,
    nshards: Optional[int],
    jobs: int,
    workdir: Optional[str],
    resume: bool,
    classify: bool,
    tool_kwargs: Optional[Dict],
    kernel: str,
    executor: Optional[concurrent.futures.Executor] = None,
    policy: Optional[RetryPolicy] = None,
    transport: str = "auto",
) -> MergedReport:
    # Usage errors (unknown kernel mode, --kernel fused on a kernel-less
    # tool) must fail fast, not be retried and quarantined as if the
    # shards themselves were poisoned.
    resolve_kernel(kernel, tool)
    owns_workdir = workdir is None
    root = workdir if workdir is not None else tempfile.mkdtemp(
        prefix="repro-engine-"
    )
    # ``auto`` picks shm only for engine-owned throwaway directories: a
    # caller-provided workdir exists to survive this process (``--resume``,
    # the service's resident partitions on disk), and shm blocks die with
    # their creator's resource tracker.  Explicit 'shm'/'mmap' is honored
    # either way.
    if transport == "auto" and not owns_workdir:
        transport = "mmap"
    transport = resolve_transport(transport)
    timings: Dict = {"transport": None, "partition_s": None}
    try:
        wd = Workdir(root)
        meta = wd.read_meta() if resume else None
        if meta is not None:
            # A complete partition is already on disk: validate and reuse it
            # (re-partitioning would be wasted work and, worse, a different
            # shard count would orphan the existing checkpoints).
            wd.validate_meta(meta, nshards)
        else:
            if resume:
                # No usable partition: refuse to trust whatever result
                # checkpoints are lying around (they belong to a layout we
                # can no longer identify).
                wd.ensure_resumable_layout(meta)
            shards = nshards if nshards is not None else default_nshards(jobs)
            partition_started = time.monotonic()
            with obs.span(
                "engine.partition", tool=tool, transport=transport
            ) as span:
                meta = partition_events(
                    events_factory(), wd, shards, transport=transport
                )
                span.set(
                    events=meta["events"], shards=meta["nshards"],
                    bytes=sum(meta.get("shard_bytes", [])),
                )
            timings["partition_s"] = time.monotonic() - partition_started
        count = meta["nshards"]
        timings["transport"] = meta.get("transport", "mmap")
        timings["shard_bytes"] = sum(meta.get("shard_bytes", []))
        if jobs > 1 and count and meta["events"] // count < MIN_EVENTS_PER_SHARD:
            obs.log.warning(
                "engine.jobs.tiny_shards",
                f"--jobs {jobs} over {count} shard(s) of "
                f"~{meta['events'] // count} event(s) each: worker startup "
                "will dominate analysis below "
                f"{MIN_EVENTS_PER_SHARD} events/shard — use fewer shards "
                "(--shards) or drop to sequential (--jobs 1)",
                jobs=jobs, shards=count, events=meta["events"],
                events_per_shard=meta["events"] // count,
                threshold=MIN_EVENTS_PER_SHARD,
            )
        if not resume:
            wd.clear_results(tool, count)
        completed = set(wd.completed_shards(tool, count))
        pending = [shard for shard in range(count) if shard not in completed]
        if completed:
            obs.log.info(
                "engine.resume",
                f"resuming {tool}: {len(completed)}/{count} shard(s) "
                "already checkpointed",
                tool=tool, completed=len(completed), total=count,
            )
        submitted = time.monotonic()
        with obs.span(
            "engine.analyze",
            tool=tool, jobs=jobs, shards=count, pending=len(pending),
        ):
            # Captured inside the span so workers parent under it; the
            # submission timestamp rides along for queue-wait attribution.
            trace_ctx = obs.propagation_context(submitted=submitted)
            failures = list(_run_pending(
                root, pending, tool, tool_kwargs, jobs, classify, kernel,
                executor=executor, policy=policy, trace=trace_ctx,
            ))
        timings["analyze_s"] = time.monotonic() - submitted
        failed = {failure.shard for failure in failures}
        survivors = set(wd.completed_shards(tool, count))
        redo = [
            shard for shard in range(count)
            if shard not in survivors and shard not in failed
        ]
        if redo:
            # A checkpoint that reported success but does not validate at
            # merge time (torn write): those shards were quarantined by
            # ``completed_shards`` above — recompute them under the same
            # supervision before giving up on them.
            failures.extend(_run_pending(
                root, redo, tool, tool_kwargs, jobs, classify, kernel,
                executor=executor, policy=policy,
                trace=obs.propagation_context(submitted=time.monotonic()),
            ))
            failed = {failure.shard for failure in failures}
            survivors = set(wd.completed_shards(tool, count))
        quarantined = sorted(set(range(count)) - survivors)
        if not survivors:
            first = failures[0].error if failures else "no checkpoints"
            raise QuarantineExhausted(
                f"all {count} shard(s) failed analysis "
                f"(first error: {first})"
            )
        payloads = [
            wd.read_result(tool, shard) for shard in sorted(survivors)
        ]
        merge_started = time.monotonic()
        with obs.span("engine.merge", tool=tool, shards=count):
            report = merge_shard_results(payloads)
        timings["merge_s"] = time.monotonic() - merge_started
        # Per-shard attach cost, measured inside the workers: under v3
        # this is the whole transport tax (there is no deserialization),
        # and the bench's stage breakdown sums it across shards.
        timings["transport_s"] = sum(
            payload.get("timing", {}).get("transport_s", 0.0)
            for payload in payloads
        )
        report.timings = timings
        if obs.enabled():
            # MergedReport.timings never reaches the result JSON (byte
            # identity), so surface the stage breakdown as its own record:
            # a zero-duration marker span (the ``degraded`` convention) so
            # it never skews stage totals or the critical path.
            obs.emit_span(
                "engine.summary",
                0.0,
                tool=tool,
                events=meta["events"],
                shards=count,
                partition_s=timings.get("partition_s"),
                analyze_s=timings.get("analyze_s"),
                merge_s=timings.get("merge_s"),
                transport_s=timings.get("transport_s"),
                transport=timings.get("transport"),
                shard_bytes=timings.get("shard_bytes"),
            )
        if quarantined:
            by_shard = {failure.shard: failure for failure in failures}
            report.degraded = {
                "quarantined_shards": quarantined,
                "shards_total": count,
                "failures": [
                    by_shard[shard].to_json()
                    if shard in by_shard
                    else {
                        "shard": shard,
                        "attempts": 0,
                        "error": "checkpoint invalid at merge",
                    }
                    for shard in quarantined
                ],
            }
        obs.record_rules(tool, report.stats)
        return report
    finally:
        if owns_workdir:
            # Teardown sweep: release this partition's shm blocks (if any)
            # through their owned handles before dropping the directory —
            # supervised failure paths must never lean on the resource
            # tracker's exit-time backstop.
            try:
                Workdir(root).release_blocks()
            except OSError:  # pragma: no cover - sweep is best-effort
                pass
            shutil.rmtree(root, ignore_errors=True)


def check_events(
    events: Iterable[ev.Event],
    tool: str = "FastTrack",
    *,
    nshards: Optional[int] = None,
    jobs: int = 1,
    workdir: Optional[str] = None,
    resume: bool = False,
    classify: bool = False,
    tool_kwargs: Optional[Dict] = None,
    kernel: str = "auto",
    executor: Optional[concurrent.futures.Executor] = None,
    policy: Optional[RetryPolicy] = None,
    transport: str = "auto",
) -> MergedReport:
    """Shard-check an in-memory event sequence (or any one-shot iterable).

    ``executor`` lends the run an already-running pool (the daemon keeps
    one across jobs to amortize worker startup); without it, ``jobs``
    decides whether a throwaway pool is spun up.  ``policy`` tunes the
    supervisor (retries, shard watchdog, run deadline — see
    :class:`repro.engine.supervise.RetryPolicy`).  ``transport`` picks the
    v3 shard publication (``'shm'``/``'mmap'``; ``'auto'`` uses shm only
    for engine-owned throwaway directories).
    """
    return _run(
        lambda: iter(events),
        tool,
        nshards,
        jobs,
        workdir,
        resume,
        classify,
        tool_kwargs,
        kernel,
        executor=executor,
        policy=policy,
        transport=transport,
    )


def check_trace_file(
    path: str,
    tool: str = "FastTrack",
    fmt: str = "text",
    *,
    nshards: Optional[int] = None,
    jobs: int = 1,
    workdir: Optional[str] = None,
    resume: bool = False,
    classify: bool = False,
    tool_kwargs: Optional[Dict] = None,
    kernel: str = "auto",
    executor: Optional[concurrent.futures.Executor] = None,
    policy: Optional[RetryPolicy] = None,
    transport: str = "auto",
) -> MergedReport:
    """Shard-check a serialized trace file, streaming it during partition.

    The file is read through :func:`repro.trace.serialize.iter_load` (or
    ``iter_load_jsonl``), so the full event list is never materialized; a
    resumed run whose partition already exists does not read it at all.
    ``executor`` lends the run a persistent pool (see :func:`check_events`).
    """

    def events_factory() -> Iterator[ev.Event]:
        def generate() -> Iterator[ev.Event]:
            with open(path, "r", encoding="utf-8") as stream:
                if fmt == "jsonl":
                    yield from serialize.iter_load_jsonl(stream)
                else:
                    yield from serialize.iter_load(stream)

        return generate()

    return _run(
        events_factory,
        tool,
        nshards,
        jobs,
        workdir,
        resume,
        classify,
        tool_kwargs,
        kernel,
        executor=executor,
        policy=policy,
        transport=transport,
    )
