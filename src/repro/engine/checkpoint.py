"""On-disk layout and crash-safe persistence for an engine run.

An engine working directory survives worker crashes and process kills, so a
``repro check --jobs N --resume DIR`` re-run only analyzes the shards that
never finished::

    DIR/
      meta.json                     partition metadata (written last, so its
                                    presence certifies a complete partition);
                                    v3 adds transport/generation/blocks/
                                    shard_bytes for the zero-copy transport
      intern.bin                    the shared target/site intern tables all
                                    shards' columns index into
      shards/shard_0007.bin         one flat v3 columnar buffer per shard
                                    (mmap transport only — under shm the
                                    buffers live in named shared-memory
                                    blocks recorded in meta.json)
      results/FastTrack/shard_0007.json
                                    one checkpoint per (tool, shard); the
                                    file's existence is the progress record

Every write here is atomic and durable (temp file + ``fsync`` +
``os.replace``): a killed worker leaves either a complete checkpoint or
none, never a truncated one.  Against disks and file systems that break
that promise anyway, :meth:`Workdir.completed_shards` *validates* each
checkpoint before trusting it — an unreadable or truncated result file
is quarantined (renamed ``*.json.corrupt``) and its shard recomputed,
recorded as ``repro_degraded_total{reason="checkpoint_quarantined"}``.
Results are grouped per tool so one partition can serve several detectors
(``--all-tools``) and each resumes independently.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import tempfile
from typing import Dict, Hashable, List, Optional, Tuple

from repro import faults

#: Bump when the shard file or checkpoint format changes incompatibly.
#: Version 3: shards are flat fixed-width columnar buffers (five segments,
#: 33 bytes/event — see :mod:`repro.engine.transport`) published through
#: shared-memory blocks or mmap'd shard files; v2's pickle-framed batch
#: files are gone.  A v1/v2 directory fails ``read_meta``; resuming one is
#: rejected with an explicit version error by ``ensure_resumable_layout``
#: rather than silently re-partitioned over stale checkpoints.
FORMAT_VERSION = 3


class CheckpointError(RuntimeError):
    """A resume directory does not match the requested run."""


_RESULT_FILE = re.compile(r"^shard_\d+\.json$")
_CORRUPT_FILE = re.compile(r"^shard_\d+\.json\.corrupt$")


def _tool_dirname(tool: str) -> str:
    """A filesystem-safe directory name for a tool (``DJIT+`` → ``DJIT_``)."""
    return re.sub(r"[^A-Za-z0-9.-]", "_", tool)


def _atomic_write(path: str, text: str) -> None:
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as stream:
            stream.write(text)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class Workdir:
    """Handle on one engine working directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.shards_dir = os.path.join(root, "shards")
        self.results_dir = os.path.join(root, "results")
        self.meta_path = os.path.join(root, "meta.json")
        self.intern_path = os.path.join(root, "intern.bin")
        os.makedirs(self.shards_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)

    # -- partition metadata --------------------------------------------------

    def write_meta(self, meta: Dict) -> None:
        meta = dict(meta)
        meta["format_version"] = FORMAT_VERSION
        _atomic_write(self.meta_path, json.dumps(meta, indent=2) + "\n")

    def read_meta(self) -> Optional[Dict]:
        """The partition metadata, or ``None`` if no complete partition
        exists here (meta.json is written only after all shards are)."""
        meta = self.read_raw_meta()
        if meta is None or meta.get("format_version") != FORMAT_VERSION:
            return None
        return meta

    def read_raw_meta(self) -> Optional[Dict]:
        """Whatever parses at ``meta.json``, *any* format version.

        The version-checked :meth:`read_meta` is what analysis trusts;
        this raw reader exists for lifecycle sweeps (releasing a crashed
        predecessor's shm blocks before overwriting its metadata) and for
        naming the offending version in resume-rejection errors.
        """
        try:
            with open(self.meta_path, "r", encoding="utf-8") as stream:
                meta = json.load(stream)
        except (OSError, json.JSONDecodeError):
            return None
        return meta if isinstance(meta, dict) else None

    def validate_meta(self, meta: Dict, nshards: Optional[int]) -> None:
        """Reject a resume against a partition with a different geometry."""
        if nshards is not None and meta.get("nshards") != nshards:
            raise CheckpointError(
                f"resume directory was partitioned into {meta.get('nshards')} "
                f"shards but {nshards} were requested; drop --shards or use "
                "a fresh directory"
            )
        if meta.get("transport") == "shm":
            # Shard buffers live in named shm blocks; verify each is still
            # attachable (a reboot or tracker sweep may have reaped them).
            from repro.engine import transport as _transport

            names = (meta.get("blocks") or {}).get("shards") or []
            for shard in range(meta.get("nshards", 0)):
                try:
                    view = _transport.attach_view(self, meta, shard)
                except (OSError, FileNotFoundError, IndexError) as exc:
                    raise CheckpointError(
                        f"resume directory's shm shard block for shard "
                        f"{shard} ({names[shard] if shard < len(names) else '?'}) "
                        f"is gone ({exc}); shared-memory partitions do not "
                        "survive the creating process — re-run without "
                        "--resume or partition with the mmap transport"
                    )
                view.close()
        else:
            for shard in range(meta.get("nshards", 0)):
                if not os.path.exists(self.shard_path(shard)):
                    raise CheckpointError(
                        f"resume directory is missing shard file "
                        f"{self.shard_path(shard)!r}"
                    )
        if not os.path.exists(self.intern_path):
            raise CheckpointError(
                f"resume directory is missing the intern table "
                f"{self.intern_path!r}"
            )

    # -- shard event files ---------------------------------------------------

    def shard_path(self, shard: int) -> str:
        return os.path.join(self.shards_dir, f"shard_{shard:04d}.bin")

    # -- shared intern tables ------------------------------------------------

    def write_intern(
        self, targets: List[Hashable], sites: List[Hashable]
    ) -> None:
        """Persist the intern tables every shard's columns index into."""
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as stream:
                pickle.dump(
                    (targets, sites), stream,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, self.intern_path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def read_intern(self) -> Tuple[List[Hashable], List[Hashable]]:
        with open(self.intern_path, "rb") as stream:
            return pickle.load(stream)

    # -- per-(tool, shard) result checkpoints --------------------------------

    def result_path(self, tool: str, shard: int) -> str:
        return os.path.join(
            self.results_dir, _tool_dirname(tool), f"shard_{shard:04d}.json"
        )

    def valid_result(self, tool: str, shard: int) -> bool:
        """True iff ``(tool, shard)`` has a trustworthy checkpoint.

        A checkpoint is trusted only if it parses as JSON and names the
        shard it claims to checkpoint — a zero-byte or truncated file
        left by a torn write is *quarantined* (renamed ``*.json.corrupt``,
        kept for post-mortems) so the shard is recomputed instead of
        crashing the merge or, worse, being silently trusted.
        """
        path = self.result_path(tool, shard)
        try:
            with open(path, "r", encoding="utf-8") as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return False
        except (OSError, ValueError, UnicodeDecodeError):
            payload = None
        if isinstance(payload, dict) and payload.get("shard") == shard:
            return True
        try:
            os.replace(path, path + ".corrupt")
        except OSError:  # pragma: no cover - raced with a rewrite
            return False
        from repro import obs

        obs.record_degraded(
            "checkpoint_quarantined", tool=tool, shard=shard, path=path
        )
        return False

    def completed_shards(self, tool: str, nshards: int) -> List[int]:
        return [
            shard
            for shard in range(nshards)
            if self.valid_result(tool, shard)
        ]

    def result_files(self) -> List[str]:
        """Every checkpointed result file under ``results/``, any tool."""
        found = []
        try:
            tool_dirs = sorted(os.listdir(self.results_dir))
        except OSError:
            return found
        for tool_dir in tool_dirs:
            directory = os.path.join(self.results_dir, tool_dir)
            if not os.path.isdir(directory):
                continue
            for name in sorted(os.listdir(directory)):
                if _RESULT_FILE.match(name):
                    found.append(os.path.join(directory, name))
        return found

    def ensure_resumable_layout(self, meta: Optional[Dict]) -> None:
        """Fail fast when a resume would silently mix shard layouts.

        A result checkpoint is only meaningful relative to the partition it
        was computed against.  When ``meta.json`` is missing, corrupt, or
        from an incompatible format version, a resume would re-partition —
        possibly into a different shard count — while ``completed_shards``
        happily trusts the stale checkpoints, merging results from two
        different layouts.  Refuse instead: the caller must use a fresh
        directory (or delete the stale results) to proceed.
        """
        if meta is not None:
            return
        raw = self.read_raw_meta()
        if raw is not None and raw.get("format_version") != FORMAT_VERSION:
            raise CheckpointError(
                f"resume directory {self.root!r} was written by shard "
                f"format v{raw.get('format_version')}, but this build "
                f"reads v{FORMAT_VERSION} (zero-copy columnar buffers); "
                "formats are not cross-compatible — re-run without "
                "--resume in a fresh directory to re-partition"
            )
        stale = self.result_files()
        if stale:
            raise CheckpointError(
                f"resume directory {self.root!r} has {len(stale)} result "
                "checkpoint(s) but no valid partition metadata (meta.json "
                "missing, corrupt, or from an incompatible format); "
                "resuming would mix shard layouts — use a fresh directory "
                f"or delete {self.results_dir!r} first "
                f"(first stale file: {stale[0]!r})"
            )

    def release_blocks(self) -> None:
        """Release every shm block this directory's metadata names.

        Safe to call unconditionally (no-op for the mmap transport and
        for directories with no metadata); the engine calls it from its
        teardown path so supervised runs never lean on the resource
        tracker's exit-time backstop.
        """
        from repro.engine import transport as _transport

        _transport.release_blocks(self.read_raw_meta())

    def write_result(self, tool: str, shard: int, payload: Dict) -> str:
        path = self.result_path(tool, shard)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        text = json.dumps(payload) + "\n"
        if faults.active():
            spec = faults.fire("checkpoint.write", tool=tool, shard=shard)
            if spec is not None and spec.action == "torn":
                # A torn write that "succeeded": only a prefix reached
                # the disk.  The validating reader must quarantine it.
                _atomic_write(path, text[: max(1, len(text) // 2)])
                return path
        _atomic_write(path, text)
        return path

    def read_result(self, tool: str, shard: int) -> Dict:
        with open(self.result_path(tool, shard), "r", encoding="utf-8") as f:
            return json.load(f)

    def clear_results(self, tool: str, nshards: Optional[int] = None) -> None:
        """Drop *all* of a tool's checkpoints (a non-resume run starts
        clean).

        Removal is by directory listing rather than ``range(nshards)`` so a
        re-partition into fewer shards cannot leave high-index checkpoints
        from the previous layout behind (a later resume would mistake them
        for finished work).  ``nshards`` is accepted for symmetry with
        :meth:`completed_shards` but no longer bounds the sweep.
        """
        directory = os.path.join(self.results_dir, _tool_dirname(tool))
        try:
            names = os.listdir(directory)
        except OSError:
            return
        for name in names:
            if _RESULT_FILE.match(name) or _CORRUPT_FILE.match(name):
                os.unlink(os.path.join(directory, name))
