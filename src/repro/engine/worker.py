"""Shard workers: full-precision detection over one shard's sub-stream.

A worker replays its shard file — the complete synchronization order plus
the accesses of the variables hashed to this shard — through a fresh
detector instance from :mod:`repro.detectors.registry`.  Each event is fed
with its *original* trace index, so the warnings a worker records are
field-for-field identical to the ones a single-threaded run reports for the
same variables (same ``event_index``, same ``prior`` description — the
per-variable shadow state evolves identically because the sync order is
complete).

The worker's result — warnings, detector cost stats, optional
sharing-classifier counts — is checkpointed as JSON through
:class:`~repro.engine.checkpoint.Workdir` before the function returns, so a
run killed between shards loses at most the shards in flight.  The module
is import-clean and the entry point takes only picklable primitives: it is
the ``multiprocessing`` target.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.detector import CostStats, Detector, RaceWarning
from repro.detectors.registry import make_detector
from repro.engine.checkpoint import Workdir
from repro.engine.partition import iter_shard
from repro.trace import events as ev
from repro.trace.serialize import _target_from_json, _target_to_json

PAYLOAD_VERSION = 1


def _encode_hashable(value: Optional[Hashable]):
    return None if value is None else _target_to_json(value)


def _decode_hashable(value) -> Optional[Hashable]:
    return None if value is None else _target_from_json(value)


def warning_to_json(warning: RaceWarning) -> Dict:
    return {
        "var": _encode_hashable(warning.var),
        "kind": warning.kind,
        "tid": warning.tid,
        "prior": warning.prior,
        "event_index": warning.event_index,
        "site": _encode_hashable(warning.site),
    }


def warning_from_json(record: Dict) -> RaceWarning:
    return RaceWarning(
        var=_decode_hashable(record["var"]),
        kind=record["kind"],
        tid=record["tid"],
        prior=record["prior"],
        event_index=record["event_index"],
        site=_decode_hashable(record["site"]),
    )


def stats_to_json(stats: CostStats) -> Dict:
    return {
        "events": stats.events,
        "reads": stats.reads,
        "writes": stats.writes,
        "syncs": stats.syncs,
        "boundaries": stats.boundaries,
        "vc_allocs": stats.vc_allocs,
        "vc_ops": stats.vc_ops,
        "fast_ops": stats.fast_ops,
        "rules": dict(stats.rules),
    }


def stats_from_json(record: Dict) -> CostStats:
    stats = CostStats(
        events=record["events"],
        reads=record["reads"],
        writes=record["writes"],
        syncs=record["syncs"],
        boundaries=record["boundaries"],
        vc_allocs=record["vc_allocs"],
        vc_ops=record["vc_ops"],
        fast_ops=record["fast_ops"],
    )
    stats.rules.update(record["rules"])
    return stats


def _tally_kinds(stats: CostStats, kind_counts: Dict[int, int]) -> None:
    """Per-shard equivalent of :meth:`Detector.absorb_kind_counts`, taken
    from counts accumulated while streaming (the stream is consumed once)."""
    for kind, count in kind_counts.items():
        stats.events += count
        if kind == ev.READ:
            stats.reads += count
        elif kind == ev.WRITE:
            stats.writes += count
        elif kind in (ev.ENTER, ev.EXIT):
            stats.boundaries += count
        else:
            stats.syncs += count


def analyze_shard(
    workdir: Workdir,
    shard: int,
    tool: str,
    tool_kwargs: Optional[Dict] = None,
    classify: bool = False,
) -> Dict:
    """Run ``tool`` over one shard and checkpoint + return the payload."""
    detector: Detector = make_detector(tool, **(tool_kwargs or {}))
    classifier = None
    if classify:
        from repro.detectors.classifier import SharingClassifier

        classifier = SharingClassifier()
    kind_counts: Dict[int, int] = {}
    handle = detector.handle
    for index, event in iter_shard(workdir, shard):
        handle(event, index=index)
        if classifier is not None:
            classifier.handle(event)
        kind = event.kind
        kind_counts[kind] = kind_counts.get(kind, 0) + 1
    _tally_kinds(detector.stats, kind_counts)

    classifier_payload = None
    if classifier is not None:
        access_counts: Dict[str, int] = {}
        variable_counts: Dict[str, int] = {}
        for key, cls in classifier.classify().items():
            profile = classifier.profiles[key]
            access_counts[cls] = access_counts.get(cls, 0) + profile.accesses
            variable_counts[cls] = variable_counts.get(cls, 0) + 1
        classifier_payload = {
            "access_counts": access_counts,
            "variable_counts": variable_counts,
        }

    payload = {
        "payload_version": PAYLOAD_VERSION,
        "shard": shard,
        "tool": tool,
        "events": sum(kind_counts.values()),
        "warnings": [warning_to_json(w) for w in detector.warnings],
        "suppressed": detector.suppressed_warnings,
        "stats": stats_to_json(detector.stats),
        "classifier": classifier_payload,
    }
    workdir.write_result(tool, shard, payload)
    return payload


def run_shard(
    root: str,
    shard: int,
    tool: str,
    tool_kwargs: Optional[Dict] = None,
    classify: bool = False,
) -> int:
    """Multiprocessing entry point: picklable args, result left on disk."""
    analyze_shard(Workdir(root), shard, tool, tool_kwargs, classify)
    return shard


def load_payloads(
    workdir: Workdir, tool: str, nshards: int
) -> List[Dict]:
    """Read every shard's checkpointed payload, in shard order."""
    return [workdir.read_result(tool, shard) for shard in range(nshards)]
