"""Shard workers: full-precision detection over one shard's sub-stream.

A worker replays its shard — the complete synchronization order plus the
accesses of the variables hashed to this shard — through a fresh detector
instance from :mod:`repro.detectors.registry`.  Each event is fed with its
*original* trace index, so the warnings a worker records are
field-for-field identical to the ones a single-threaded run reports for the
same variables (same ``event_index``, same ``prior`` description — the
per-variable shadow state evolves identically because the sync order is
complete).

The shard arrives through the v3 zero-copy transport
(:mod:`repro.engine.transport`): the worker *attaches* the shard's
shared-memory block or mmap'd buffer and wraps it with ``memoryview``
casts — no pickle framing, no per-event deserialization, no per-batch
intern deltas.  Kernel-equipped tools (``repro.kernels.KERNEL_TOOLS``)
run their fused loop directly over those casts; the generic object path
reconstructs ``Event`` objects lazily from the same casts.
``kernel='auto'`` (the default) picks the kernel when one exists and
falls back to the object path otherwise; ``'fused'`` demands one;
``'generic'`` forces the object path.  Either way the payload is
bit-identical — the kernels' equivalence contract plus the shard replay
argument compose.  The view is closed at the shard boundary so pooled
workers never accumulate mappings.

The worker's result — warnings, detector cost stats, optional
sharing-classifier counts — is checkpointed as JSON through
:class:`~repro.engine.checkpoint.Workdir` before the function returns, so a
run killed between shards loses at most the shards in flight.  The module
is import-clean and the entry point takes only picklable primitives: it is
the ``multiprocessing`` target.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from typing import Dict, List, Optional

from repro import faults
from repro import obs
from repro.core.detector import CostStats, Detector
from repro.obs import tracecontext
from repro.detectors.registry import make_detector
from repro.engine import transport as _transport
from repro.engine.checkpoint import Workdir
from repro.kernels import has_kernel, run_kernel
from repro.report import (
    classifier_counts,
    stats_from_json,
    stats_to_json,
    warning_from_json,
    warning_to_json,
)
from repro.trace import events as ev

__all__ = [
    "DrainRequested",
    "KERNEL_MODES",
    "analyze_shard",
    "drain_requested",
    "install_drain_handler",
    "load_payloads",
    "request_drain",
    "reset_drain",
    "resolve_kernel",
    "run_shard",
    "stats_from_json",
    "stats_to_json",
    "warning_from_json",
    "warning_to_json",
]

PAYLOAD_VERSION = 1

#: Accepted values for the ``kernel`` selector.
KERNEL_MODES = ("auto", "fused", "generic")

#: Exit status of a shard worker that drained on SIGTERM (128 + 15, the
#: conventional "terminated" code — but only *after* checkpointing).
DRAIN_EXIT_CODE = 143


class DrainRequested(RuntimeError):
    """An engine run stopped early because SIGTERM asked it to drain.

    Every shard finished before the stop is checkpointed; re-running with
    the same working directory (``--resume DIR`` / the daemon's restart
    recovery) completes only the remaining shards.
    """

    def __init__(self, completed: Optional[int] = None,
                 total: Optional[int] = None) -> None:
        self.completed = completed
        self.total = total
        progress = (
            f" ({completed}/{total} pending shard(s) checkpointed)"
            if completed is not None and total is not None
            else ""
        )
        super().__init__(
            "drain requested by SIGTERM; finished shards are "
            f"checkpointed{progress} — re-run with the same working "
            "directory to complete the remainder"
        )


# A SIGTERM must not kill a worker mid-shard (that would forfeit the whole
# shard's work): the handler only raises this flag, and the analysis loops
# stop at the next shard boundary — after the in-flight shard's checkpoint
# is on disk.
_DRAIN = {"requested": False}


def request_drain(signum=None, frame=None) -> None:
    """Signal-handler-shaped: mark that the current process should stop
    taking new shards once the in-flight one is checkpointed."""
    _DRAIN["requested"] = True


def drain_requested() -> bool:
    return _DRAIN["requested"]


def reset_drain() -> None:
    _DRAIN["requested"] = False


def install_drain_handler():
    """Route SIGTERM to :func:`request_drain`.

    Returns the previous handler so callers can restore it, or ``None``
    when installation is impossible (signal handlers can only be set from
    the main thread — the daemon's job-runner threads land here and rely
    on the daemon's own SIGTERM handling instead).
    """
    try:
        return signal.signal(signal.SIGTERM, request_drain)
    except ValueError:
        return None


def resolve_kernel(kernel: str, tool: str) -> bool:
    """Decide whether ``tool`` runs through its fused kernel.

    ``auto`` uses the kernel when one exists; ``fused`` requires one
    (``ValueError`` otherwise); ``generic`` always uses the object path.
    """
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
        )
    if kernel == "generic":
        return False
    if has_kernel(tool):
        return True
    if kernel == "fused":
        raise ValueError(
            f"--kernel fused requested but {tool!r} has no fused kernel"
        )
    return False


def _tally_kinds(stats: CostStats, kind_counts: Dict[int, int]) -> None:
    """Per-shard equivalent of :meth:`Detector.absorb_kind_counts`, taken
    from counts accumulated while streaming (the stream is consumed once)."""
    for kind, count in kind_counts.items():
        stats.events += count
        if kind == ev.READ:
            stats.reads += count
        elif kind == ev.WRITE:
            stats.writes += count
        elif kind in (ev.ENTER, ev.EXIT):
            stats.boundaries += count
        else:
            stats.syncs += count


def analyze_shard(
    workdir: Workdir,
    shard: int,
    tool: str,
    tool_kwargs: Optional[Dict] = None,
    classify: bool = False,
    kernel: str = "auto",
    attempt: int = 0,
    submitted: Optional[float] = None,
) -> Dict:
    """Run ``tool`` over one shard and checkpoint + return the payload.

    ``attempt`` is the supervisor's retry counter for this shard; it is
    stable context for fault plans (a plan targeting ``{"shard": 3,
    "attempt": 0}`` hits exactly the first try, whichever worker process
    lands it) and is carried in the payload for post-mortems.

    ``submitted`` is the dispatcher's ``time.monotonic()`` at submission
    (carried in the trace context) — monotonic clocks are comparable
    across processes on one machine, so ``start - submitted`` is this
    shard's queue wait.  When telemetry is on the shard emits its own
    ``shard.analyze`` span (with ``shard.attach``/``shard.kernel``
    children) into this process's span file; the payload still carries
    the wall/CPU timing either way, for the stage breakdown in
    BENCH_engine.json and the merged report's ``timings``.
    """
    if faults.active():
        faults.fire("worker.crash", shard=shard, tool=tool, attempt=attempt)
        faults.fire("worker.hang", shard=shard, tool=tool, attempt=attempt)
    started_monotonic = time.monotonic()
    started_cpu = time.process_time()
    queue_wait_s = (
        max(0.0, started_monotonic - submitted)
        if submitted is not None else 0.0
    )
    with obs.span(
        "shard.analyze", shard=shard, tool=tool, attempt=attempt,
        queue_wait_s=queue_wait_s,
    ) as shard_span:
        detector: Detector = make_detector(tool, **(tool_kwargs or {}))
        use_fused = resolve_kernel(kernel, tool)
        classifier = None
        if classify:
            from repro.detectors.classifier import SharingClassifier

            classifier = SharingClassifier()
        # Attach the shard's transport buffer.  This — plus the cached
        # intern load — is the *entire* per-shard transport cost under v3,
        # and the payload times it separately so the stage breakdown in
        # BENCH_engine.json can show the serialization tax is gone.
        with obs.span("shard.attach", shard=shard):
            meta = workdir.read_meta()
            if meta is None:
                raise FileNotFoundError(
                    f"no complete v3 partition at {workdir.root!r}"
                )
            intern = _transport.load_intern(workdir, meta)
            view = _transport.attach_view(workdir, meta, shard)
        transport_s = time.monotonic() - started_monotonic
        try:
            columns, indices = view.columns(intern)
            events_seen = len(columns)
            with obs.span("shard.kernel", shard=shard, tool=tool) as kspan:
                if use_fused:
                    try:
                        run_kernel(
                            tool, columns, indices=indices, detector=detector
                        )
                    except Exception as error:
                        # Fused-path failure degrades, it does not fail the
                        # shard: rebuild the detector (the kernel may have
                        # half-advanced its shadow state) and redo this
                        # shard on the generic object path, whose output is
                        # bit-identical by the equivalence contract.
                        obs.record_degraded(
                            "kernel_fallback", tool=tool, shard=shard,
                            error=str(error),
                        )
                        detector = make_detector(tool, **(tool_kwargs or {}))
                        use_fused = False
                    else:
                        if classifier is not None:
                            # The classifier has no fused form; replay the
                            # shard's events for it alone (the detector's
                            # pass stays columnar).
                            for event in columns.iter_events():
                                classifier.handle(event)
                if not use_fused:
                    kind_counts: Dict[int, int] = {}
                    handle = detector.handle
                    targets, sites = intern
                    Event = ev.Event
                    for index, kind, tid, target_id, site_id in zip(
                        indices, columns.kinds, columns.tids,
                        columns.target_ids, columns.site_ids,
                    ):
                        event = Event(
                            kind,
                            tid,
                            targets[target_id],
                            sites[site_id] if site_id >= 0 else None,
                        )
                        handle(event, index=index)
                        if classifier is not None:
                            classifier.handle(event)
                        kind_counts[kind] = kind_counts.get(kind, 0) + 1
                    _tally_kinds(detector.stats, kind_counts)
                kspan.set(
                    events=events_seen,
                    kernel="fused" if use_fused else "generic",
                )
        finally:
            columns = indices = None
            view.close()

        classifier_payload = (
            classifier_counts(classifier) if classifier is not None else None
        )
        shard_span.set(
            events=events_seen, kernel="fused" if use_fused else "generic"
        )

    ended_monotonic = time.monotonic()
    payload = {
        "payload_version": PAYLOAD_VERSION,
        "shard": shard,
        "attempt": attempt,
        "tool": tool,
        "events": events_seen,
        "kernel": "fused" if use_fused else "generic",
        "transport": meta.get("transport", "mmap"),
        "warnings": [warning_to_json(w) for w in detector.warnings],
        "suppressed": detector.suppressed_warnings,
        "stats": stats_to_json(detector.stats),
        "classifier": classifier_payload,
        "timing": {
            "started": started_monotonic,
            "wall_s": ended_monotonic - started_monotonic,
            "cpu_s": time.process_time() - started_cpu,
            "transport_s": transport_s,
        },
    }
    workdir.write_result(tool, shard, payload)
    return payload


def run_shard(
    root: str,
    shard: int,
    tool: str,
    tool_kwargs: Optional[Dict] = None,
    classify: bool = False,
    kernel: str = "auto",
    attempt: int = 0,
    trace: Optional[Dict] = None,
) -> int:
    """Multiprocessing entry point: picklable args, result left on disk.

    Installs the drain handler so a SIGTERM delivered mid-shard does not
    kill the worker: the in-flight shard finishes and checkpoints, and
    only then does the worker exit (child processes with
    :data:`DRAIN_EXIT_CODE`; the in-process sequential path returns
    normally and lets the caller stop at the shard boundary).

    Also adopts any ``REPRO_FAULTS`` plan on first entry, so chaos plans
    reach spawn-start workers and pool processes re-spawned mid-run, not
    just fork children.

    ``trace`` is the dispatcher's trace context (see
    :mod:`repro.obs.tracecontext`): adopting it makes this worker write
    real span records — into its own ``spans-<pid>.jsonl`` when it is a
    separate process — parented under the submitting ``engine.analyze``
    span.  Spawn-start workers that were handed no context fall back to
    the ``REPRO_TRACE`` environment export.  ``None`` with no env set
    means telemetry is off and the analysis runs exactly as before.
    """
    faults.load_from_env_once()
    install_drain_handler()
    if trace is None:
        trace = tracecontext.context_from_env()
    with tracecontext.adopt(trace):
        analyze_shard(
            Workdir(root), shard, tool, tool_kwargs, classify, kernel,
            attempt, submitted=(trace or {}).get("submitted"),
        )
    if multiprocessing.parent_process() is not None and drain_requested():
        # Pool worker: the checkpoint is on disk; exiting here refuses
        # further shards so the parent's drain can proceed.
        os._exit(DRAIN_EXIT_CODE)
    return shard


def load_payloads(
    workdir: Workdir, tool: str, nshards: int
) -> List[Dict]:
    """Read every shard's checkpointed payload, in shard order."""
    return [workdir.read_result(tool, shard) for shard in range(nshards)]
