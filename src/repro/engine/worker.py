"""Shard workers: full-precision detection over one shard's sub-stream.

A worker replays its shard file — the complete synchronization order plus
the accesses of the variables hashed to this shard — through a fresh
detector instance from :mod:`repro.detectors.registry`.  Each event is fed
with its *original* trace index, so the warnings a worker records are
field-for-field identical to the ones a single-threaded run reports for the
same variables (same ``event_index``, same ``prior`` description — the
per-variable shadow state evolves identically because the sync order is
complete).

Kernel-equipped tools (``repro.kernels.KERNEL_TOOLS``) skip ``Event``
reconstruction entirely: the shard's columnar batches are concatenated by
:func:`~repro.engine.partition.load_shard_columns` and handed to the fused
kernel together with the original-index column.  ``kernel='auto'`` (the
default) picks the kernel when one exists and falls back to the object
path otherwise; ``'fused'`` demands one; ``'generic'`` forces the object
path.  Either way the payload is bit-identical — the kernels' equivalence
contract plus the shard replay argument compose.

The worker's result — warnings, detector cost stats, optional
sharing-classifier counts — is checkpointed as JSON through
:class:`~repro.engine.checkpoint.Workdir` before the function returns, so a
run killed between shards loses at most the shards in flight.  The module
is import-clean and the entry point takes only picklable primitives: it is
the ``multiprocessing`` target.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.core.detector import CostStats, Detector, RaceWarning
from repro.detectors.registry import make_detector
from repro.engine.checkpoint import Workdir
from repro.engine.partition import iter_shard, load_shard_columns
from repro.kernels import has_kernel, run_kernel
from repro.trace import events as ev
from repro.trace.serialize import _target_from_json, _target_to_json

PAYLOAD_VERSION = 1

#: Accepted values for the ``kernel`` selector.
KERNEL_MODES = ("auto", "fused", "generic")


def resolve_kernel(kernel: str, tool: str) -> bool:
    """Decide whether ``tool`` runs through its fused kernel.

    ``auto`` uses the kernel when one exists; ``fused`` requires one
    (``ValueError`` otherwise); ``generic`` always uses the object path.
    """
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
        )
    if kernel == "generic":
        return False
    if has_kernel(tool):
        return True
    if kernel == "fused":
        raise ValueError(
            f"--kernel fused requested but {tool!r} has no fused kernel"
        )
    return False


def _encode_hashable(value: Optional[Hashable]):
    return None if value is None else _target_to_json(value)


def _decode_hashable(value) -> Optional[Hashable]:
    return None if value is None else _target_from_json(value)


def warning_to_json(warning: RaceWarning) -> Dict:
    return {
        "var": _encode_hashable(warning.var),
        "kind": warning.kind,
        "tid": warning.tid,
        "prior": warning.prior,
        "event_index": warning.event_index,
        "site": _encode_hashable(warning.site),
    }


def warning_from_json(record: Dict) -> RaceWarning:
    return RaceWarning(
        var=_decode_hashable(record["var"]),
        kind=record["kind"],
        tid=record["tid"],
        prior=record["prior"],
        event_index=record["event_index"],
        site=_decode_hashable(record["site"]),
    )


def stats_to_json(stats: CostStats) -> Dict:
    return {
        "events": stats.events,
        "reads": stats.reads,
        "writes": stats.writes,
        "syncs": stats.syncs,
        "boundaries": stats.boundaries,
        "vc_allocs": stats.vc_allocs,
        "vc_ops": stats.vc_ops,
        "fast_ops": stats.fast_ops,
        "rules": dict(stats.rules),
    }


def stats_from_json(record: Dict) -> CostStats:
    stats = CostStats(
        events=record["events"],
        reads=record["reads"],
        writes=record["writes"],
        syncs=record["syncs"],
        boundaries=record["boundaries"],
        vc_allocs=record["vc_allocs"],
        vc_ops=record["vc_ops"],
        fast_ops=record["fast_ops"],
    )
    stats.rules.update(record["rules"])
    return stats


def _tally_kinds(stats: CostStats, kind_counts: Dict[int, int]) -> None:
    """Per-shard equivalent of :meth:`Detector.absorb_kind_counts`, taken
    from counts accumulated while streaming (the stream is consumed once)."""
    for kind, count in kind_counts.items():
        stats.events += count
        if kind == ev.READ:
            stats.reads += count
        elif kind == ev.WRITE:
            stats.writes += count
        elif kind in (ev.ENTER, ev.EXIT):
            stats.boundaries += count
        else:
            stats.syncs += count


def analyze_shard(
    workdir: Workdir,
    shard: int,
    tool: str,
    tool_kwargs: Optional[Dict] = None,
    classify: bool = False,
    kernel: str = "auto",
) -> Dict:
    """Run ``tool`` over one shard and checkpoint + return the payload."""
    detector: Detector = make_detector(tool, **(tool_kwargs or {}))
    use_fused = resolve_kernel(kernel, tool)
    classifier = None
    if classify:
        from repro.detectors.classifier import SharingClassifier

        classifier = SharingClassifier()
    if use_fused:
        columns, indices = load_shard_columns(workdir, shard)
        run_kernel(tool, columns, indices=indices, detector=detector)
        events_seen = len(columns)
        if classifier is not None:
            # The classifier has no fused form; replay the shard's events
            # for it alone (the detector's pass above stays columnar).
            for event in columns.iter_events():
                classifier.handle(event)
    else:
        kind_counts: Dict[int, int] = {}
        events_seen = 0
        handle = detector.handle
        for index, event in iter_shard(workdir, shard):
            handle(event, index=index)
            if classifier is not None:
                classifier.handle(event)
            kind = event.kind
            kind_counts[kind] = kind_counts.get(kind, 0) + 1
            events_seen += 1
        _tally_kinds(detector.stats, kind_counts)

    classifier_payload = None
    if classifier is not None:
        access_counts: Dict[str, int] = {}
        variable_counts: Dict[str, int] = {}
        for key, cls in classifier.classify().items():
            profile = classifier.profiles[key]
            access_counts[cls] = access_counts.get(cls, 0) + profile.accesses
            variable_counts[cls] = variable_counts.get(cls, 0) + 1
        classifier_payload = {
            "access_counts": access_counts,
            "variable_counts": variable_counts,
        }

    payload = {
        "payload_version": PAYLOAD_VERSION,
        "shard": shard,
        "tool": tool,
        "events": events_seen,
        "kernel": "fused" if use_fused else "generic",
        "warnings": [warning_to_json(w) for w in detector.warnings],
        "suppressed": detector.suppressed_warnings,
        "stats": stats_to_json(detector.stats),
        "classifier": classifier_payload,
    }
    workdir.write_result(tool, shard, payload)
    return payload


def run_shard(
    root: str,
    shard: int,
    tool: str,
    tool_kwargs: Optional[Dict] = None,
    classify: bool = False,
    kernel: str = "auto",
) -> int:
    """Multiprocessing entry point: picklable args, result left on disk."""
    analyze_shard(Workdir(root), shard, tool, tool_kwargs, classify, kernel)
    return shard


def load_payloads(
    workdir: Workdir, tool: str, nshards: int
) -> List[Dict]:
    """Read every shard's checkpointed payload, in shard order."""
    return [workdir.read_result(tool, shard) for shard in range(nshards)]
