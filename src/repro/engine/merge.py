"""Deterministic merge of per-shard results into one report.

Warnings
--------
Each shard's warning list is already ordered by original trace position
(workers replay their shard in order and stamp the original index).  The
merger k-way-merges the lists by ``event_index`` and then *replays the
single-threaded reporting discipline* over the merged stream: at most one
warning per shadow key and at most one per source site, earlier position
wins.  Per-key dedup is shard-local (a variable lives in exactly one
shard), but per-*site* dedup crosses shards — two different variables in
different shards can race at the same source line, and a single-threaded
run would report only the first.  Replaying the discipline here restores
exactly that output; docs/ENGINE.md gives the argument that the result is
warning-for-warning identical to a single-threaded run, including the
suppressed-warning count.

Stats
-----
Per-shard :class:`CostStats` are summed (the merged counters describe work
actually performed, which for the broadcast sync events is once per
shard), then the event-mix counters (``events``/``syncs``/``boundaries``)
are corrected back to trace-accurate totals using shard 0's sync counts —
every shard saw the identical sync sub-stream, so shard 0's tally *is* the
trace's.  ``vc_allocs``/``vc_ops`` keep the summed semantics and the raw
per-shard numbers stay available in :attr:`MergedReport.shard_stats`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.detector import CostStats, RaceWarning, fine_grain
from repro.engine.worker import stats_from_json, warning_from_json


@dataclass
class MergedReport:
    """The engine's merged output for one (trace, tool) run."""

    tool: str
    nshards: int
    events: int
    warnings: List[RaceWarning]
    suppressed_warnings: int
    stats: CostStats
    shard_stats: List[CostStats]
    classifier_access_counts: Optional[Dict[str, int]] = None
    classifier_variable_counts: Optional[Dict[str, int]] = None
    shard_events: List[int] = field(default_factory=list)
    #: Partial-failure accounting: ``None`` on a clean run; on a run with
    #: quarantined shards, ``{"quarantined_shards": [...], "shards_total":
    #: N, "failures": [{"shard", "attempts", "error"}, ...]}``.  The
    #: surviving shards' results are exact; the quarantined shards'
    #: variables are simply *not analyzed* — never guessed at.
    degraded: Optional[Dict] = None
    #: Per-stage wall-clock breakdown for this run, filled in by the
    #: engine orchestrator: ``{"partition_s", "transport_s", "analyze_s",
    #: "merge_s", "shard_bytes", "transport"}``.  Deliberately **not**
    #: part of :meth:`to_json` — the ``repro.result/1`` document must stay
    #: byte-identical across runs (the CLI/service share those bytes);
    #: timings are for benchmarks and telemetry, not the result contract.
    timings: Optional[Dict] = None

    @property
    def is_degraded(self) -> bool:
        return self.degraded is not None

    @property
    def warning_count(self) -> int:
        return len(self.warnings)

    def classifier_fractions(self) -> Optional[Dict[str, float]]:
        """Access-weighted sharing-class fractions, as the single-threaded
        :meth:`SharingClassifier.fractions` reports them."""
        counts = self.classifier_access_counts
        if counts is None:
            return None
        denominator = sum(counts.values()) or 1
        from repro.detectors.classifier import CLASSES

        return {cls: counts.get(cls, 0) / denominator for cls in CLASSES}

    def to_json(self) -> Dict:
        """The canonical ``repro.result/1`` document for this run — the
        same schema ``repro check --json`` and the service's ``/result``
        endpoint emit (see :mod:`repro.report`)."""
        from repro.report import result_to_json

        classifier = None
        if self.classifier_access_counts is not None:
            classifier = {
                "access_counts": dict(self.classifier_access_counts),
                "variable_counts": dict(self.classifier_variable_counts or {}),
            }
        return result_to_json(
            self.tool,
            self.stats,
            self.warnings,
            self.suppressed_warnings,
            classifier=classifier,
            degraded=self.degraded,
        )


def merge_warnings(
    shard_warning_lists: List[List[RaceWarning]],
    shadow_key: Callable[[Hashable], Hashable] = fine_grain,
) -> Tuple[List[RaceWarning], int]:
    """K-way merge by trace position, then replay the reporting discipline.

    Returns ``(warnings, extra_suppressed)`` where ``extra_suppressed``
    counts warnings a shard reported locally but a single-threaded run
    would have deduplicated (cross-shard same-site collisions).
    """
    warned_keys: set = set()
    warned_sites: set = set()
    merged: List[RaceWarning] = []
    extra_suppressed = 0
    stream = heapq.merge(
        *shard_warning_lists, key=lambda warning: warning.event_index
    )
    for warning in stream:
        key = shadow_key(warning.var)
        if key in warned_keys or (
            warning.site is not None and warning.site in warned_sites
        ):
            warned_keys.add(key)
            extra_suppressed += 1
            continue
        warned_keys.add(key)
        if warning.site is not None:
            warned_sites.add(warning.site)
        merged.append(warning)
    return merged, extra_suppressed


def merge_stats(shard_stats: List[CostStats]) -> CostStats:
    """Sum per-shard work counters, de-duplicating the broadcast sync
    events in the event-mix columns (see the module docstring)."""
    merged = CostStats()
    for stats in shard_stats:
        merged.merge(stats)
    if shard_stats:
        duplicated = len(shard_stats) - 1
        merged.syncs -= duplicated * shard_stats[0].syncs
        merged.boundaries -= duplicated * shard_stats[0].boundaries
        merged.events = merged.reads + merged.writes + merged.syncs + merged.boundaries
    return merged


def merge_shard_results(
    payloads: List[Dict],
    shadow_key: Callable[[Hashable], Hashable] = fine_grain,
) -> MergedReport:
    """Combine checkpointed shard payloads into one :class:`MergedReport`."""
    if not payloads:
        raise ValueError("no shard payloads to merge")
    tools = {payload["tool"] for payload in payloads}
    if len(tools) != 1:
        raise ValueError(f"payloads mix tools: {sorted(tools)}")
    ordered = sorted(payloads, key=lambda payload: payload["shard"])
    shard_warning_lists = [
        [warning_from_json(record) for record in payload["warnings"]]
        for payload in ordered
    ]
    warnings, extra_suppressed = merge_warnings(shard_warning_lists, shadow_key)
    suppressed = (
        sum(payload["suppressed"] for payload in ordered) + extra_suppressed
    )
    shard_stats = [stats_from_json(payload["stats"]) for payload in ordered]
    stats = merge_stats(shard_stats)

    access_counts: Optional[Dict[str, int]] = None
    variable_counts: Optional[Dict[str, int]] = None
    if all(payload.get("classifier") for payload in ordered):
        access_counts = {}
        variable_counts = {}
        for payload in ordered:
            for cls, count in payload["classifier"]["access_counts"].items():
                access_counts[cls] = access_counts.get(cls, 0) + count
            for cls, count in payload["classifier"]["variable_counts"].items():
                variable_counts[cls] = variable_counts.get(cls, 0) + count

    return MergedReport(
        tool=ordered[0]["tool"],
        nshards=len(ordered),
        events=stats.events,
        warnings=warnings,
        suppressed_warnings=suppressed,
        stats=stats,
        shard_stats=shard_stats,
        classifier_access_counts=access_counts,
        classifier_variable_counts=variable_counts,
        shard_events=[payload["events"] for payload in ordered],
    )


def render_markdown(report: MergedReport) -> str:
    """A compact markdown rendering of a merged engine report."""
    lines = [f"# Engine report — {report.tool} × {report.nshards} shard(s)", ""]
    verdict = (
        f"**{report.warning_count} warning(s)**"
        if report.warning_count
        else "**race-free** (no warnings)"
    )
    lines.append(
        f"Verdict: {verdict} over {report.events} events "
        f"({report.stats.reads} reads, {report.stats.writes} writes, "
        f"{report.stats.syncs} sync ops)."
    )
    lines.append("")
    lines.append("## Warnings")
    lines.append("")
    if not report.warnings:
        lines.append("None.")
    else:
        lines.append("| # | kind | variable | thread | site | conflicts with |")
        lines.append("|---|---|---|---|---|---|")
        for index, warning in enumerate(report.warnings):
            lines.append(
                f"| {index + 1} | {warning.kind} | `{warning.var}` "
                f"| {warning.tid} | {warning.site or '—'} "
                f"| {warning.prior} |"
            )
        if report.suppressed_warnings:
            lines.append("")
            lines.append(
                f"({report.suppressed_warnings} further occurrence(s) "
                "suppressed — one report per variable and per site)"
            )
    fractions = report.classifier_fractions()
    if fractions is not None:
        lines.append("")
        lines.append("## Sharing classification")
        lines.append("")
        for cls, fraction in fractions.items():
            lines.append(f"* {cls}: {fraction:.1%} of accesses")
    lines.append("")
    lines.append("## Shard balance")
    lines.append("")
    lines.append("| shard | events | vc ops | fast ops |")
    lines.append("|---|---|---|---|")
    for shard, stats in enumerate(report.shard_stats):
        lines.append(
            f"| {shard} | {stats.events} | {stats.vc_ops} | {stats.fast_ops} |"
        )
    return "\n".join(lines) + "\n"
