"""Streaming trace partitioner: one pass, bounded memory, N shard files.

FastTrack's analysis state factors into (a) the synchronization order —
thread/lock/volatile vector clocks, advanced only by sync operations — and
(b) per-variable shadow state, advanced only by that variable's accesses
(PAPER.md Figure 5).  The partitioner exploits this: it streams the event
sequence once and

* **broadcasts** every non-access event (acquire/release, fork/join,
  volatile accesses, barrier releases, enter/exit boundaries) to *all*
  shard files, and
* **routes** each read/write to the single shard
  ``stable_hash(variable) % nshards``,

preserving relative order within each shard.  Every shard therefore sees
the complete sync order interleaved with its own variables' accesses — by
the paper's Theorem 1 argument, exactly the information needed to check
those variables with full precision (docs/ENGINE.md spells the argument
out).

Shard files are sequences of pickle frames, each a batch of
``(original_index, Event)`` pairs; carrying the original trace position lets
shard workers report warnings with single-threaded-identical
``event_index`` values.  The variable hash is ``zlib.crc32`` over ``repr``
rather than builtin ``hash`` because the latter is randomized per process:
shard assignment must be stable across the CLI invocations of an
interrupted-then-resumed run.
"""

from __future__ import annotations

import pickle
import zlib
from typing import Dict, Hashable, Iterable, List, Tuple

from repro.engine.checkpoint import Workdir
from repro.trace import events as ev

#: Events appended to a batch before it is pickled out (bounds memory).
BATCH_EVENTS = 8192

_ACCESS_KINDS = (ev.READ, ev.WRITE)


def shard_of(target: Hashable, nshards: int) -> int:
    """Deterministic, process-stable shard assignment for a variable."""
    return zlib.crc32(repr(target).encode("utf-8")) % nshards


def partition_events(
    events: Iterable[ev.Event],
    workdir: Workdir,
    nshards: int,
    batch_events: int = BATCH_EVENTS,
) -> Dict:
    """Stream ``events`` into ``nshards`` shard files under ``workdir``.

    Returns the partition metadata (also persisted as ``meta.json``; its
    write is the last step, so a half-partitioned directory is recognizably
    incomplete and gets re-partitioned on resume).
    """
    if nshards < 1:
        raise ValueError(f"nshards must be >= 1, got {nshards}")
    streams = [open(workdir.shard_path(s), "wb") for s in range(nshards)]
    batches: List[List[Tuple[int, ev.Event]]] = [[] for _ in range(nshards)]
    shard_events = [0] * nshards
    total = reads = writes = 0

    def flush(shard: int) -> None:
        if batches[shard]:
            pickle.dump(
                batches[shard], streams[shard], protocol=pickle.HIGHEST_PROTOCOL
            )
            batches[shard].clear()

    try:
        for index, event in enumerate(events):
            kind = event.kind
            if kind in _ACCESS_KINDS:
                shard = shard_of(event.target, nshards)
                batches[shard].append((index, event))
                shard_events[shard] += 1
                if kind == ev.READ:
                    reads += 1
                else:
                    writes += 1
                if len(batches[shard]) >= batch_events:
                    flush(shard)
            else:
                # Sync / boundary event: every shard needs the full
                # synchronization order to keep its vector clocks exact.
                for shard in range(nshards):
                    batches[shard].append((index, event))
                    shard_events[shard] += 1
                    if len(batches[shard]) >= batch_events:
                        flush(shard)
            total += 1
        for shard in range(nshards):
            flush(shard)
    finally:
        for stream in streams:
            stream.close()

    meta = {
        "nshards": nshards,
        "events": total,
        "reads": reads,
        "writes": writes,
        "other": total - reads - writes,
        "shard_events": shard_events,
    }
    workdir.write_meta(meta)
    return meta


def iter_shard(workdir: Workdir, shard: int) -> Iterable[Tuple[int, ev.Event]]:
    """Yield a shard's ``(original_index, event)`` pairs in order."""
    with open(workdir.shard_path(shard), "rb") as stream:
        while True:
            try:
                batch = pickle.load(stream)
            except EOFError:
                return
            for pair in batch:
                yield pair
