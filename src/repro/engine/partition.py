"""Streaming trace partitioner: one pass, bounded memory, N shard files.

FastTrack's analysis state factors into (a) the synchronization order —
thread/lock/volatile vector clocks, advanced only by sync operations — and
(b) per-variable shadow state, advanced only by that variable's accesses
(PAPER.md Figure 5).  The partitioner exploits this: it streams the event
sequence once and

* **broadcasts** every non-access event (acquire/release, fork/join,
  volatile accesses, barrier releases, enter/exit boundaries) to *all*
  shard files, and
* **routes** each read/write to the single shard
  ``stable_hash(variable) % nshards``,

preserving relative order within each shard.  Every shard therefore sees
the complete sync order interleaved with its own variables' accesses — by
the paper's Theorem 1 argument, exactly the information needed to check
those variables with full precision (docs/ENGINE.md spells the argument
out).

Shard files are **columnar** (format v2): sequences of pickle frames, each
a batch of five parallel columns ``(indices, kinds, tids, target_ids,
site_ids)`` — original trace positions as ``array('q')``, event kinds as
``bytes``, and dense interned target/site ids indexing the partition-wide
intern tables persisted once in ``intern.bin``.  Workers hand these
columns straight to the fused kernels of :mod:`repro.kernels` (zero
``Event`` reconstruction on the fast path); :func:`iter_shard`
reconstructs ``(original_index, Event)`` pairs for the generic object
path.  Carrying the original trace position lets shard workers report
warnings with single-threaded-identical ``event_index`` values.  The
variable hash is ``zlib.crc32`` over ``repr`` rather than builtin ``hash``
because the latter is randomized per process: shard assignment must be
stable across the CLI invocations of an interrupted-then-resumed run.
"""

from __future__ import annotations

import pickle
import zlib
from array import array
from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

from repro.engine.checkpoint import Workdir
from repro.trace import events as ev
from repro.trace.columnar import ColumnarTrace

#: Events appended to a batch before it is pickled out (bounds memory).
BATCH_EVENTS = 8192

_ACCESS_KINDS = (ev.READ, ev.WRITE)

#: One shard's in-flight columnar batch: parallel lists for original trace
#: index, kind, tid, interned target id, interned site id.
_BatchColumns = Tuple[list, list, list, list, list]


def shard_of(target: Hashable, nshards: int) -> int:
    """Deterministic, process-stable shard assignment for a variable."""
    return zlib.crc32(repr(target).encode("utf-8")) % nshards


def partition_events(
    events: Iterable[ev.Event],
    workdir: Workdir,
    nshards: int,
    batch_events: int = BATCH_EVENTS,
) -> Dict:
    """Stream ``events`` into ``nshards`` columnar shard files.

    Targets and sites are interned into partition-wide tables (written to
    ``intern.bin`` before the metadata), so every shard's columns index
    the same tables and workers can share one loaded copy.  Returns the
    partition metadata (also persisted as ``meta.json``; its write is the
    last step, so a half-partitioned directory is recognizably incomplete
    and gets re-partitioned on resume).
    """
    if nshards < 1:
        raise ValueError(f"nshards must be >= 1, got {nshards}")
    streams = [open(workdir.shard_path(s), "wb") for s in range(nshards)]
    batches: list = [([], [], [], [], []) for _ in range(nshards)]
    shard_events = [0] * nshards
    total = reads = writes = 0
    targets: list = []
    sites: list = []
    target_index: Dict[Hashable, int] = {}
    site_index: Dict[Hashable, int] = {}

    def flush(shard: int) -> None:
        b_idx, b_kind, b_tid, b_target, b_site = batches[shard]
        if b_idx:
            pickle.dump(
                (
                    array("q", b_idx),
                    bytes(b_kind),
                    array("q", b_tid),
                    array("q", b_target),
                    array("q", b_site),
                ),
                streams[shard],
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            for column in batches[shard]:
                column.clear()

    def append(shard: int, index: int, kind: int, tid: int,
               target_id: int, site_id: int) -> None:
        b_idx, b_kind, b_tid, b_target, b_site = batches[shard]
        b_idx.append(index)
        b_kind.append(kind)
        b_tid.append(tid)
        b_target.append(target_id)
        b_site.append(site_id)
        shard_events[shard] += 1
        if len(b_idx) >= batch_events:
            flush(shard)

    try:
        for index, event in enumerate(events):
            kind = event.kind
            target = event.target
            target_id = target_index.get(target)
            if target_id is None:
                target_id = len(targets)
                target_index[target] = target_id
                targets.append(target)
            site = event.site
            if site is None:
                site_id = -1
            else:
                site_id = site_index.get(site)
                if site_id is None:
                    site_id = len(sites)
                    site_index[site] = site_id
                    sites.append(site)
            if kind in _ACCESS_KINDS:
                shard = shard_of(target, nshards)
                append(shard, index, kind, event.tid, target_id, site_id)
                if kind == ev.READ:
                    reads += 1
                else:
                    writes += 1
            else:
                # Sync / boundary event: every shard needs the full
                # synchronization order to keep its vector clocks exact.
                for shard in range(nshards):
                    append(shard, index, kind, event.tid, target_id, site_id)
            total += 1
        for shard in range(nshards):
            flush(shard)
    finally:
        for stream in streams:
            stream.close()

    workdir.write_intern(targets, sites)
    meta = {
        "nshards": nshards,
        "events": total,
        "reads": reads,
        "writes": writes,
        "other": total - reads - writes,
        "shard_events": shard_events,
        "targets": len(targets),
        "sites": len(sites),
    }
    workdir.write_meta(meta)
    return meta


def iter_shard_batches(
    workdir: Workdir, shard: int
) -> Iterator[Tuple[array, bytes, array, array, array]]:
    """Yield a shard's raw columnar batches
    ``(indices, kinds, tids, target_ids, site_ids)`` in order."""
    with open(workdir.shard_path(shard), "rb") as stream:
        while True:
            try:
                yield pickle.load(stream)
            except EOFError:
                return


def load_shard_columns(
    workdir: Workdir,
    shard: int,
    intern: Optional[Tuple[list, list]] = None,
) -> Tuple[ColumnarTrace, array]:
    """Load one shard as ``(columns, original_indices)``.

    The returned :class:`~repro.trace.columnar.ColumnarTrace` shares the
    partition-wide intern tables (pass ``intern`` to reuse an already
    loaded copy across shards), so fused kernels can run on it directly;
    ``original_indices[i]`` is the trace position of the shard's ``i``-th
    event, for single-threaded-identical warning indices.
    """
    if intern is None:
        intern = workdir.read_intern()
    targets, sites = intern
    indices = array("q")
    kinds = array("b")
    tids = array("q")
    target_ids = array("q")
    site_ids = array("q")
    for b_idx, b_kinds, b_tids, b_targets, b_sites in iter_shard_batches(
        workdir, shard
    ):
        indices.extend(b_idx)
        kinds.frombytes(b_kinds)
        tids.extend(b_tids)
        target_ids.extend(b_targets)
        site_ids.extend(b_sites)
    columns = ColumnarTrace.from_columns(
        kinds, tids, target_ids, site_ids, targets, sites
    )
    return columns, indices


def iter_shard(workdir: Workdir, shard: int) -> Iterable[Tuple[int, ev.Event]]:
    """Yield a shard's ``(original_index, event)`` pairs in order,
    reconstructing :class:`Event` objects for the generic object path."""
    targets, sites = workdir.read_intern()
    Event = ev.Event
    for b_idx, b_kinds, b_tids, b_targets, b_sites in iter_shard_batches(
        workdir, shard
    ):
        for index, kind, tid, target_id, site_id in zip(
            b_idx, b_kinds, b_tids, b_targets, b_sites
        ):
            yield index, Event(
                kind,
                tid,
                targets[target_id],
                sites[site_id] if site_id >= 0 else None,
            )
