"""Streaming trace partitioner: one pass, bounded memory, N shard buffers.

FastTrack's analysis state factors into (a) the synchronization order —
thread/lock/volatile vector clocks, advanced only by sync operations — and
(b) per-variable shadow state, advanced only by that variable's accesses
(PAPER.md Figure 5).  The partitioner exploits this: it streams the event
sequence once and

* **broadcasts** every non-access event (acquire/release, fork/join,
  volatile accesses, barrier releases, enter/exit boundaries) to *all*
  shards, and
* **routes** each read/write to the single shard
  ``stable_hash(variable) % nshards``,

preserving relative order within each shard.  Every shard therefore sees
the complete sync order interleaved with its own variables' accesses — by
the paper's Theorem 1 argument, exactly the information needed to check
those variables with full precision (docs/ENGINE.md spells the argument
out).

Shards are published in the **v3 zero-copy columnar format** of
:mod:`repro.engine.transport`: five flat fixed-width segments (original
trace indices, tids, interned target ids, interned site ids, kinds) in
one contiguous buffer per shard — a ``multiprocessing.shared_memory``
block (``transport='shm'``) or an mmap'd ``shards/shard_NNNN.bin``
(``transport='mmap'``, the durable fallback ``--resume`` and the service's
resident partitions use).  Workers *attach* instead of deserializing:
``memoryview`` casts over the buffer feed the fused kernels directly,
so the per-event transport cost is zero regardless of worker count.
Targets and sites are interned once into partition-wide tables (persisted
to ``intern.bin``, and into an intern block under shm) — shard columns
carry dense ids only, never per-batch intern deltas.

Streaming stays bounded-memory: events accumulate in per-shard batches
(:data:`BATCH_EVENTS`) that spill to scratch files, and the final buffers
are assembled segment-by-segment once the per-shard counts are known.
The variable hash is ``zlib.crc32`` over ``repr`` rather than builtin
``hash`` because the latter is randomized per process: shard assignment
must be stable across the CLI invocations of an interrupted-then-resumed
run.
"""

from __future__ import annotations

import os
import struct
import zlib
from array import array
from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.engine import transport as _transport
from repro.engine.checkpoint import Workdir
from repro.trace import events as ev
from repro.trace.columnar import ColumnarTrace

#: Events appended to a batch before it spills to scratch (bounds memory).
BATCH_EVENTS = 8192

_ACCESS_KINDS = (ev.READ, ev.WRITE)

_FRAME_HEADER = struct.Struct("<q")


def shard_of(target: Hashable, nshards: int) -> int:
    """Deterministic, process-stable shard assignment for a variable."""
    return zlib.crc32(repr(target).encode("utf-8")) % nshards


def resolve_transport(transport: str) -> str:
    """Resolve the ``auto`` transport selector against host support."""
    if transport == "auto":
        return "shm" if _transport.supports_shm() else "mmap"
    if transport not in _transport.TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected 'auto' or one of "
            f"{_transport.TRANSPORTS}"
        )
    return transport


def partition_events(
    events: Iterable[ev.Event],
    workdir: Workdir,
    nshards: int,
    batch_events: int = BATCH_EVENTS,
    transport: str = "mmap",
) -> Dict:
    """Stream ``events`` into ``nshards`` v3 columnar shard buffers.

    Targets and sites are interned into partition-wide tables (written to
    ``intern.bin`` before the metadata), so every shard's columns index
    the same tables and workers can share one loaded copy.  Returns the
    partition metadata (also persisted as ``meta.json``; its write is the
    last step, so a half-partitioned directory is recognizably incomplete
    and gets re-partitioned on resume).

    ``transport`` picks the shard buffer publication: ``'shm'`` for
    shared-memory blocks (fastest; lifetime owned by this process),
    ``'mmap'`` for mmap-able shard files (durable across process death —
    the default, and what resumable working directories should use), or
    ``'auto'``.
    """
    if nshards < 1:
        raise ValueError(f"nshards must be >= 1, got {nshards}")
    transport = resolve_transport(transport)
    # A crashed predecessor may have left shm blocks behind at this root:
    # release whatever the previous metadata still names before its
    # meta.json is overwritten (the block names embed a per-partition
    # generation token, so nothing here can collide with the new run).
    _transport.release_blocks(workdir.read_raw_meta())
    generation = os.urandom(4).hex()
    spill_paths = [workdir.shard_path(s) + ".spill" for s in range(nshards)]
    streams = [open(path, "wb") for path in spill_paths]
    batches = [([], [], [], [], []) for _ in range(nshards)]
    shard_events = [0] * nshards
    total = reads = writes = 0
    targets: list = []
    sites: list = []
    target_index: Dict[Hashable, int] = {}
    site_index: Dict[Hashable, int] = {}

    def flush(shard: int) -> None:
        b_idx, b_kind, b_tid, b_target, b_site = batches[shard]
        if b_idx:
            stream = streams[shard]
            stream.write(_FRAME_HEADER.pack(len(b_idx)))
            stream.write(array("q", b_idx).tobytes())
            stream.write(bytes(b_kind))
            stream.write(array("q", b_tid).tobytes())
            stream.write(array("q", b_target).tobytes())
            stream.write(array("q", b_site).tobytes())
            for column in batches[shard]:
                column.clear()

    def append(shard: int, index: int, kind: int, tid: int,
               target_id: int, site_id: int) -> None:
        b_idx, b_kind, b_tid, b_target, b_site = batches[shard]
        b_idx.append(index)
        b_kind.append(kind)
        b_tid.append(tid)
        b_target.append(target_id)
        b_site.append(site_id)
        shard_events[shard] += 1
        if len(b_idx) >= batch_events:
            flush(shard)

    assembler = _transport.ShardAssembler(workdir, transport, generation)
    try:
        try:
            for index, event in enumerate(events):
                kind = event.kind
                target = event.target
                target_id = target_index.get(target)
                if target_id is None:
                    target_id = len(targets)
                    target_index[target] = target_id
                    targets.append(target)
                site = event.site
                if site is None:
                    site_id = -1
                else:
                    site_id = site_index.get(site)
                    if site_id is None:
                        site_id = len(sites)
                        site_index[site] = site_id
                        sites.append(site)
                if kind in _ACCESS_KINDS:
                    shard = shard_of(target, nshards)
                    append(shard, index, kind, event.tid, target_id, site_id)
                    if kind == ev.READ:
                        reads += 1
                    else:
                        writes += 1
                else:
                    # Sync / boundary event: every shard needs the full
                    # synchronization order to keep its vector clocks exact.
                    for shard in range(nshards):
                        append(shard, index, kind, event.tid,
                               target_id, site_id)
                total += 1
            for shard in range(nshards):
                flush(shard)
        finally:
            for stream in streams:
                stream.close()
        for shard in range(nshards):
            assembler.assemble(shard, spill_paths[shard], shard_events[shard])
        workdir.write_intern(targets, sites)
        intern_block = assembler.write_intern_block(targets, sites)
    except BaseException:
        assembler.abort()
        for path in spill_paths:
            if os.path.exists(path):
                os.unlink(path)
        raise
    shard_bytes = list(assembler.shard_bytes)
    meta = {
        "nshards": nshards,
        "events": total,
        "reads": reads,
        "writes": writes,
        "other": total - reads - writes,
        "shard_events": shard_events,
        "targets": len(targets),
        "sites": len(sites),
        "transport": transport,
        "generation": generation,
        "shard_bytes": shard_bytes,
        "blocks": {
            "shards": list(assembler.block_names),
            "intern": intern_block,
        },
    }
    workdir.write_meta(meta)
    from repro import obs

    obs.record_shard_bytes(sum(shard_bytes), transport=transport)
    return meta


def attach_shard(
    workdir: Workdir, shard: int, meta: Optional[Dict] = None
) -> _transport.ShardView:
    """Attach one shard's transport buffer (see
    :class:`repro.engine.transport.ShardView`); close it when done."""
    if meta is None:
        meta = workdir.read_meta()
        if meta is None:
            raise FileNotFoundError(
                f"no complete v3 partition at {workdir.root!r}"
            )
    return _transport.attach_view(workdir, meta, shard)


def load_shard_columns(
    workdir: Workdir,
    shard: int,
    intern: Optional[Tuple[list, list]] = None,
) -> Tuple[ColumnarTrace, "memoryview"]:
    """Load one shard as ``(columns, original_indices)`` — zero-copy.

    The returned :class:`~repro.trace.columnar.ColumnarTrace` wraps
    ``memoryview`` casts over the shard's transport buffer and shares the
    partition-wide intern tables (pass ``intern`` to reuse an already
    loaded copy across shards), so fused kernels run on it directly;
    ``original_indices[i]`` is the trace position of the shard's ``i``-th
    event, for single-threaded-identical warning indices.  The mapping
    stays alive as long as the returned trace does (it pins the view);
    workers that churn through many shards should use
    :func:`attach_shard` and close explicitly.
    """
    meta = workdir.read_meta()
    if meta is None:
        raise FileNotFoundError(
            f"no complete v3 partition at {workdir.root!r}"
        )
    if intern is None:
        intern = _transport.load_intern(workdir, meta)
    view = _transport.attach_view(workdir, meta, shard)
    return view.columns(intern)


def iter_shard(workdir: Workdir, shard: int) -> Iterable[Tuple[int, ev.Event]]:
    """Yield a shard's ``(original_index, event)`` pairs in order,
    reconstructing :class:`Event` objects for the generic object path."""
    meta = workdir.read_meta()
    if meta is None:
        raise FileNotFoundError(
            f"no complete v3 partition at {workdir.root!r}"
        )
    targets, sites = _transport.load_intern(workdir, meta)
    view = _transport.attach_view(workdir, meta, shard)
    try:
        columns, indices = view.columns((targets, sites))
        Event = ev.Event
        for index, kind, tid, target_id, site_id in zip(
            indices, columns.kinds, columns.tids,
            columns.target_ids, columns.site_ids,
        ):
            yield index, Event(
                kind,
                tid,
                targets[target_id],
                sites[site_id] if site_id >= 0 else None,
            )
    finally:
        view.close()
