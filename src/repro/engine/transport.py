"""Zero-copy shard transport: shared-memory and mmap columnar blocks.

Format v2 moved shard payloads from pickled ``Event`` objects to columnar
batches, but still *pickle-framed* them through the filesystem: every
worker re-parsed every batch and re-built five ``array`` objects per
shard.  BENCH_engine.json showed where that leads — ``--jobs 4`` ran at
0.84x of sequential because the serialization tax grows with the worker
count while the analysis work does not.

Format v3 removes the tax.  The partitioner lays each shard out as five
**flat fixed-width segments** in one contiguous buffer::

    offset 0          indices     int64[n]   original trace positions
           8n         tids        int64[n]
           16n        target_ids  int64[n]   → partition-wide intern table
           24n        site_ids    int64[n]   (-1 = no site)
           32n        kinds       int8[n]    event-kind constants
    total  33n bytes  (the int8 segment goes last, so every int64
                       segment stays 8-byte aligned for memoryview.cast)

and publishes the buffer through one of two transports:

* ``shm`` — a ``multiprocessing.shared_memory`` block per shard (plus one
  carrying the pickled intern tables).  Workers attach by name and wrap
  the block with ``memoryview(...).cast(...)``: zero bytes copied, zero
  per-event deserialization, and on Linux the pages are shared between
  every worker mapping them.
* ``mmap`` — the same byte layout in an ordinary ``shards/shard_NNNN.bin``
  file, memory-mapped read-only on attach.  This is the durable fallback:
  ``--resume`` working directories and the service's resident partitions
  survive process death (and reboots) because the bytes live on disk,
  while the page cache still deduplicates them across workers.

Lifecycle rules (docs/ENGINE.md spells them out):

* the **creating process owns** shm blocks: creation registers them with
  the stdlib ``resource_tracker`` and in this module's ``_OWNED`` table;
  :func:`release_blocks` unlinks owned blocks through their handles so
  the tracker is unregistered exactly once — no "leaked shared_memory
  objects" warnings, no double unlink.
* **attachers never register**: worker processes (and cross-process
  sweepers) attach through :func:`_attach_untracked`, which suppresses
  the tracker registration the stdlib performs even for ``create=False``
  opens.  Without this, every pool worker's exit would enqueue a spurious
  unlink of a block it never owned.
* block names embed a digest of the working directory root *and* a
  per-partition generation token (recorded in ``meta.json``), so a
  re-partition of the same root never collides with a crashed
  predecessor; :func:`partition_events` releases the previous
  generation's blocks before writing the new one.
* if the creating process dies without cleanup (kill -9 of the CLI
  itself), the resource tracker unlinks the registered blocks at its own
  exit — the OS-level backstop.  :func:`leaked_blocks` scans ``/dev/shm``
  for the ``repro3-`` prefix so the chaos suite can assert the backstop
  is never needed on supervised failure paths.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pickle
import struct
import threading
from typing import Dict, List, Optional, Tuple

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - stdlib always has it on 3.8+
    _shm = None

from repro.trace.columnar import ColumnarTrace

__all__ = [
    "BLOCK_PREFIX",
    "TRANSPORTS",
    "ShardView",
    "attach_view",
    "block_name",
    "leaked_blocks",
    "load_intern",
    "release_blocks",
    "release_names",
    "reset_process_caches",
    "shard_layout",
    "shard_nbytes",
    "supports_shm",
]

#: Accepted transport selectors (``auto`` resolves before meta is written).
TRANSPORTS = ("shm", "mmap")

#: Every shm block this package creates starts with this, so leak sweeps
#: can recognize ours in /dev/shm without touching anything else.
BLOCK_PREFIX = "repro3-"

#: Segment order inside a shard buffer: four int64 columns, then the int8
#: kind column (last, so the 8-byte columns never need padding).
_INT64_SEGMENTS = ("indices", "tids", "target_ids", "site_ids")

#: One spill frame: event count, then the five segments' raw bytes.
_FRAME_HEADER = struct.Struct("<q")

#: Blocks created (and therefore owned) by this process, name → handle.
_OWNED: Dict[str, "_shm.SharedMemory"] = {}
_OWNED_LOCK = threading.Lock()

#: Per-process intern-table cache: (root, generation) → (targets, sites).
#: Pool workers analyze many (tool, shard) pairs against one partition;
#: loading the tables once per process instead of once per shard is part
#: of the "no per-batch intern deltas" contract.
_INTERN_CACHE: Dict[Tuple[str, str], Tuple[list, list]] = {}
_INTERN_LOCK = threading.Lock()


def supports_shm() -> bool:
    """True when POSIX shared memory is usable on this host."""
    if _shm is None:
        return False
    try:
        probe = _shm.SharedMemory(create=True, size=1)
    except (OSError, ValueError):
        return False
    probe.close()
    probe.unlink()
    return True


def shard_layout(n: int) -> Dict[str, Tuple[int, int]]:
    """Segment name → ``(offset, nbytes)`` for an ``n``-event shard."""
    layout: Dict[str, Tuple[int, int]] = {}
    offset = 0
    for name in _INT64_SEGMENTS:
        layout[name] = (offset, 8 * n)
        offset += 8 * n
    layout["kinds"] = (offset, n)
    return layout


def shard_nbytes(n: int) -> int:
    """Total buffer size for an ``n``-event shard (33 bytes/event)."""
    return 33 * n


def block_name(root: str, generation: str, what: str) -> str:
    """Deterministic shm block name for ``(workdir root, generation)``.

    The root digest keys the partition's identity; the generation token
    (random per ``partition_events`` call, persisted in ``meta.json``)
    keeps a re-partition of the same root from colliding with a crashed
    predecessor's blocks.
    """
    digest = hashlib.sha1(
        os.path.abspath(root).encode("utf-8", "surrogatepass")
    ).hexdigest()[:12]
    return f"{BLOCK_PREFIX}{digest}-{generation}-{what}"


class _suppress_tracking:
    """Attach-side guard: stop ``SharedMemory(name=...)`` from registering
    with the resource tracker (the stdlib registers even for attaches,
    which makes every worker exit enqueue an unlink it must not own)."""

    _lock = threading.Lock()

    def __enter__(self):
        from multiprocessing import resource_tracker

        self._lock.acquire()
        self._rt = resource_tracker
        self._register = resource_tracker.register
        self._unregister = resource_tracker.unregister
        resource_tracker.register = lambda *a, **k: None
        resource_tracker.unregister = lambda *a, **k: None
        return self

    def __exit__(self, *exc):
        self._rt.register = self._register
        self._rt.unregister = self._unregister
        self._lock.release()
        return False


def _attach_untracked(name: str) -> "_shm.SharedMemory":
    with _suppress_tracking():
        return _shm.SharedMemory(name=name)


def _create_block(name: str, size: int) -> "_shm.SharedMemory":
    """Create (and own) one block; a stale same-named block from a crashed
    run is unlinked and replaced."""
    size = max(1, size)
    try:
        block = _shm.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        with _suppress_tracking():
            stale = _shm.SharedMemory(name=name)
            stale.close()
            stale.unlink()
        block = _shm.SharedMemory(name=name, create=True, size=size)
    with _OWNED_LOCK:
        _OWNED[name] = block
    return block


def release_names(names: List[str]) -> None:
    """Unlink the named blocks, wherever they were created.

    Owned blocks go through their registered handles (unlinking also
    unregisters them from the resource tracker, exactly once); foreign
    blocks — a sweeper cleaning up after a crashed sibling process — are
    unlinked without touching this process's tracker at all.
    """
    if _shm is None:
        return
    for name in names:
        with _OWNED_LOCK:
            owned = _OWNED.pop(name, None)
        if owned is not None:
            try:
                owned.close()
                owned.unlink()
            except (OSError, FileNotFoundError):
                pass
            continue
        try:
            with _suppress_tracking():
                foreign = _shm.SharedMemory(name=name)
                foreign.close()
                foreign.unlink()
        except (OSError, FileNotFoundError, ValueError):
            pass


def release_blocks(meta: Optional[Dict]) -> None:
    """Release every shm block a partition's metadata names (no-op for
    the mmap transport and for pre-v3 metadata)."""
    if not meta or meta.get("transport") != "shm":
        return
    blocks = meta.get("blocks") or {}
    names = list(blocks.get("shards") or [])
    if blocks.get("intern"):
        names.append(blocks["intern"])
    release_names(names)


def leaked_blocks() -> List[str]:
    """Names of every live ``repro3-`` shm block on this host.

    Linux-specific (scans ``/dev/shm``); returns ``[]`` where that view
    does not exist.  The chaos suite asserts this is empty after
    kill-storms — the supervised failure paths must clean up without
    relying on the resource tracker's exit-time backstop.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(
        entry for entry in entries if entry.startswith(BLOCK_PREFIX)
    )


def reset_process_caches() -> None:
    """Drop the per-process intern cache (tests and long-lived daemons)."""
    with _INTERN_LOCK:
        _INTERN_CACHE.clear()


# -- writer side ---------------------------------------------------------------


class ShardAssembler:
    """Copies spill frames into the final v3 buffers, one shard at a time.

    The partitioner streams events into per-shard spill files (bounded
    memory: one batch per shard in flight), which fixes the per-shard
    event counts; this class then lays each shard out as the flat
    segments above, in a shm block or an mmap'd ``shard_NNNN.bin``.
    """

    def __init__(self, workdir, transport: str, generation: str) -> None:
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of "
                f"{TRANSPORTS}"
            )
        self.workdir = workdir
        self.transport = transport
        self.generation = generation
        self.block_names: List[str] = []
        self.shard_bytes: List[int] = []

    def assemble(self, shard: int, spill_path: str, n: int) -> None:
        """Lay one shard's spill frames out as its final v3 buffer."""
        total = shard_nbytes(n)
        layout = shard_layout(n)
        if self.transport == "shm":
            name = block_name(self.workdir.root, self.generation,
                              f"{shard:04d}")
            block = _create_block(name, total)
            target = block.buf
            self.block_names.append(name)
        else:
            path = self.workdir.shard_path(shard)
            with open(path, "wb") as stream:
                stream.truncate(max(1, total))
            handle = open(path, "r+b")
            m = mmap.mmap(handle.fileno(), max(1, total))
            target = memoryview(m)
        self.shard_bytes.append(total)
        offsets = {
            "indices": layout["indices"][0],
            "tids": layout["tids"][0],
            "target_ids": layout["target_ids"][0],
            "site_ids": layout["site_ids"][0],
            "kinds": layout["kinds"][0],
        }
        try:
            with open(spill_path, "rb") as spill:
                while True:
                    header = spill.read(_FRAME_HEADER.size)
                    if not header:
                        break
                    (count,) = _FRAME_HEADER.unpack(header)
                    for segment, width in (
                        ("indices", 8), ("kinds", 1), ("tids", 8),
                        ("target_ids", 8), ("site_ids", 8),
                    ):
                        chunk = spill.read(width * count)
                        if len(chunk) != width * count:
                            raise OSError(
                                f"truncated spill file {spill_path!r}"
                            )
                        offset = offsets[segment]
                        target[offset:offset + len(chunk)] = chunk
                        offsets[segment] = offset + len(chunk)
        finally:
            if self.transport == "shm":
                # The creating process keeps the handle (in _OWNED) for
                # cleanup but drops its mapping: workers map on attach.
                target = None  # noqa: F841 - drop the exported view
            else:
                target.release()
                m.flush()
                m.close()
                handle.close()
        os.unlink(spill_path)

    def write_intern_block(self, targets: list, sites: list) -> Optional[str]:
        """Publish the pickled intern tables as a block (shm only); the
        durable ``intern.bin`` copy is written by the caller either way."""
        if self.transport != "shm":
            return None
        blob = pickle.dumps((targets, sites),
                            protocol=pickle.HIGHEST_PROTOCOL)
        name = block_name(self.workdir.root, self.generation, "intern")
        block = _create_block(name, len(blob))
        block.buf[: len(blob)] = blob
        return name

    def abort(self) -> None:
        """Partitioning failed mid-way: release whatever was created."""
        release_names(list(self.block_names))
        intern = block_name(self.workdir.root, self.generation, "intern")
        release_names([intern])


# -- reader side ---------------------------------------------------------------


class ShardView:
    """A zero-copy view over one shard's v3 buffer.

    ``columns()`` returns a :class:`ColumnarTrace` whose columns are
    ``memoryview`` casts straight into the transport buffer plus the
    original-index column — no event is deserialized, no byte is copied
    (the fused kernels' one ``kinds.tobytes()`` aside).  The view keeps
    the mapping alive; call :meth:`close` when analysis is done so pooled
    worker processes do not accumulate mappings and file descriptors.
    """

    def __init__(self, transport: str, n: int, nbytes: int,
                 base: memoryview, closer) -> None:
        self.transport = transport
        self.n = n
        self.nbytes = nbytes
        self._base = base
        self._closer = closer
        self._casts: List[memoryview] = []

    def _segment(self, name: str, fmt: str) -> memoryview:
        offset, length = shard_layout(self.n)[name]
        cast = self._base[offset:offset + length].cast(fmt)
        self._casts.append(cast)
        return cast

    def columns(
        self, intern: Tuple[list, list]
    ) -> Tuple[ColumnarTrace, memoryview]:
        """``(ColumnarTrace over the buffer, original-index column)``."""
        targets, sites = intern
        indices = self._segment("indices", "q")
        trace = ColumnarTrace.from_buffers(
            kinds=self._segment("kinds", "b"),
            tids=self._segment("tids", "q"),
            target_ids=self._segment("target_ids", "q"),
            site_ids=self._segment("site_ids", "q"),
            targets=targets,
            sites=sites,
            owner=self,
        )
        return trace, indices

    def close(self) -> None:
        """Release every cast, the base view, and the mapping."""
        for cast in self._casts:
            try:
                cast.release()
            except BufferError:  # a consumer still holds a sub-view
                return
        self._casts.clear()
        if self._base is not None:
            try:
                self._base.release()
            except BufferError:
                return
            self._base = None
        if self._closer is not None:
            closer, self._closer = self._closer, None
            closer()

    def __del__(self):  # noqa: D105 - GC fallback for unpinned views
        # Views pinned on a ColumnarTrace (load_shard_columns) have no
        # explicit close(); release our casts before the underlying
        # SharedMemory/mmap finalizers run, or their __del__ would hit
        # "cannot close: exported pointers exist" at GC time.
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter shutdown
            pass


def attach_view(workdir, meta: Dict, shard: int) -> ShardView:
    """Attach one shard's buffer through the transport ``meta`` records."""
    transport = meta.get("transport", "mmap")
    n = meta["shard_events"][shard]
    total = shard_nbytes(n)
    if transport == "shm":
        names = (meta.get("blocks") or {}).get("shards") or []
        try:
            name = names[shard]
        except IndexError:
            raise FileNotFoundError(
                f"partition metadata names no shm block for shard {shard}"
            )
        block = _attach_untracked(name)
        if block.size < total:
            block.close()
            raise OSError(
                f"shm block {name!r} is {block.size} bytes; shard {shard} "
                f"needs {total}"
            )
        base = block.buf[:total] if total else block.buf[:0]

        def closer(block=block):
            block.close()

        return ShardView(transport, n, total, base, closer)
    path = workdir.shard_path(shard)
    handle = open(path, "rb")
    if total:
        m = mmap.mmap(handle.fileno(), total, access=mmap.ACCESS_READ)
        base = memoryview(m)

        def closer(m=m, handle=handle):
            m.close()
            handle.close()

    else:
        base = memoryview(b"")

        def closer(handle=handle):
            handle.close()

    return ShardView(transport, n, total, base, closer)


def load_intern(workdir, meta: Optional[Dict] = None) -> Tuple[list, list]:
    """The partition-wide intern tables, cached per process.

    With the shm transport the tables come out of the intern block (no
    disk read in workers); the mmap transport — and any fallback — reads
    the durable ``intern.bin``.  The cache key includes the partition
    generation, so a re-partitioned root is never served stale tables.
    """
    if meta is None:
        meta = workdir.read_meta() or {}
    key = (os.path.abspath(workdir.root), str(meta.get("generation", "")))
    with _INTERN_LOCK:
        cached = _INTERN_CACHE.get(key)
    if cached is not None:
        return cached
    tables = None
    blocks = meta.get("blocks") or {}
    if meta.get("transport") == "shm" and blocks.get("intern"):
        try:
            block = _attach_untracked(blocks["intern"])
        except (OSError, FileNotFoundError):
            block = None
        if block is not None:
            try:
                tables = pickle.loads(bytes(block.buf))
            finally:
                block.close()
    if tables is None:
        tables = workdir.read_intern()
    with _INTERN_LOCK:
        _INTERN_CACHE[key] = tables
        # Long-lived pool workers serve many partitions; keep the cache
        # from growing without bound.
        while len(_INTERN_CACHE) > 8:
            _INTERN_CACHE.pop(next(iter(_INTERN_CACHE)))
    return tables
