"""Self-healing shard supervision: retry, watchdog, quarantine, fallback.

PR 3's engine treated the first worker exception as fatal: one poison
shard, one OOM-killed pool process, or one hung worker failed the whole
``repro check`` run.  This module wraps shard execution in a supervisor
that keeps the run alive under partial failure:

* **Bounded retry with jittered backoff.**  A failed shard attempt is
  retried up to :attr:`RetryPolicy.max_attempts` times; the backoff
  delay is deterministic (seeded per ``(shard, attempt)``) so chaos runs
  replay identically.
* **Pool self-healing.**  A dead worker breaks its
  ``ProcessPoolExecutor``; an owned pool is rebuilt in place (shards
  already checkpointed on disk stay done), a borrowed pool — the
  daemon's persistent executor — falls back to the in-process
  sequential loop.  Both paths are recorded as
  ``repro_degraded_total{reason}``.
* **Shard watchdog.**  With :attr:`RetryPolicy.shard_timeout_s`, an
  in-flight shard that exceeds its deadline is killed (owned pool) or
  abandoned (borrowed pool — its late checkpoint write is atomic and
  harmless) and counted as a failed attempt.
* **Poison-shard quarantine.**  A shard that exhausts its attempts is
  quarantined: the run completes on the surviving shards and reports an
  explicit ``degraded`` block (never a fabricated clean result); the
  CLI maps it to exit code 4.  A run with *no* surviving shards raises
  :class:`QuarantineExhausted`.
* **Run deadline.**  :attr:`RetryPolicy.deadline_s` bounds the whole
  supervised run (the daemon's ``--job-timeout``); exceeding it raises
  :class:`EngineTimeout` after the owned pool is torn down.

Drain semantics are unchanged from PR 3: SIGTERM lets in-flight shards
checkpoint, then :class:`~repro.engine.worker.DrainRequested` propagates
— a drain is an orderly stop, not a failure, so it is never retried.

Interaction with the v3 shard transport: none of these failure paths can
leak shared-memory blocks, by construction.  Workers only ever *attach*
(untracked — see :mod:`repro.engine.transport`), so a worker killed by
``worker.crash``/SIGKILL, a hung worker shot by the watchdog, and a
quarantined shard's retries all die without owning a single block; the
OS reclaims their mappings with the process.  The blocks themselves
belong to the partitioning parent, whose engine teardown
(``Workdir.release_blocks``) runs on every exit from ``_run`` — clean,
drained, quarantined, or raising — and the stdlib resource tracker
remains the kill -9 backstop.  ``tests/test_faults.py`` asserts
``leaked_blocks() == []`` after a kill-storm.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import multiprocessing
import random
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.engine.checkpoint import Workdir
from repro.engine.worker import DrainRequested, drain_requested, run_shard

__all__ = [
    "EngineTimeout",
    "QuarantineExhausted",
    "RetryPolicy",
    "ShardFailure",
    "backoff_delay",
    "run_supervised",
]


class EngineTimeout(RuntimeError):
    """A supervised run exceeded its overall deadline.

    Finished shards are checkpointed; re-running with the same working
    directory resumes from them (the daemon uses this to requeue stuck
    jobs without losing progress).
    """


class QuarantineExhausted(RuntimeError):
    """Every shard was quarantined — there is no partial result to report."""


class RetryPolicy:
    """Knobs for the supervisor; the defaults are the CLI's defaults."""

    __slots__ = (
        "max_attempts", "backoff_base_s", "backoff_cap_s",
        "shard_timeout_s", "deadline_s", "max_pool_rebuilds", "seed",
    )

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        shard_timeout_s: Optional[float] = None,
        deadline_s: Optional[float] = None,
        max_pool_rebuilds: int = 3,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.shard_timeout_s = shard_timeout_s
        self.deadline_s = deadline_s
        self.max_pool_rebuilds = max_pool_rebuilds
        self.seed = seed


class ShardFailure:
    """The post-mortem of one quarantined shard."""

    __slots__ = ("shard", "attempts", "error")

    def __init__(self, shard: int, attempts: int, error: str) -> None:
        self.shard = shard
        self.attempts = attempts
        self.error = error

    def to_json(self) -> Dict:
        return {
            "shard": self.shard,
            "attempts": self.attempts,
            "error": self.error,
        }


def backoff_delay(policy: RetryPolicy, shard: int, attempt: int) -> float:
    """Exponential backoff with deterministic jitter.

    Jitter is drawn from a ``Random`` seeded by ``(policy seed, shard,
    attempt)`` — retries of different shards decorrelate (no thundering
    herd against a recovering disk) while any given run replays the
    exact same schedule.
    """
    rng = random.Random(f"{policy.seed}:{shard}:{attempt}")
    raw = min(policy.backoff_cap_s, policy.backoff_base_s * (2 ** attempt))
    return raw * (0.5 + rng.random())


def _pick_start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _kill_pool(pool: concurrent.futures.Executor) -> None:
    """Hard-stop an owned pool, hung workers included.

    ``shutdown`` alone waits on (or abandons) running workers; a hung
    shard needs its process killed.  ``_processes`` is stdlib-internal
    but stable across the supported CPython range; when absent we fall
    back to a plain abandon-shutdown.
    """
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.kill()
            except OSError:  # already gone
                pass
    pool.shutdown(wait=False, cancel_futures=True)


class _Supervisor:
    def __init__(
        self,
        root: str,
        pending: List[int],
        tool: str,
        tool_kwargs: Optional[Dict],
        classify: bool,
        kernel: str,
        policy: RetryPolicy,
        trace: Optional[Dict] = None,
    ) -> None:
        self.root = root
        self.pending = pending
        self.tool = tool
        self.tool_kwargs = tool_kwargs
        self.classify = classify
        self.kernel = kernel
        self.policy = policy
        self.trace = trace
        self.workdir = Workdir(root)
        self.completed: set = set()
        self.failures: Dict[int, ShardFailure] = {}
        self.deadline = (
            time.monotonic() + policy.deadline_s
            if policy.deadline_s is not None
            else None
        )

    # -- shared bookkeeping ---------------------------------------------------

    def check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise EngineTimeout(
                f"engine run exceeded its {self.policy.deadline_s:g}s "
                "deadline; finished shards are checkpointed — resume with "
                "the same working directory"
            )

    def disk_complete(self, shard: int) -> bool:
        """Disk is the source of truth after a pool break: a worker may
        have checkpointed its shard and died before reporting."""
        return self.workdir.valid_result(self.tool, shard)

    def drain_now(self) -> None:
        done = sum(1 for shard in self.pending if self.disk_complete(shard))
        raise DrainRequested(completed=done, total=len(self.pending))

    def submit_args(self, shard: int, attempt: int) -> Tuple:
        # The trailing trace context rides the same picklable tuple the
        # worker args do — that is the whole cross-process propagation
        # mechanism (fork, spawn, and the in-process fallback alike).
        return (
            self.root, shard, self.tool, self.tool_kwargs,
            self.classify, self.kernel, attempt, self.trace,
        )

    def handle_failure(self, shard: int, attempt: int, error: BaseException,
                       delayed: List) -> None:
        """A failed attempt: schedule a retry or quarantine the shard."""
        attempts_used = attempt + 1
        if attempts_used >= self.policy.max_attempts:
            self.quarantine(shard, attempts_used, error)
            return
        obs.record_degraded(
            "shard_retried", tool=self.tool, shard=shard,
            attempt=attempt, error=str(error),
        )
        ready_at = time.monotonic() + backoff_delay(
            self.policy, shard, attempt
        )
        heapq.heappush(delayed, (ready_at, shard, attempts_used))

    def quarantine(self, shard: int, attempts: int,
                   error: BaseException) -> None:
        self.failures[shard] = ShardFailure(shard, attempts, str(error))
        obs.record_degraded(
            "shard_quarantined", tool=self.tool, shard=shard,
            attempts=attempts, error=str(error),
        )

    # -- sequential execution (jobs=1, and the pool's fallback) ---------------

    def run_sequential(self, work: List[Tuple[int, int]]) -> None:
        """Run ``(shard, attempt)`` items in-process with the retry loop."""
        for shard, attempt in work:
            while True:
                if drain_requested():
                    self.drain_now()
                self.check_deadline()
                try:
                    run_shard(*self.submit_args(shard, attempt))
                except DrainRequested:
                    raise
                except Exception as error:
                    attempt += 1
                    if attempt >= self.policy.max_attempts:
                        self.quarantine(shard, attempt, error)
                        break
                    obs.record_degraded(
                        "shard_retried", tool=self.tool, shard=shard,
                        attempt=attempt - 1, error=str(error),
                    )
                    time.sleep(
                        backoff_delay(self.policy, shard, attempt - 1)
                    )
                else:
                    self.completed.add(shard)
                    break

    # -- pool execution -------------------------------------------------------

    def make_pool(self, jobs: int) -> concurrent.futures.Executor:
        context = multiprocessing.get_context(_pick_start_method())
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, max(1, len(self.pending))),
            mp_context=context,
        )

    def run_pool(
        self,
        jobs: int,
        executor: Optional[concurrent.futures.Executor],
    ) -> None:
        owns_pool = executor is None
        pool = self.make_pool(jobs) if owns_pool else executor
        max_inflight = getattr(pool, "_max_workers", None) or max(1, jobs)
        waiting = deque((shard, 0) for shard in self.pending)
        delayed: List = []  # heap of (ready_at, shard, attempt)
        inflight: Dict = {}  # future -> (shard, attempt, started)
        rebuilds = 0
        try:
            while waiting or delayed or inflight:
                self.check_deadline()
                draining = drain_requested()
                if draining and not inflight:
                    self.drain_now()
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _, shard, attempt = heapq.heappop(delayed)
                    waiting.append((shard, attempt))
                submit_failed = False
                while (
                    waiting and not draining
                    and len(inflight) < max_inflight
                ):
                    shard, attempt = waiting.popleft()
                    try:
                        future = pool.submit(
                            run_shard, *self.submit_args(shard, attempt)
                        )
                    except (concurrent.futures.process.BrokenProcessPool,
                            RuntimeError):
                        # The pool broke between loop turns (or was shut
                        # down under us): re-queue the item and let the
                        # broken-pool handling below reconcile via disk.
                        waiting.appendleft((shard, attempt))
                        submit_failed = True
                        break
                    inflight[future] = (shard, attempt, time.monotonic())
                if not inflight and not submit_failed:
                    if delayed:
                        time.sleep(
                            min(0.05, max(0.0,
                                          delayed[0][0] - time.monotonic()))
                        )
                    continue
                done: set = set()
                if inflight:
                    done, _ = concurrent.futures.wait(
                        list(inflight), timeout=0.05,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                broken = submit_failed
                unresolved: List[Tuple[int, int]] = []
                for future in done:
                    shard, attempt, _started = inflight.pop(future)
                    try:
                        future.result()
                    except concurrent.futures.process.BrokenProcessPool:
                        broken = True
                        unresolved.append((shard, attempt))
                    except concurrent.futures.CancelledError:
                        unresolved.append((shard, attempt))
                        broken = True
                    except Exception as error:
                        self.handle_failure(shard, attempt, error, delayed)
                    else:
                        self.completed.add(shard)
                if broken:
                    # A worker exiting after a drain checkpoint breaks the
                    # pool by design; translate only on a real drain.
                    if drain_requested():
                        self.drain_now()
                    unresolved.extend(
                        (shard, attempt)
                        for shard, attempt, _ in inflight.values()
                    )
                    inflight.clear()
                    for shard, attempt in unresolved:
                        if self.disk_complete(shard):
                            # Checkpointed before the worker died: done.
                            self.completed.add(shard)
                        else:
                            self.handle_failure(
                                shard, attempt,
                                RuntimeError(
                                    "worker process died before "
                                    f"checkpointing shard {shard}"
                                ),
                                delayed,
                            )
                    if owns_pool:
                        _kill_pool(pool)
                        rebuilds += 1
                        if rebuilds > self.policy.max_pool_rebuilds:
                            self._fall_back_sequential(
                                waiting, delayed, "pool kept breaking"
                            )
                            return
                        obs.record_degraded(
                            "pool_rebuilt", tool=self.tool, rebuilds=rebuilds
                        )
                        pool = self.make_pool(jobs)
                        max_inflight = pool._max_workers
                    else:
                        # The borrowed (persistent) pool is broken; its
                        # owner will rebuild it between jobs.  Finish this
                        # run in-process.
                        self._fall_back_sequential(
                            waiting, delayed, "borrowed pool broke"
                        )
                        return
                    continue
                if self.policy.shard_timeout_s is not None:
                    rebuilt = self._watchdog(
                        pool, owns_pool, inflight, waiting, delayed
                    )
                    if rebuilt is not None:
                        pool = rebuilt
                        max_inflight = pool._max_workers
        finally:
            if owns_pool:
                pool.shutdown(wait=False, cancel_futures=True)

    def _watchdog(self, pool, owns_pool, inflight, waiting, delayed):
        """Fail in-flight shards that exceeded the per-shard deadline.

        Returns a replacement pool when the overdue shard forced a kill
        of an owned pool, ``None`` otherwise.
        """
        timeout = self.policy.shard_timeout_s
        now = time.monotonic()
        overdue = [
            (future, entry)
            for future, entry in inflight.items()
            if now - entry[2] > timeout
        ]
        if not overdue:
            return None
        error = EngineTimeout(
            f"shard exceeded its {timeout:g}s deadline"
        )
        if not owns_pool:
            # Can't kill a borrowed pool's workers: abandon the futures
            # (a late checkpoint write is atomic and simply wins the race
            # with the retry — both payloads are valid) and retry.
            for future, (shard, attempt, _) in overdue:
                inflight.pop(future)
                self.handle_failure(shard, attempt, error, delayed)
            return None
        # Owned pool: the only way to stop a hung worker is to kill the
        # pool.  Overdue shards count as failed attempts; other in-flight
        # shards are requeued at the same attempt (they were healthy).
        overdue_shards = {shard for _, (shard, _, _) in overdue}
        workers = pool._max_workers
        _kill_pool(pool)
        for future, (shard, attempt, _) in list(inflight.items()):
            inflight.pop(future)
            if self.disk_complete(shard):
                self.completed.add(shard)
            elif shard in overdue_shards:
                self.handle_failure(shard, attempt, error, delayed)
            else:
                waiting.append((shard, attempt))
        obs.record_degraded(
            "pool_rebuilt", tool=self.tool, cause="shard_timeout"
        )
        return self.make_pool(workers)

    def _fall_back_sequential(self, waiting, delayed, cause: str) -> None:
        """Finish the remaining shards in-process (the last resort)."""
        remaining = list(waiting)
        remaining.extend(
            (shard, attempt) for _, shard, attempt in sorted(delayed)
        )
        remaining = [
            (shard, attempt)
            for shard, attempt in remaining
            if shard not in self.completed and shard not in self.failures
        ]
        obs.record_degraded(
            "pool_fallback", tool=self.tool, cause=cause,
            remaining=len(remaining),
        )
        self.run_sequential(sorted(remaining))


def run_supervised(
    root: str,
    pending: List[int],
    tool: str,
    tool_kwargs: Optional[Dict],
    jobs: int,
    classify: bool,
    kernel: str,
    executor: Optional[concurrent.futures.Executor] = None,
    policy: Optional[RetryPolicy] = None,
    trace: Optional[Dict] = None,
) -> List[ShardFailure]:
    """Analyze ``pending`` shards under supervision.

    ``trace`` is the dispatcher's trace context (from
    ``obs.propagation_context``); it is forwarded verbatim to every
    shard attempt so worker spans join the submitting trace.

    Returns the quarantined shards' failures (empty on a clean run);
    raises :class:`DrainRequested` on SIGTERM drain and
    :class:`EngineTimeout` past the run deadline.  Results land in the
    working directory's checkpoints either way.
    """
    if policy is None:
        policy = RetryPolicy()
    supervisor = _Supervisor(
        root, pending, tool, tool_kwargs, classify, kernel, policy,
        trace=trace,
    )
    if not pending:
        return []
    if executor is None and (jobs <= 1 or len(pending) <= 1):
        supervisor.run_sequential([(shard, 0) for shard in pending])
    else:
        supervisor.run_pool(jobs, executor)
    return [
        supervisor.failures[shard] for shard in sorted(supervisor.failures)
    ]
