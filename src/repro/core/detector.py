"""The abstract online-analysis interface shared by all seven tools.

The paper implements Empty, Eraser, Goldilocks, BasicVC, DJIT+, MultiRace and
FastTrack "on top of the same framework ... thus providing a true
apples-to-apples comparison".  This module is that common framework seen from
the analysis side: a :class:`Detector` consumes an event stream one operation
at a time, updates its shadow state, and records :class:`RaceWarning`\\ s.

The evaluation infrastructure hangs off :class:`CostStats`:

* ``vc_allocs`` / ``vc_ops`` — the Table 2 columns (vector clocks allocated,
  O(n)-time vector-clock operations performed);
* ``rules``   — per-rule firing counts, reproducing the Figure 2 / Figure 5
  frequency annotations;
* event-kind counts — the operation mix (82.3% reads, 14.5% writes, 3.3%
  other in the paper's benchmarks).

Warning deduplication follows the paper's reporting discipline: "the tools
report at most one race for each field of each class, and at most one race
for each array access in the program source code" — here, at most one
warning per shadow key (variable, or object under coarse granularity) and at
most one per source site.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional

from repro.trace import events as ev


@dataclass
class CostStats:
    """Architecture-independent cost counters for one detector run."""

    events: int = 0
    reads: int = 0
    writes: int = 0
    syncs: int = 0
    boundaries: int = 0  # enter/exit markers (not part of the Figure 2 mix)
    vc_allocs: int = 0  # vector clocks allocated (Table 2, left)
    vc_ops: int = 0  # O(n)-time VC operations performed (Table 2, right)
    fast_ops: int = 0  # O(1) epoch operations on access fast paths
    rules: Counter = field(default_factory=Counter)

    def rule(self, name: str) -> None:
        self.rules[name] += 1

    def merge(self, other: "CostStats") -> "CostStats":
        """Fold another run's counters into this one (in place).

        This is the primitive the sharded engine uses to combine per-shard
        detector stats: every counter is summed, which makes the merged
        numbers reflect the *work actually performed* across all shards.
        Because synchronization events are broadcast to every shard, their
        contributions (``syncs``, sync-side ``vc_ops``/``vc_allocs``) appear
        once per shard; :func:`repro.engine.merge.merge_stats` corrects the
        event-mix counters back to trace-accurate totals.
        """
        self.events += other.events
        self.reads += other.reads
        self.writes += other.writes
        self.syncs += other.syncs
        self.boundaries += other.boundaries
        self.vc_allocs += other.vc_allocs
        self.vc_ops += other.vc_ops
        self.fast_ops += other.fast_ops
        self.rules.update(other.rules)
        return self

    def summary(self) -> Dict[str, object]:
        data = {
            "events": self.events,
            "reads": self.reads,
            "writes": self.writes,
            "syncs": self.syncs,
            "boundaries": self.boundaries,
            "vc_allocs": self.vc_allocs,
            "vc_ops": self.vc_ops,
            "fast_ops": self.fast_ops,
        }
        data.update({f"rule:{k}": v for k, v in sorted(self.rules.items())})
        return data


@dataclass(frozen=True)
class RaceWarning:
    """One reported (potential) race.

    ``kind`` is one of ``write-write``, ``write-read``, ``read-write`` for
    the precise tools, or a tool-specific label (e.g. Eraser's
    ``lockset-empty``).  ``prior`` is a human-readable description of the
    earlier access the current one conflicts with.
    """

    var: Hashable
    kind: str
    tid: int
    prior: str
    event_index: int
    site: Optional[Hashable] = None

    def __str__(self) -> str:
        where = f" at {self.site}" if self.site is not None else ""
        return (
            f"{self.kind} race on {self.var!r}: thread {self.tid} "
            f"(event #{self.event_index}){where} conflicts with {self.prior}"
        )


def fine_grain(var: Hashable) -> Hashable:
    """Default granularity: every variable gets its own shadow state."""
    return var


def coarse_grain(var: Hashable) -> Hashable:
    """Coarse granularity (Table 3): all elements of an object share one
    shadow state.

    The workloads name memory locations ``(array, owner, index)`` for
    per-object arrays and ``(field, owner)`` for scalar fields of a
    per-thread object.  Coarse mode collapses the former to the object
    ``(array, owner)`` — one shadow word per array instead of per element —
    while scalar fields and bare names keep their identity (an object is
    never merged with another object, matching RoadRunner's per-object
    shadow mode)."""
    if isinstance(var, tuple) and len(var) >= 3:
        return var[:2]
    return var


class Detector:
    """Base class for all dynamic analyses over the Figure 1 event stream.

    Subclasses override the ``on_*`` hooks.  The base class maintains thread
    bookkeeping counters, the warning list, and dispatch; it holds **no**
    happens-before state, so imprecise tools like Eraser pay nothing for the
    machinery they do not use.
    """

    name = "abstract"
    #: True for tools that never report false alarms (used in reports).
    precise = False

    def __init__(
        self,
        shadow_key: Callable[[Hashable], Hashable] = fine_grain,
    ) -> None:
        self.shadow_key = shadow_key
        self.stats = CostStats()
        self.warnings: List[RaceWarning] = []
        self.suppressed_warnings = 0
        self._warned_keys: set = set()
        self._warned_sites: set = set()
        self._index = -1
        self._dispatch = {
            ev.READ: self.on_read,
            ev.WRITE: self.on_write,
            ev.ACQUIRE: self.on_acquire,
            ev.RELEASE: self.on_release,
            ev.FORK: self.on_fork,
            ev.JOIN: self.on_join,
            ev.VOLATILE_READ: self.on_volatile_read,
            ev.VOLATILE_WRITE: self.on_volatile_write,
            ev.BARRIER_RELEASE: self.on_barrier_release,
            ev.ENTER: self.on_enter,
            ev.EXIT: self.on_exit,
            ev.TASK_SPAWN: self.on_task_spawn,
            ev.TASK_AWAIT: self.on_task_await,
            ev.FINISH_BEGIN: self.on_finish_begin,
            ev.FINISH_END: self.on_finish_end,
        }

    # -- driving ------------------------------------------------------------

    def process(self, trace: Iterable[ev.Event]) -> "Detector":
        """Run the analysis over an entire event stream in one pass.

        The operation-mix tallies are folded into the same loop — the
        stream is walked exactly once and never materialized, so one-shot
        iterables (``iter_load``, generators) stream through.
        :meth:`absorb_kind_counts` remains for callers that drive
        :meth:`handle` event by event themselves.
        """
        stats = self.stats
        READ = ev.READ
        WRITE = ev.WRITE
        ENTER = ev.ENTER
        EXIT = ev.EXIT
        reads = writes = syncs = boundaries = total = 0
        for event in trace:
            kind = event.kind
            if kind == READ:
                reads += 1
            elif kind == WRITE:
                writes += 1
            elif kind == ENTER or kind == EXIT:
                boundaries += 1
            else:
                syncs += 1
            total += 1
            self.handle(event)
        stats.events += total
        stats.reads += reads
        stats.writes += writes
        stats.syncs += syncs
        stats.boundaries += boundaries
        return self

    def handle(self, event: ev.Event, index: Optional[int] = None) -> None:
        """Feed a single event to the analysis.

        Deliberately minimal: per-event kind tallies are taken in bulk by
        :meth:`absorb_kind_counts` so the analysis hot paths are measured,
        not the bookkeeping.

        ``index`` overrides the running event counter: the sharded engine
        passes each event's *original* trace position so that warnings from
        a shard worker (which sees only a sub-stream) carry the same
        ``event_index`` a single-threaded run would report.
        """
        if index is None:
            self._index += 1
        else:
            self._index = index
        self._dispatch[event.kind](event)

    @property
    def events_handled(self) -> int:
        """How many events this detector has consumed (independent of the
        bulk kind counters, which are filled by :meth:`absorb_kind_counts`)."""
        return self._index + 1

    def absorb_kind_counts(self, events: Iterable[ev.Event]) -> None:
        """Fill the operation-mix counters from a finished event stream."""
        stats = self.stats
        for event in events:
            kind = event.kind
            stats.events += 1
            if kind == ev.READ:
                stats.reads += 1
            elif kind == ev.WRITE:
                stats.writes += 1
            elif kind == ev.ENTER or kind == ev.EXIT:
                stats.boundaries += 1
            else:
                stats.syncs += 1

    # -- warning reporting ----------------------------------------------------

    def report(
        self,
        event: ev.Event,
        kind: str,
        prior: str,
    ) -> None:
        """Record a warning, deduplicated per shadow key and per site."""
        key = self.shadow_key(event.target)
        if key in self._warned_keys or (
            event.site is not None and event.site in self._warned_sites
        ):
            # Even when the report is suppressed (same field or same source
            # location already warned), remember that this variable raced so
            # a later access at a third location does not re-report it.
            self._warned_keys.add(key)
            self.suppressed_warnings += 1
            return
        self._warned_keys.add(key)
        if event.site is not None:
            self._warned_sites.add(event.site)
        self.warnings.append(
            RaceWarning(
                var=event.target,
                kind=kind,
                tid=event.tid,
                prior=prior,
                event_index=self._index,
                site=event.site,
            )
        )

    def has_warned(self, var: Hashable) -> bool:
        return self.shadow_key(var) in self._warned_keys

    @property
    def warning_count(self) -> int:
        return len(self.warnings)

    # -- memory accounting (Table 3) -----------------------------------------

    def shadow_memory_words(self) -> int:
        """Current shadow-state footprint in words; overridden by tools."""
        return 0

    def compact(self) -> int:
        """Drop shadow state that can no longer change the warning stream.

        The incremental monitor (:mod:`repro.watch`) calls this
        periodically so an unbounded live stream does not grow detector
        memory without bound.  Implementations must be *warning
        preserving*: after a compaction, the sequence of warnings emitted
        for any continuation of the stream is identical to what an
        uncompacted detector would emit.  Returns the number of shadow
        entries released; the base implementation keeps everything and
        returns 0, which is always sound.
        """
        return 0

    # -- event hooks (default: ignore) ----------------------------------------

    def on_read(self, event: ev.Event) -> None:  # pragma: no cover - trivial
        pass

    def on_write(self, event: ev.Event) -> None:  # pragma: no cover - trivial
        pass

    def on_acquire(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_release(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_fork(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_join(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_volatile_read(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_volatile_write(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_barrier_release(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_enter(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_exit(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_task_spawn(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_task_await(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_finish_begin(self, event: ev.Event) -> None:  # pragma: no cover
        pass

    def on_finish_end(self, event: ev.Event) -> None:  # pragma: no cover
        pass
