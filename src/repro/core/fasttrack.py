"""The FastTrack race detection algorithm (Figures 2, 3, 5).

FastTrack keeps, per variable ``x``:

* ``W_x`` — an **epoch** for the last write (all writes are totally ordered
  by happens-before until the first race, so one epoch suffices);
* ``R_x`` — an epoch for the last read while reads remain totally ordered,
  adaptively promoted to a full read vector clock when the variable becomes
  read-shared, and demoted back to an epoch when a write dominates all reads
  (`[FT WRITE SHARED]`).

The per-access rules (with the paper's measured firing frequencies):

=========================  =========  =============================================
rule                       frequency  effect
=========================  =========  =============================================
[FT READ SAME EPOCH]       63.4% rds  ``R_x == E(t)`` — nothing to do
[FT READ SHARED]           20.8% rds  read-shared: ``Rvc[t] := C_t(t)``
[FT READ EXCLUSIVE]        15.7% rds  ``R_x ≼ C_t`` — ``R_x := E(t)``
[FT READ SHARE]             0.1% rds  concurrent reads — allocate the read VC
[FT WRITE SAME EPOCH]      71.0% wrs  ``W_x == E(t)`` — nothing to do
[FT WRITE EXCLUSIVE]       28.9% wrs  epoch reads — two O(1) checks
[FT WRITE SHARED]           0.1% wrs  VC reads — one O(n) check, demote to epoch
=========================  =========  =============================================

Race checks: a read races with the last write unless ``W_x ≼ C_t``; a write
races with the last write unless ``W_x ≼ C_t`` and with prior reads unless
``R_x ≼ C_t`` (epoch mode) / ``Rvc ⊑ C_t`` (shared mode).  FastTrack is
precise — Theorem 1: it reports a warning iff the trace has a race — and it
guarantees to detect at least the first race on each variable.  After
reporting, the implementation updates the shadow state as if the access were
ordered and relies on per-variable deduplication, as real FastTrack
deployments do, so one root cause produces one report.

Constructor flags expose the paper's design choices for ablation studies
(Section 5 discussion / DESIGN.md §5):

* ``enable_fast_paths`` — disable to force the full rule body on every
  access (what the same-epoch fast paths save).
* ``shared_same_epoch`` — the extension of `[FT READ SAME EPOCH]` to
  read-shared variables the paper mentions (covers 78% of reads, "does not
  improve performance of our prototype perceptibly").
* ``demote_on_shared_write`` — disable the `[FT WRITE SHARED]` reset of
  ``R_x`` to ``⊥e`` to measure what adaptive demotion saves.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.epoch import (
    EPOCH_BOTTOM,
    READ_SHARED,
    epoch_clock,
    epoch_leq_vc,
    epoch_tid,
    format_epoch,
)
from repro.core.state import VarState
from repro.core.vcsync import VCSyncDetector
from repro.core.vectorclock import VectorClock
from repro.trace import events as ev


class FastTrack(VCSyncDetector):
    """The FastTrack detector — the paper's primary contribution."""

    name = "FastTrack"
    precise = True

    def __init__(
        self,
        enable_fast_paths: bool = True,
        shared_same_epoch: bool = False,
        demote_on_shared_write: bool = True,
        track_sites: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.vars: Dict[Hashable, VarState] = {}
        self.enable_fast_paths = enable_fast_paths
        self.shared_same_epoch = shared_same_epoch
        self.demote_on_shared_write = demote_on_shared_write
        #: Record the prior access's source site on the slow paths so race
        #: reports name both sides ("more precise error reporting", §4).
        #: Off by default: it adds a word per location and a store per
        #: non-same-epoch access, which the benchmarks should not pay.
        self.track_sites = track_sites

    def var(self, name: Hashable) -> VarState:
        key = self.shadow_key(name)
        state = self.vars.get(key)
        if state is None:
            state = VarState()
            self.vars[key] = state
        return state

    # -- reads (Figure 5, read handler) ----------------------------------------

    def on_read(self, event: ev.Event) -> None:
        stats = self.stats
        t = self.thread(event.tid)
        x = self.var(event.target)
        t_epoch = t.epoch
        clocks = t.vc.clocks

        # [FT READ SAME EPOCH] — the hottest path; its firing count is
        # derived as reads minus the other read rules (hot paths must not
        # touch counters, as in the paper's tuned implementation).
        if self.enable_fast_paths and x.read_epoch == t_epoch:
            return
        if (
            self.shared_same_epoch
            and x.read_epoch == READ_SHARED
            and x.read_vc.get(t.tid) == clocks[t.tid]
        ):
            # Optional extension: same-epoch reads of read-shared data.
            stats.rule("FT READ SAME EPOCH SHARED")
            return

        # write-read race?
        if not epoch_leq_vc(x.write_epoch, clocks):
            self.report(
                event,
                "write-read",
                f"write {format_epoch(x.write_epoch)}"
                + (f" at {x.write_site}" if x.write_site is not None else ""),
            )

        if x.read_epoch == READ_SHARED:
            stats.rule("FT READ SHARED")
            x.read_vc.set(t.tid, clocks[t.tid])
        elif epoch_leq_vc(x.read_epoch, clocks):
            stats.rule("FT READ EXCLUSIVE")
            x.read_epoch = t_epoch
            if self.track_sites:
                x.read_site = event.site
        else:
            # Concurrent with the previous read epoch: promote to a VC
            # recording both reads ([FT READ SHARE] — the slow path).
            stats.rule("FT READ SHARE")
            read_vc = VectorClock.bottom()
            stats.vc_allocs += 1
            read_vc.set(epoch_tid(x.read_epoch), epoch_clock(x.read_epoch))
            read_vc.set(t.tid, clocks[t.tid])
            x.read_vc = read_vc
            x.read_epoch = READ_SHARED

    # -- writes (Figure 5, write handler) ----------------------------------------

    def on_write(self, event: ev.Event) -> None:
        stats = self.stats
        t = self.thread(event.tid)
        x = self.var(event.target)
        t_epoch = t.epoch
        clocks = t.vc.clocks

        # [FT WRITE SAME EPOCH] — counted by derivation, like the read rule.
        if self.enable_fast_paths and x.write_epoch == t_epoch:
            return

        # write-write race?
        if not epoch_leq_vc(x.write_epoch, clocks):
            self.report(
                event,
                "write-write",
                f"write {format_epoch(x.write_epoch)}"
                + (f" at {x.write_site}" if x.write_site is not None else ""),
            )

        if x.read_epoch != READ_SHARED:
            stats.rule("FT WRITE EXCLUSIVE")
            # read-write race?
            if not epoch_leq_vc(x.read_epoch, clocks):
                self.report(
                    event,
                    "read-write",
                    f"read {format_epoch(x.read_epoch)}"
                    + (
                        f" at {x.read_site}"
                        if x.read_site is not None
                        else ""
                    ),
                )
        else:
            stats.rule("FT WRITE SHARED")
            # The one O(n) comparison on the write path (0.1% of writes).
            stats.vc_ops += 1
            if not x.read_vc.leq(t.vc):
                racer = self._some_concurrent_reader(x.read_vc, t.vc)
                self.report(event, "read-write", f"shared read by {racer}")
            if self.demote_on_shared_write:
                x.read_epoch = EPOCH_BOTTOM
                x.read_vc = None
        x.write_epoch = t_epoch
        if self.track_sites:
            x.write_site = event.site

    @staticmethod
    def _some_concurrent_reader(read_vc: VectorClock, cvc: VectorClock) -> str:
        for tid, clock in enumerate(read_vc.clocks):
            if clock > cvc.get(tid):
                return f"thread {tid} (clock {clock})"
        return "unknown thread"

    # -- memory accounting --------------------------------------------------------

    def shadow_memory_words(self) -> int:
        words = self.sync_shadow_words()
        for x in self.vars.values():
            words += x.shadow_words()
        return words

    # -- compaction (repro.watch) ----------------------------------------------

    def compact(self) -> int:
        """Release the shadow state of variables that already warned.

        Warning preserving (the :meth:`Detector.compact` contract): once a
        shadow key is in ``_warned_keys``, every future :meth:`report` on
        it is suppressed — it can neither emit a warning nor touch the
        site-dedup set — so however a recreated, bottom-initialized
        ``VarState`` evolves, the emitted warning stream is unchanged.
        Rule/op *statistics* for re-accessed warned variables may differ
        from an uncompacted run; only the warnings are guaranteed.
        """
        released = 0
        for key in self._warned_keys:
            if self.vars.pop(key, None) is not None:
                released += 1
        return released
