"""Shadow state attached to threads, variables, and locks (Figure 5).

The paper's RoadRunner framework lets a back-end tool hang instrumentation
state off every thread, lock object, and memory location of the target
program.  These classes are the FastTrack instances of that state:

* :class:`ThreadState` — the thread's vector clock ``C_t`` plus its cached
  current epoch ``E(t) = C_t(t)@t``.
* :class:`VarState`    — the write epoch ``W_x`` and the adaptive read state:
  either the read epoch ``R_x`` or, when ``R_x == READ_SHARED``, the read
  vector clock ``Rvc``.
* :class:`LockState`   — the vector clock ``L_m`` of the last release.

The VC-based detectors (BasicVC, DJIT+, MultiRace) define their own shadow
records in their modules; only the thread and lock state is shared, exactly
as in the paper where all tools sit on one optimized VC library.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.epoch import EPOCH_BOTTOM, make_epoch
from repro.core.vectorclock import VectorClock


class ThreadState:
    """Per-thread analysis state: ``tid``, ``C`` and the cached epoch.

    Invariant (asserted in tests): ``epoch == make_epoch(vc.get(tid), tid)``.
    """

    __slots__ = ("tid", "vc", "epoch")

    def __init__(self, tid: int, vc: Optional[VectorClock] = None) -> None:
        self.tid = tid
        if vc is None:
            # sigma_0 = (lambda t. inc_t(bottom), ...): every thread starts
            # at clock 1 in its own component.
            vc = VectorClock.bottom()
            vc.inc(tid)
        self.vc = vc
        self.epoch = make_epoch(vc.get(tid), tid)

    def refresh_epoch(self) -> None:
        """Re-cache the epoch after ``vc`` changed (joins or increments)."""
        self.epoch = make_epoch(self.vc.get(self.tid), self.tid)

    def __repr__(self) -> str:
        return f"ThreadState(tid={self.tid}, C={self.vc!r})"


class VarState:
    """Per-variable adaptive shadow state (``W``, ``R``, ``Rvc``).

    ``read_epoch`` holds a packed epoch, or :data:`~repro.core.epoch.
    READ_SHARED` when the variable is in read-shared mode and ``read_vc``
    carries the full read vector clock.  ``read_vc`` is dropped (``None``)
    when `[FT WRITE SHARED]` demotes the variable back to epoch mode, letting
    the garbage collector reclaim the vector as the paper observes.

    ``write_site``/``read_site`` record the source locations of the last
    write and last (epoch-mode) read when the owning detector runs with
    ``track_sites=True`` — the "more precise error reporting" the paper's
    actual implementation adds on top of Figure 5.
    """

    __slots__ = (
        "write_epoch",
        "read_epoch",
        "read_vc",
        "write_site",
        "read_site",
    )

    def __init__(self) -> None:
        self.write_epoch = EPOCH_BOTTOM
        self.read_epoch = EPOCH_BOTTOM
        self.read_vc: Optional[VectorClock] = None
        self.write_site: Optional[Hashable] = None
        self.read_site: Optional[Hashable] = None

    def shadow_words(self) -> int:
        """Memory-footprint proxy: header + two epochs + any read VC words.

        Used by the Table 3 reproduction, where memory overhead is reported
        as shadow words per tool.  An epoch costs one word; a vector clock
        costs one word per tracked thread plus a header word.
        """
        words = 3  # object header proxy + W + R
        if self.read_vc is not None:
            words += 1 + len(self.read_vc)
        return words


class LockState:
    """Per-lock shadow state: the vector clock ``L_m`` of the last release.

    Also used for volatile variables, which Section 4 folds into the ``L``
    component of the analysis state.
    """

    __slots__ = ("vc",)

    def __init__(self) -> None:
        self.vc = VectorClock.bottom()

    def shadow_words(self) -> int:
        return 2 + len(self.vc)


def thread_key(tid: int) -> Hashable:
    """Identity helper used by detectors that index shadow maps by tid."""
    return tid
