"""Epochs: the lightweight happens-before representation of FastTrack.

An *epoch* ``c@t`` pairs a clock value ``c`` with the thread ``t`` that
produced it (Section 3 of the paper).  The paper packs an epoch into a 32-bit
integer — eight bits of thread identifier above twenty-four bits of clock —
so that epochs can be compared and copied as machine words.  We keep the same
packed-integer design but widen both fields (Python integers are arbitrary
precision, so the wider layout costs nothing and removes the paper's caveat
about 24-bit clock overflow on long runs).

The key operation is the O(1) happens-before comparison against a vector
clock::

    c@t <= V   iff   c <= V(t)

implemented by :func:`epoch_leq_vc`.  Everything here is a module-level
function on plain ``int`` values rather than a class: epochs are created and
compared on *every* monitored memory access, which is exactly the hot path
the paper's representation change targets.

Examples
--------

The Section 3 example — write epoch ``4@0`` checked against thread 1's
clock ``⟨4,8,...⟩``::

    >>> w_x = make_epoch(4, 0)
    >>> format_epoch(w_x)
    '4@0'
    >>> epoch_leq_vc(w_x, [4, 8])        # 4@0 ≼ <4,8>: no race
    True
    >>> epoch_leq_vc(make_epoch(5, 0), [4, 8])
    False
    >>> epoch_tid(w_x), epoch_clock(w_x)
    (0, 4)
"""

from __future__ import annotations

from typing import Sequence

#: Number of bits reserved for the clock component of a packed epoch.  The
#: paper uses 24 and notes 64-bit epochs as the escape hatch; 40 bits of
#: clock and unbounded tid bits above them make overflow unreachable.
CLOCK_BITS = 40

_CLOCK_MASK = (1 << CLOCK_BITS) - 1

#: The minimal epoch ``0@0`` (written ⊥e in the paper).  As the paper notes,
#: minimal epochs are not unique — ``0@t`` is minimal for every ``t`` — but
#: ``0@0`` is the canonical one used for initial states.
EPOCH_BOTTOM = 0

#: Sentinel stored in ``VarState.read_epoch`` when a variable is in
#: read-shared mode and the full read vector clock is in use (Figure 5's
#: ``READ_SHARED`` constant).  Negative, so it can never collide with a real
#: packed epoch.
READ_SHARED = -1


def make_epoch(clock: int, tid: int) -> int:
    """Pack clock ``c`` and thread ``t`` into the epoch ``c@t``."""
    return (tid << CLOCK_BITS) | clock


def epoch_clock(epoch: int) -> int:
    """The clock component ``c`` of an epoch ``c@t``."""
    return epoch & _CLOCK_MASK


def epoch_tid(epoch: int) -> int:
    """The thread-identifier component ``t`` of an epoch ``c@t``
    (the paper's ``TID(e)``)."""
    return epoch >> CLOCK_BITS


def epoch_leq_vc(epoch: int, clocks: Sequence[int]) -> bool:
    """The O(1) happens-before test ``c@t ≼ V`` (``c <= V(t)``).

    ``clocks`` is the raw clock list of a :class:`~repro.core.vectorclock.
    VectorClock`; entries beyond its length are implicitly zero, matching the
    lattice definition ``⊥V = λt. 0``.
    """
    tid = epoch >> CLOCK_BITS
    if tid >= len(clocks):
        return (epoch & _CLOCK_MASK) <= 0
    return (epoch & _CLOCK_MASK) <= clocks[tid]


def format_epoch(epoch: int) -> str:
    """Render an epoch in the paper's ``c@t`` notation (⊥e for the bottom
    epoch, READ_SHARED for the shared sentinel)."""
    if epoch == READ_SHARED:
        return "READ_SHARED"
    if epoch == EPOCH_BOTTOM:
        return "⊥e"
    return f"{epoch & _CLOCK_MASK}@{epoch >> CLOCK_BITS}"
