"""On-line granularity adaptation (the Section 5.1 discussion).

Table 3 shows that coarse-grain analysis (one shadow state per object)
roughly halves memory and time but "does cause FASTTRACK and the other
analyses to report spurious warnings on most of the benchmarks" — e.g. two
fields of one object protected by different locks look like a race when
they share a shadow state.  The paper suggests the remedy evaluated by
RaceTrack [42]: "performing on-line adaptation ... would yield performance
close to the coarse-grain analysis, but with some improvement in
precision."

:class:`AdaptiveFastTrack` implements that design:

* every object starts **coarse** (fields/elements share one shadow state);
* when the coarse analysis detects a conflict on an object, the warning is
  *not* reported; instead the object is **refined** — subsequent accesses
  to it are tracked field-by-field with fresh shadow state;
* a conflict detected at fine granularity is a real per-field race and is
  reported normally.

The documented precision loss: the refinement point discards the object's
access history, so a race whose two accesses straddle the refinement is
missed (the same "small reduction in coverage" trade-off as RaceTrack's
adaptive tracking).  A genuinely racy field almost always races again and
is caught; an object whose fields merely share a shadow word is never
reported — the false alarms of Table 3's coarse column disappear.
"""

from __future__ import annotations

from typing import Hashable, Set

from repro.core.detector import coarse_grain
from repro.core.fasttrack import FastTrack
from repro.trace import events as ev


class AdaptiveFastTrack(FastTrack):
    """FastTrack with coarse-to-fine on-line granularity adaptation."""

    name = "FastTrack (adaptive)"
    #: Precise per *reported* warning (no false alarms), but may miss races
    #: that straddle a refinement, so not fully precise in Theorem 1's sense.
    precise = False

    def __init__(self, **kwargs) -> None:
        kwargs.pop("shadow_key", None)  # granularity is managed internally
        super().__init__(**kwargs)
        self.shadow_key = self._adaptive_key
        self.refined_objects: Set[Hashable] = set()
        self.adaptations = 0

    def _adaptive_key(self, var: Hashable) -> Hashable:
        coarse = coarse_grain(var)
        if coarse in self.refined_objects:
            return var  # fine granularity for refined objects
        return coarse

    def _refine(self, var: Hashable) -> None:
        """Switch an object to fine-grain tracking, dropping its coarse
        shadow state (the precision-loss window)."""
        coarse = coarse_grain(var)
        self.refined_objects.add(coarse)
        self.vars.pop(coarse, None)
        self.adaptations += 1
        self.stats.rule("ADAPTIVE REFINE")

    def report(self, event: ev.Event, kind: str, prior: str) -> None:
        var = event.target
        coarse = coarse_grain(var)
        if coarse != var and coarse not in self.refined_objects:
            # A coarse-granularity conflict: adapt instead of warning.
            self._refine(var)
            return
        super().report(event, kind, prior)
