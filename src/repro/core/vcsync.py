"""Shared vector-clock synchronization handling (Figure 3 + Section 4).

Synchronization operations — acquire, release, fork, join, volatile access,
barrier release — account for ~3.3% of monitored operations, so the paper
analyzes them with ordinary O(n) vector-clock rules in *every* tool
(FastTrack, DJIT+, BasicVC, MultiRace all share them).  This class is that
shared implementation:

========================  ====================================================
[FT ACQUIRE]              ``C_t := C_t ⊔ L_m``
[FT RELEASE]              ``L_m := C_t;  C_t := inc_t(C_t)``
[FT FORK]                 ``C_u := C_u ⊔ C_t;  C_t := inc_t(C_t)``
[FT JOIN]                 ``C_t := C_t ⊔ C_u;  C_u := inc_u(C_u)``
[FT READ VOLATILE]        ``C_t := C_t ⊔ L_vx``
[FT WRITE VOLATILE]       ``L_vx := C_t ⊔ L_vx;  C_t := inc_t(C_t)``
[FT BARRIER RELEASE]      ``C_t := inc_t(⊔_{u∈T} C_u)`` for every ``t ∈ T``
========================  ====================================================

Thread states are created lazily with ``C_t = inc_t(⊥V)`` so the initial
analysis state matches ``σ0 = (λt.inc_t(⊥V), λm.⊥V, λx.⊥e, λx.⊥e)``.

Every O(n) operation bumps ``stats.vc_ops`` and every fresh vector clock
bumps ``stats.vc_allocs`` — these counters reproduce Table 2.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.detector import Detector
from repro.core.state import LockState, ThreadState
from repro.trace import events as ev


class VCSyncDetector(Detector):
    """Base class for the tools that track happens-before with vector clocks
    on synchronization operations (FastTrack, BasicVC, DJIT+, MultiRace)."""

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.threads: Dict[int, ThreadState] = {}
        self.locks: Dict[Hashable, LockState] = {}
        self.volatiles: Dict[Hashable, LockState] = {}

    # -- state access ---------------------------------------------------------

    def thread(self, tid: int) -> ThreadState:
        """The thread's state, created on first use as ``inc_t(⊥V)``."""
        state = self.threads.get(tid)
        if state is None:
            state = ThreadState(tid)
            self.stats.vc_allocs += 1
            self.threads[tid] = state
        return state

    def lock(self, name: Hashable) -> LockState:
        state = self.locks.get(name)
        if state is None:
            state = LockState()
            self.stats.vc_allocs += 1
            self.locks[name] = state
        return state

    def volatile(self, name: Hashable) -> LockState:
        state = self.volatiles.get(name)
        if state is None:
            state = LockState()
            self.stats.vc_allocs += 1
            self.volatiles[name] = state
        return state

    # -- Figure 3 rules ---------------------------------------------------------

    def on_acquire(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        m = self.lock(event.target)
        t.vc.join(m.vc)
        self.stats.vc_ops += 1
        t.refresh_epoch()

    def on_release(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        m = self.lock(event.target)
        m.vc.assign(t.vc)
        self.stats.vc_ops += 1
        t.vc.inc(t.tid)
        t.refresh_epoch()

    def on_fork(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        u = self.thread(event.target)
        u.vc.join(t.vc)
        self.stats.vc_ops += 1
        u.refresh_epoch()
        t.vc.inc(t.tid)
        t.refresh_epoch()

    def on_join(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        u = self.thread(event.target)
        t.vc.join(u.vc)
        self.stats.vc_ops += 1
        t.refresh_epoch()
        u.vc.inc(u.tid)
        u.refresh_epoch()

    def on_volatile_read(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        vx = self.volatile(event.target)
        t.vc.join(vx.vc)
        self.stats.vc_ops += 1
        t.refresh_epoch()

    def on_volatile_write(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        vx = self.volatile(event.target)
        vx.vc.join(t.vc)
        self.stats.vc_ops += 1
        t.vc.inc(t.tid)
        t.refresh_epoch()

    def on_barrier_release(self, event: ev.Event) -> None:
        tids = event.target
        joined = None
        for tid in tids:
            u = self.thread(tid)
            if joined is None:
                joined = u.vc.copy()
                self.stats.vc_allocs += 1
            else:
                joined.join(u.vc)
            self.stats.vc_ops += 1
        if joined is None:
            return
        for tid in tids:
            u = self.thread(tid)
            u.vc.assign(joined)
            self.stats.vc_ops += 1
            u.vc.inc(tid)
            u.refresh_epoch()

    # -- memory accounting -------------------------------------------------------

    def sync_shadow_words(self) -> int:
        words = 0
        for t in self.threads.values():
            words += 2 + len(t.vc)
        for m in self.locks.values():
            words += m.shadow_words()
        for vx in self.volatiles.values():
            words += vx.shadow_words()
        return words
