"""Core primitives of the FastTrack reproduction.

This subpackage contains the paper's primary contribution:

* :mod:`repro.core.epoch` — the constant-space epoch representation ``c@t``.
* :mod:`repro.core.vectorclock` — classic vector clocks (the fallback
  representation and the substrate shared with DJIT+/BasicVC).
* :mod:`repro.core.state` — the shadow state of Figure 5 (ThreadState,
  VarState, LockState).
* :mod:`repro.core.detector` — the abstract online-analysis interface all
  detectors implement, with the cost counters used by the evaluation.
* :mod:`repro.core.fasttrack` — the FastTrack algorithm itself
  (Figures 2, 3 and 5, plus the volatile/barrier extensions of Section 4).
"""

from repro.core.epoch import (
    CLOCK_BITS,
    EPOCH_BOTTOM,
    READ_SHARED,
    epoch_clock,
    epoch_leq_vc,
    epoch_tid,
    format_epoch,
    make_epoch,
)
from repro.core.vectorclock import VectorClock
from repro.core.state import LockState, ThreadState, VarState
from repro.core.detector import CostStats, Detector, RaceWarning
from repro.core.fasttrack import FastTrack
from repro.core.adaptive import AdaptiveFastTrack

__all__ = [
    "CLOCK_BITS",
    "EPOCH_BOTTOM",
    "READ_SHARED",
    "make_epoch",
    "epoch_clock",
    "epoch_tid",
    "epoch_leq_vc",
    "format_epoch",
    "VectorClock",
    "ThreadState",
    "VarState",
    "LockState",
    "CostStats",
    "Detector",
    "RaceWarning",
    "FastTrack",
    "AdaptiveFastTrack",
]
