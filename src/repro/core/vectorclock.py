"""Vector clocks: the heavyweight happens-before representation.

A vector clock ``VC : Tid -> Nat`` records a clock for every thread in the
system (Section 2.2).  This module provides the lattice operations the paper
uses —

* pointwise partial order ``V1 ⊑ V2``  (:meth:`VectorClock.leq`),
* pointwise join ``V1 ⊔ V2``           (:meth:`VectorClock.join`),
* bottom element ``⊥V = λt.0``         (:meth:`VectorClock.bottom`),
* ``inc_t``                            (:meth:`VectorClock.inc`),

All of these are O(n) in the number of threads, which is precisely the cost
FastTrack's epochs avoid on the common paths.  The clock list grows on
demand so that traces may fork fresh threads at any point; absent entries
read as zero, matching ``⊥V``.

The evaluation (Table 2) counts vector-clock *allocations* and O(n)
vector-clock *operations* per detector.  Counting lives in
:class:`repro.core.detector.CostStats`; detectors bump those counters at each
call site so this class stays a pure data structure.

Examples
--------

The release-acquire transfer from Section 2.2::

    >>> c0 = VectorClock([4, 0])
    >>> l_m = c0.copy()                  # rel(0, m): L_m := C_0
    >>> c0.inc(0)                        # ... then inc_0(C_0)
    >>> c1 = VectorClock([0, 8])
    >>> c1.join(l_m)                     # acq(1, m): C_1 := C_1 ⊔ L_m
    >>> c1
    <4,8,...>
    >>> l_m.leq(c1)
    True
    >>> c0.leq(c1)                       # thread 0 has moved on
    False
"""

from __future__ import annotations

from typing import Iterable, Iterator, List


class VectorClock:
    """A grow-on-demand vector of per-thread clocks.

    Instances are mutable; detectors update them in place exactly where the
    paper's transition rules use functional update for clarity (the paper
    notes its implementation does the same).
    """

    __slots__ = ("clocks",)

    def __init__(self, clocks: Iterable[int] = ()) -> None:
        self.clocks: List[int] = list(clocks)

    # -- construction ------------------------------------------------------

    @classmethod
    def bottom(cls) -> "VectorClock":
        """The minimal vector clock ``⊥V``."""
        return cls()

    def copy(self) -> "VectorClock":
        """An independent copy (an O(n) operation)."""
        fresh = VectorClock.__new__(VectorClock)
        fresh.clocks = self.clocks[:]
        return fresh

    # -- element access ----------------------------------------------------

    def get(self, tid: int) -> int:
        """``V(t)`` — zero for threads beyond the stored prefix."""
        clocks = self.clocks
        return clocks[tid] if tid < len(clocks) else 0

    def set(self, tid: int, clock: int) -> None:
        """``V[t := c]`` in place."""
        self._ensure(tid)
        self.clocks[tid] = clock

    def inc(self, tid: int) -> None:
        """``inc_t(V)`` in place: bump the ``t`` component by one."""
        self._ensure(tid)
        self.clocks[tid] += 1

    def _ensure(self, tid: int) -> None:
        clocks = self.clocks
        if tid >= len(clocks):
            clocks.extend([0] * (tid + 1 - len(clocks)))

    # -- lattice operations (O(n)) -----------------------------------------

    def leq(self, other: "VectorClock") -> bool:
        """Pointwise partial order ``self ⊑ other``."""
        mine, theirs = self.clocks, other.clocks
        ntheirs = len(theirs)
        for tid, clock in enumerate(mine):
            if clock > (theirs[tid] if tid < ntheirs else 0):
                return False
        return True

    def join(self, other: "VectorClock") -> None:
        """Pointwise join ``self := self ⊔ other`` in place."""
        mine, theirs = self.clocks, other.clocks
        if len(theirs) > len(mine):
            mine.extend([0] * (len(theirs) - len(mine)))
        for tid, clock in enumerate(theirs):
            if clock > mine[tid]:
                mine[tid] = clock

    def joined(self, other: "VectorClock") -> "VectorClock":
        """A fresh ``self ⊔ other`` (allocates)."""
        fresh = self.copy()
        fresh.join(other)
        return fresh

    # -- conveniences -------------------------------------------------------

    def assign(self, other: "VectorClock") -> None:
        """``self := other`` in place (an O(n) copy without allocation)."""
        self.clocks[:] = other.clocks

    def as_tuple(self) -> tuple:
        """Clock prefix as a tuple, trailing zeros trimmed (for hashing and
        stable comparison in tests)."""
        clocks = self.clocks
        end = len(clocks)
        while end and clocks[end - 1] == 0:
            end -= 1
        return tuple(clocks[:end])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __iter__(self) -> Iterator[int]:
        return iter(self.clocks)

    def __len__(self) -> int:
        return len(self.clocks)

    def __repr__(self) -> str:
        inner = ",".join(str(c) for c in self.clocks)
        return f"<{inner},...>"
