"""Trace-context propagation across process and machine boundaries.

A *trace context* is the small picklable dict that carries "which trace
is this work part of, and which span submitted it" from the place a job
is dispatched to the place it runs::

    {"trace_id": "6f1c...", "parent": "a3e09c1b000004",
     "dir": "/tmp/telemetry", "submitted": 12.345}

Producers call :func:`repro.obs.propagation_context` (None when
telemetry is off); consumers wrap their work in :func:`adopt`.  The
engine threads the context through its worker submit args — so fork *and*
spawn pool workers, and the in-process sequential fallback, all attribute
their spans to the submitting trace — and the service maps the
``X-Repro-Trace-Id`` request header onto each job so the chain reaches
back to the client.  Spawned workers that receive no per-task context
can still recover one from the ``REPRO_TRACE`` environment variable,
which :func:`repro.obs.enable` exports (env crosses exec boundaries;
memory does not).

Adoption is cheap and idempotent: if the current process already sinks
to the context's directory the existing sink is reused; otherwise a
*worker* sink is enabled there (writing ``spans-<pid>.jsonl``).  Either
way the calling thread is bound to the carried trace id and parent for
the duration, so spans opened inside land in the right tree.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
from typing import Dict, Iterator, Optional

from repro.obs import telemetry as _telemetry

#: The HTTP request header a client uses to name (or propagate) a trace.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Environment variable carrying ``{"dir": ..., "trace_id": ...}`` to
#: spawned workers (exported by :func:`repro.obs.enable`).
TRACE_ENV = _telemetry.TRACE_ENV

#: Upper bound on caller-supplied trace ids (header values).
TRACE_ID_MAX_LEN = 64

new_trace_id = _telemetry.new_trace_id

_TRACE_ID_RE = re.compile(r"[A-Za-z0-9._-]+\Z")


def clean_trace_id(value: Optional[str]) -> Optional[str]:
    """Sanitize a caller-supplied trace id; None if unusable.

    Accepts 1-64 characters drawn from ``[A-Za-z0-9._-]`` — enough for
    every mainstream trace-id format (hex, UUID, W3C traceparent ids)
    while keeping ids safe to embed in filenames, JSON, and log lines.
    """
    if not value:
        return None
    value = value.strip()
    if not value or len(value) > TRACE_ID_MAX_LEN:
        return None
    if not _TRACE_ID_RE.match(value):
        return None
    return value


def propagation_context(**extra) -> Optional[Dict]:
    """The context to hand downstream work (None when telemetry is off)."""
    return _telemetry.propagation_context(**extra)


def context_from_env() -> Optional[Dict]:
    """The ``REPRO_TRACE`` fallback context, or None."""
    raw = os.environ.get(TRACE_ENV)
    if not raw:
        return None
    try:
        context = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(context, dict) or not context.get("dir"):
        return None
    return context


@contextlib.contextmanager
def adopt(context: Optional[Dict]) -> Iterator[bool]:
    """Bind the calling thread to a carried trace context.

    Yields True when a sink is active and the binding took effect, False
    for a null/unusable context (the body still runs — adoption never
    makes work fail).  In a process with no sink, a *worker* sink is
    enabled at the context's directory; it stays enabled after the block
    so long-lived spawned workers keep their open file across tasks.
    """
    if not context:
        yield False
        return
    directory = context.get("dir")
    sink = _telemetry.active()
    if sink is None or (
        directory
        and os.path.abspath(sink.directory) != os.path.abspath(directory)
    ):
        if not directory:
            yield False
            return
        sink = _telemetry.enable(directory, worker=True)
    with sink.trace_scope(context.get("trace_id"), context.get("parent")):
        yield True
