"""``repro profile`` — the human-readable hot-path report.

Turns one telemetry-enabled check (a :class:`MergedReport` per tool plus
the run's ``spans.jsonl`` records) into the report a performance triage
wants on one screen:

* the operation mix (the paper's 82.3% reads / 14.5% writes frame);
* per-detector rule frequencies — counts and fractions, same-epoch fast
  paths derived by :mod:`repro.obs.rules`, i.e. Figure 2 for *this*
  trace;
* stage timings from the spans (partition → shard.analyze → merge), with
  events/sec wherever a span carries an event count;
* the **critical path** — the chain of spans that bounds wall-clock,
  stitched across every process that wrote to the telemetry dir;
* shard balance (events, VC ops, wall time per shard) — the engine's
  load-skew diagnostic.

The stitching half also powers ``repro profile --from-telemetry DIR``:
:func:`stitch_traces` groups the records of a whole telemetry dir (the
main ``spans.jsonl`` plus every worker's ``spans-<pid>.jsonl``) into one
tree per ``trace_id``, and :func:`render_trace_report` renders those
trees without needing the original trace or a re-run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.rules import derived_rule_counts

#: Stage span names rendered in pipeline order; anything else follows.
_STAGE_ORDER = (
    "engine.partition", "engine.analyze", "shard.analyze", "shard.attach",
    "shard.kernel", "engine.merge", "engine.summary", "check",
)


def _fraction(count: int, denominator: int) -> str:
    if denominator <= 0:
        return "    —"
    return f"{count / denominator:6.1%}"


def _rule_denominator(rule: str, stats) -> int:
    """The class a rule's frequency is quoted against (Figure 2 quotes
    read rules as fractions of reads, write rules of writes)."""
    if "READ" in rule:
        return stats.reads
    if "WRITE" in rule:
        return stats.writes
    return stats.events


def _stage_rows(spans: List[Dict]) -> List[Dict]:
    """Aggregate span records by name: count, wall/cpu totals, events."""
    stages: Dict[str, Dict] = {}
    for record in spans:
        if record.get("type") != "span":
            continue
        name = record["name"]
        row = stages.setdefault(
            name, {"name": name, "count": 0, "wall_s": 0.0, "cpu_s": 0.0,
                   "events": 0, "errors": 0}
        )
        row["count"] += 1
        row["wall_s"] += record["wall_s"]
        row["cpu_s"] += record["cpu_s"]
        row["events"] += int(record.get("attrs", {}).get("events") or 0)
        if record.get("status") == "error":
            row["errors"] += 1
    order = {name: index for index, name in enumerate(_STAGE_ORDER)}
    return sorted(
        stages.values(),
        key=lambda row: (order.get(row["name"], len(order)), row["name"]),
    )


def stitch_traces(records: List[Dict]) -> Dict[str, Dict]:
    """Group span records into one tree per ``trace_id``.

    Returns ``{trace_id: entry}`` where each entry carries the trace's
    ``spans``, its ``roots`` (spans whose parent is absent — including
    parents that live in a process whose file was lost), a ``children``
    index keyed by span id, and the set of ``pids`` that contributed.
    Records predating trace propagation group under ``"untraced"``.
    """
    traces: Dict[str, Dict] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        trace_id = record.get("trace_id") or "untraced"
        entry = traces.setdefault(
            trace_id, {"trace_id": trace_id, "spans": [], "pids": set()}
        )
        entry["spans"].append(record)
        if record.get("pid") is not None:
            entry["pids"].add(record["pid"])
    for entry in traces.values():
        ids = {span["id"] for span in entry["spans"]}
        children: Dict = {}
        roots: List[Dict] = []
        for span in entry["spans"]:
            parent = span.get("parent")
            if parent is not None and parent in ids:
                children.setdefault(parent, []).append(span)
            else:
                roots.append(span)
        for kids in children.values():
            kids.sort(key=lambda s: (s["start_unix"], str(s["id"])))
        roots.sort(key=lambda s: (s["start_unix"], str(s["id"])))
        entry["children"] = children
        entry["roots"] = roots
    return traces


def critical_path(spans: List[Dict]) -> List[Dict]:
    """The chain of spans bounding wall-clock time, root to leaf.

    Starts at the longest root (the stage that dominates the run) and at
    each level descends into the child that *finished last* — the one the
    parent was still waiting on when it closed.  Deterministic under
    ties (span id breaks them).  Zero-duration spans (rollup markers
    like ``engine.summary``, degraded breadcrumbs) never bound anything
    and are ignored.
    """
    spans = [
        span for span in spans
        if span.get("type") == "span" and span["wall_s"] > 0
    ]
    if not spans:
        return []
    ids = {span["id"] for span in spans}
    children: Dict = {}
    roots: List[Dict] = []
    for span in spans:
        parent = span.get("parent")
        if parent is not None and parent in ids:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    path = [max(roots, key=lambda s: (s["wall_s"], str(s["id"])))]
    while True:
        kids = children.get(path[-1]["id"])
        if not kids:
            return path
        path.append(
            max(kids, key=lambda s: (s["start_unix"] + s["wall_s"],
                                     str(s["id"])))
        )


def _span_label(span: Dict) -> str:
    attrs = span.get("attrs") or {}
    if "shard" in attrs:
        return f"{span['name']}[shard={attrs['shard']}]"
    return span["name"]


def render_critical_path(records: List[Dict]) -> str:
    """One ``critical path: a 0.3s → b 0.2s`` line for the dominant
    trace of ``records`` (empty string when there are no spans)."""
    traces = stitch_traces(records)
    if not traces:
        return ""
    entry = max(
        traces.values(), key=lambda e: (len(e["spans"]), e["trace_id"])
    )
    path = critical_path(entry["spans"])
    if not path:
        return ""
    steps = " → ".join(
        f"{_span_label(span)} {span['wall_s']:.3f}s" for span in path
    )
    return f"critical path: {steps}"


def _render_tree(entry: Dict, lines: List[str]) -> None:
    on_path = {id(span) for span in critical_path(entry["spans"])}

    def walk(span: Dict, depth: int) -> None:
        indent = "  " * depth
        marker = " *" if id(span) in on_path else ""
        status = "" if span.get("status") == "ok" else "  [error]"
        lines.append(
            f"  {indent}{_span_label(span):<{max(2, 34 - 2 * depth)}s}"
            f"{span['wall_s'] * 1e3:>9.1f}ms{status}{marker}"
        )
        for child in entry["children"].get(span["id"], ()):
            walk(child, depth + 1)

    for root in entry["roots"]:
        walk(root, 0)


def render_trace_report(
    records: List[Dict], directory: Optional[str] = None
) -> str:
    """Render the stitched trace tree(s) of a telemetry dir — the
    ``repro profile --from-telemetry DIR`` view, no re-run needed.
    Spans on the critical path are starred."""
    lines: List[str] = []
    header = "repro profile — stitched telemetry"
    if directory:
        header += f" ({directory})"
    lines.append(header)
    traces = stitch_traces(records)
    if not traces:
        lines.append("  (no span records)")
        return "\n".join(lines) + "\n"
    ordered = sorted(
        traces.values(), key=lambda e: (-len(e["spans"]), e["trace_id"])
    )
    for entry in ordered:
        lines.append("")
        lines.append(
            f"trace {entry['trace_id']} — {len(entry['spans'])} span(s), "
            f"{max(1, len(entry['pids']))} process(es)"
        )
        _render_tree(entry, lines)
        path_line = render_critical_path(entry["spans"])
        if path_line:
            lines.append(f"  {path_line}")
    return "\n".join(lines) + "\n"


def render_profile(
    trace_path: str,
    reports: Dict[str, "MergedReport"],  # noqa: F821 - avoid engine import
    spans: Optional[List[Dict]] = None,
) -> str:
    """Render the hot-path report for one profiled check."""
    lines: List[str] = []
    first = next(iter(reports.values()))
    stats = first.stats
    lines.append(
        f"repro profile — {trace_path} "
        f"({stats.events} events, {first.nshards} shard(s))"
    )
    lines.append("")
    lines.append("operation mix (Figure 2 frame: 82.3% / 14.5% / 3.3%):")
    denominator = max(stats.events, 1)
    other = stats.syncs + stats.boundaries
    for label, count in (
        ("reads", stats.reads), ("writes", stats.writes), ("other", other)
    ):
        lines.append(
            f"  {label:<8s}{count:>12,d}  {count / denominator:6.1%}"
        )

    for tool, report in reports.items():
        lines.append("")
        verdict = (
            f"{report.warning_count} warning(s)"
            if report.warning_count
            else "race-free"
        )
        lines.append(f"{tool} — {verdict}; rule frequencies:")
        counts = derived_rule_counts(tool, report.stats)
        if not counts:
            lines.append("  (this tool fires no counted rules)")
            continue
        width = max(len(rule) for rule in counts)
        for rule, count in counts.items():
            denom = _rule_denominator(rule, report.stats)
            share = _fraction(count, denom)
            of = (
                "of reads" if "READ" in rule
                else "of writes" if "WRITE" in rule
                else "of events"
            )
            lines.append(
                f"  {rule:<{width}s}{count:>12,d}  {share} {of}"
            )

    rows = _stage_rows(spans or [])
    if rows:
        lines.append("")
        lines.append("stage timings:")
        lines.append(
            f"  {'stage':<18s}{'n':>4s}{'wall':>10s}{'cpu':>10s}"
            f"{'events/s':>12s}"
        )
        for row in rows:
            rate = (
                f"{row['events'] / row['wall_s']:>12,.0f}"
                if row["events"] and row["wall_s"] > 0
                else f"{'—':>12s}"
            )
            suffix = f"  ({row['errors']} error(s))" if row["errors"] else ""
            lines.append(
                f"  {row['name']:<18s}{row['count']:>4d}"
                f"{row['wall_s'] * 1e3:>8.1f}ms{row['cpu_s'] * 1e3:>8.1f}ms"
                f"{rate}{suffix}"
            )
        path_line = render_critical_path(spans or [])
        if path_line:
            lines.append("")
            lines.append(path_line)

    shard_stats = first.shard_stats
    if len(shard_stats) > 1:
        lines.append("")
        total = sum(first.shard_events) or 1
        lines.append(f"shard balance ({next(iter(reports))}):")
        lines.append(
            f"  {'shard':<7s}{'events':>10s}{'share':>8s}{'vc ops':>10s}"
            f"{'slow rules':>12s}"
        )
        for shard, stats_ in enumerate(shard_stats):
            events = (
                first.shard_events[shard]
                if shard < len(first.shard_events) else stats_.events
            )
            slow = sum(stats_.rules.values())
            lines.append(
                f"  {shard:<7d}{events:>10,d}{events / total:>8.1%}"
                f"{stats_.vc_ops:>10,d}{slow:>12,d}"
            )
    return "\n".join(lines) + "\n"
