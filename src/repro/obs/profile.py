"""``repro profile`` — the human-readable hot-path report.

Turns one telemetry-enabled check (a :class:`MergedReport` per tool plus
the run's ``spans.jsonl`` records) into the report a performance triage
wants on one screen:

* the operation mix (the paper's 82.3% reads / 14.5% writes frame);
* per-detector rule frequencies — counts and fractions, same-epoch fast
  paths derived by :mod:`repro.obs.rules`, i.e. Figure 2 for *this*
  trace;
* stage timings from the spans (partition → shard.analyze → merge), with
  events/sec wherever a span carries an event count;
* shard balance (events, VC ops, wall time per shard) — the engine's
  load-skew diagnostic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.rules import derived_rule_counts

#: Stage span names rendered in pipeline order; anything else follows.
_STAGE_ORDER = (
    "engine.partition", "engine.analyze", "shard.analyze", "engine.merge",
    "check",
)


def _fraction(count: int, denominator: int) -> str:
    if denominator <= 0:
        return "    —"
    return f"{count / denominator:6.1%}"


def _rule_denominator(rule: str, stats) -> int:
    """The class a rule's frequency is quoted against (Figure 2 quotes
    read rules as fractions of reads, write rules of writes)."""
    if "READ" in rule:
        return stats.reads
    if "WRITE" in rule:
        return stats.writes
    return stats.events


def _stage_rows(spans: List[Dict]) -> List[Dict]:
    """Aggregate span records by name: count, wall/cpu totals, events."""
    stages: Dict[str, Dict] = {}
    for record in spans:
        if record.get("type") != "span":
            continue
        name = record["name"]
        row = stages.setdefault(
            name, {"name": name, "count": 0, "wall_s": 0.0, "cpu_s": 0.0,
                   "events": 0, "errors": 0}
        )
        row["count"] += 1
        row["wall_s"] += record["wall_s"]
        row["cpu_s"] += record["cpu_s"]
        row["events"] += int(record.get("attrs", {}).get("events") or 0)
        if record.get("status") == "error":
            row["errors"] += 1
    order = {name: index for index, name in enumerate(_STAGE_ORDER)}
    return sorted(
        stages.values(),
        key=lambda row: (order.get(row["name"], len(order)), row["name"]),
    )


def render_profile(
    trace_path: str,
    reports: Dict[str, "MergedReport"],  # noqa: F821 - avoid engine import
    spans: Optional[List[Dict]] = None,
) -> str:
    """Render the hot-path report for one profiled check."""
    lines: List[str] = []
    first = next(iter(reports.values()))
    stats = first.stats
    lines.append(
        f"repro profile — {trace_path} "
        f"({stats.events} events, {first.nshards} shard(s))"
    )
    lines.append("")
    lines.append("operation mix (Figure 2 frame: 82.3% / 14.5% / 3.3%):")
    denominator = max(stats.events, 1)
    other = stats.syncs + stats.boundaries
    for label, count in (
        ("reads", stats.reads), ("writes", stats.writes), ("other", other)
    ):
        lines.append(
            f"  {label:<8s}{count:>12,d}  {count / denominator:6.1%}"
        )

    for tool, report in reports.items():
        lines.append("")
        verdict = (
            f"{report.warning_count} warning(s)"
            if report.warning_count
            else "race-free"
        )
        lines.append(f"{tool} — {verdict}; rule frequencies:")
        counts = derived_rule_counts(tool, report.stats)
        if not counts:
            lines.append("  (this tool fires no counted rules)")
            continue
        width = max(len(rule) for rule in counts)
        for rule, count in counts.items():
            denom = _rule_denominator(rule, report.stats)
            share = _fraction(count, denom)
            of = (
                "of reads" if "READ" in rule
                else "of writes" if "WRITE" in rule
                else "of events"
            )
            lines.append(
                f"  {rule:<{width}s}{count:>12,d}  {share} {of}"
            )

    rows = _stage_rows(spans or [])
    if rows:
        lines.append("")
        lines.append("stage timings:")
        lines.append(
            f"  {'stage':<18s}{'n':>4s}{'wall':>10s}{'cpu':>10s}"
            f"{'events/s':>12s}"
        )
        for row in rows:
            rate = (
                f"{row['events'] / row['wall_s']:>12,.0f}"
                if row["events"] and row["wall_s"] > 0
                else f"{'—':>12s}"
            )
            suffix = f"  ({row['errors']} error(s))" if row["errors"] else ""
            lines.append(
                f"  {row['name']:<18s}{row['count']:>4d}"
                f"{row['wall_s'] * 1e3:>8.1f}ms{row['cpu_s'] * 1e3:>8.1f}ms"
                f"{rate}{suffix}"
            )

    shard_stats = first.shard_stats
    if len(shard_stats) > 1:
        lines.append("")
        total = sum(first.shard_events) or 1
        lines.append(f"shard balance ({next(iter(reports))}):")
        lines.append(
            f"  {'shard':<7s}{'events':>10s}{'share':>8s}{'vc ops':>10s}"
            f"{'slow rules':>12s}"
        )
        for shard, stats_ in enumerate(shard_stats):
            events = (
                first.shard_events[shard]
                if shard < len(first.shard_events) else stats_.events
            )
            slow = sum(stats_.rules.values())
            lines.append(
                f"  {shard:<7d}{events:>10,d}{events / total:>8.1%}"
                f"{stats_.vc_ops:>10,d}{slow:>12,d}"
            )
    return "\n".join(lines) + "\n"
