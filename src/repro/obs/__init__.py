"""``repro.obs`` — the unified telemetry layer.

One stdlib-only observability subsystem shared by every execution
surface: the CLI (``repro check --telemetry DIR``, ``repro profile``),
the sharded engine, the fused kernels' shard workers, and the ``repro
serve`` daemon.  Three pillars, one module each:

* :mod:`~repro.obs.metrics` — the Prometheus-text-format registry
  (promoted from ``repro.service.metrics``; the service keeps a shim),
  a process-global default registry, and :class:`BatchedCounter`
  handles that are safe inside kernel hot loops — local adds, one lock
  acquisition per batched flush, never one per event;
* :mod:`~repro.obs.telemetry` — structured tracing (``obs.span(...)``
  context managers emitting JSONL with wall + CPU time and nesting),
  the ``--telemetry DIR`` sink (``spans.jsonl`` + ``metrics.json``),
  and the structured logger ``obs.log`` (JSONL when a sink is active,
  stderr otherwise);
* :mod:`~repro.obs.rules` — per-detector rule-frequency metrics
  (``repro_rule_total{detector,rule}``), same-epoch fast paths derived
  with the Figure 2 arithmetic, flushed once per run/shard.

Telemetry is **off by default and free when off**: :func:`span` returns
a shared no-op, :func:`emit_span`/`record_rules` check one module
global, and no analysis output ever changes — the differential tests
assert ``repro check --json`` is byte-identical with telemetry on and
off, and ``benchmarks/bench_obs_overhead.py`` holds the disabled-path
overhead under 2%.  See docs/OBSERVABILITY.md for the metric and span
catalog.
"""

from repro.obs.metrics import (
    BatchedCounter,
    Counter,
    DEFAULT_BUCKETS,
    EXPOSITION_CONTENT_TYPE,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.health import (
    DEGRADED_COUNTER,
    DEGRADED_REASONS,
    SHARD_BYTES_COUNTER,
    record_degraded,
    record_shard_bytes,
)
from repro.obs.profile import render_profile
from repro.obs.rules import (
    EVENTS_COUNTER,
    RULE_COUNTER,
    derived_rule_counts,
    record_rule_counts,
    record_rules,
)
from repro.obs.telemetry import (
    METRICS_FILENAME,
    NULL_SPAN,
    SPANS_FILENAME,
    Span,
    Telemetry,
    active,
    disable,
    emit_span,
    enable,
    enabled,
    log,
    read_spans,
    span,
    validate_record,
    validate_spans_file,
)

__all__ = [
    "BatchedCounter",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEGRADED_COUNTER",
    "DEGRADED_REASONS",
    "EVENTS_COUNTER",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "METRICS_FILENAME",
    "MetricsRegistry",
    "NULL_SPAN",
    "RULE_COUNTER",
    "SHARD_BYTES_COUNTER",
    "SPANS_FILENAME",
    "Span",
    "Telemetry",
    "active",
    "default_registry",
    "derived_rule_counts",
    "disable",
    "emit_span",
    "enable",
    "enabled",
    "log",
    "read_spans",
    "record_degraded",
    "record_rule_counts",
    "record_shard_bytes",
    "record_rules",
    "render_profile",
    "reset_default_registry",
    "span",
    "validate_record",
    "validate_spans_file",
]
