"""``repro.obs`` — the unified telemetry layer.

One stdlib-only observability subsystem shared by every execution
surface: the CLI (``repro check --telemetry DIR``, ``repro profile``,
``repro top``), the sharded engine, the fused kernels' shard workers,
and the ``repro serve`` daemon.  Four pillars, one module each:

* :mod:`~repro.obs.metrics` — the Prometheus-text-format registry, a
  process-global default registry, :class:`BatchedCounter` handles that
  are safe inside kernel hot loops — local adds, one lock acquisition
  per batched flush, never one per event — and histogram *exemplars*
  pinning outlier observations to the job/trace that caused them;
* :mod:`~repro.obs.telemetry` — structured tracing (``obs.span(...)``
  context managers emitting JSONL with wall + CPU time, nesting, and a
  ``trace_id``), the ``--telemetry DIR`` sink (``spans.jsonl`` plus
  per-worker ``spans-<pid>.jsonl`` + ``metrics.json``), and the
  structured logger ``obs.log`` (JSONL when a sink is active, stderr
  otherwise);
* :mod:`~repro.obs.tracecontext` — trace-context propagation: the
  picklable context handed to engine workers, the ``X-Repro-Trace-Id``
  header contract, and :func:`~repro.obs.tracecontext.adopt` binding a
  worker to the submitting trace;
* :mod:`~repro.obs.rules` — per-detector rule-frequency metrics
  (``repro_rule_total{detector,rule}``), same-epoch fast paths derived
  with the Figure 2 arithmetic, flushed once per run/shard.

Telemetry is **off by default and free when off**: :func:`span` returns
a shared no-op, :func:`emit_span`/`record_rules` check one module
global, and no analysis output ever changes — the differential tests
assert ``repro check --json`` is byte-identical with telemetry on and
off, and ``benchmarks/bench_obs_overhead.py`` holds the disabled-path
overhead under 2%.  See docs/OBSERVABILITY.md for the metric and span
catalog and the trace model.
"""

from repro.obs.metrics import (
    BatchedCounter,
    Counter,
    DEFAULT_BUCKETS,
    EXPOSITION_CONTENT_TYPE,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.health import (
    DEGRADED_COUNTER,
    DEGRADED_REASONS,
    SHARD_BYTES_COUNTER,
    record_degraded,
    record_shard_bytes,
)
from repro.obs.profile import (
    critical_path,
    render_critical_path,
    render_profile,
    render_trace_report,
    stitch_traces,
)
from repro.obs.rules import (
    EVENTS_COUNTER,
    RULE_COUNTER,
    derived_rule_counts,
    record_rule_counts,
    record_rules,
)
from repro.obs.telemetry import (
    METRICS_FILENAME,
    NULL_SPAN,
    SPANS_FILENAME,
    Span,
    Telemetry,
    active,
    current_trace_id,
    disable,
    emit_span,
    enable,
    enabled,
    log,
    new_trace_id,
    read_all_spans,
    read_spans,
    span,
    span_files,
    trace_scope,
    validate_record,
    validate_spans_file,
    validate_telemetry_dir,
)
from repro.obs.tracecontext import (
    TRACE_HEADER,
    adopt,
    clean_trace_id,
    propagation_context,
)

__all__ = [
    "BatchedCounter",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEGRADED_COUNTER",
    "DEGRADED_REASONS",
    "EVENTS_COUNTER",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "METRICS_FILENAME",
    "MetricsRegistry",
    "NULL_SPAN",
    "RULE_COUNTER",
    "SHARD_BYTES_COUNTER",
    "SPANS_FILENAME",
    "Span",
    "TRACE_HEADER",
    "Telemetry",
    "active",
    "adopt",
    "clean_trace_id",
    "critical_path",
    "current_trace_id",
    "default_registry",
    "derived_rule_counts",
    "disable",
    "emit_span",
    "enable",
    "enabled",
    "log",
    "new_trace_id",
    "propagation_context",
    "read_all_spans",
    "read_spans",
    "record_degraded",
    "record_rule_counts",
    "record_shard_bytes",
    "record_rules",
    "render_critical_path",
    "render_profile",
    "render_trace_report",
    "reset_default_registry",
    "span",
    "span_files",
    "stitch_traces",
    "trace_scope",
    "validate_record",
    "validate_spans_file",
    "validate_telemetry_dir",
]
