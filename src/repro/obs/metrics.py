"""A minimal, dependency-free Prometheus exposition-format registry.

Every layer — the CLI, the sharded engine, the fused-kernel workers,
and the ``repro serve`` daemon — shares this one metrics substrate:
counters, gauges, and cumulative histograms, with labels, rendered in
text format 0.0.4 (the format every Prometheus scraper accepts).  All
mutation goes through one registry-wide lock — the daemon's HTTP threads
and job runners update concurrently, and a scrape must never observe a
histogram whose ``_count`` and ``_sum`` disagree.

    >>> registry = MetricsRegistry()
    >>> jobs = registry.counter("repro_jobs_total", "Jobs by terminal state")
    >>> jobs.inc(state="done")
    >>> print(registry.render().splitlines()[2])
    repro_jobs_total{state="done"} 1

Determinism: the exposition document is fully ordered — metric blocks
sort by metric name, series within a block sort by label set — so two
registries holding the same values render byte-identical documents
regardless of registration or update order.  Histograms always emit the
``+Inf`` bucket the Prometheus text format requires, and servers should
ship the document under :data:`EXPOSITION_CONTENT_TYPE`.

Hot loops must not take the registry lock per event.  A
:class:`BatchedCounter` handle (from :meth:`Counter.handle`) accumulates
locally — plain int adds, no lock, safe to call millions of times — and
folds into the shared counter in one locked :meth:`~BatchedCounter.flush`
at a batch boundary (the engine flushes once per shard):

    >>> events = registry.counter("repro_events_total", "Events analyzed")
    >>> handle = events.handle(detector="FastTrack")
    >>> for _ in range(1000):
    ...     handle.inc()
    >>> handle.flush()
    1000
    >>> events.value(detector="FastTrack")
    1000.0
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds) — spans sub-millisecond metric
#: scrapes up to multi-second analysis-heavy result fetches.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: The Content-Type the Prometheus text format 0.0.4 is served under.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: _LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self._lock = lock

    def render(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError

    def samples(self) -> List[Dict]:  # pragma: no cover - abstract
        raise NotImplementedError


class BatchedCounter:
    """A lock-free accumulator bound to one counter label set.

    ``inc`` is a plain integer add on this object — cheap enough for a
    kernel hot loop — and :meth:`flush` moves the accumulated total into
    the shared :class:`Counter` under its lock (one acquisition per
    batch, never per event).  Handles are *not* shared between threads;
    each worker/shard takes its own and flushes at its batch boundary.
    """

    __slots__ = ("_counter", "_labels", "pending")

    def __init__(self, counter: "Counter", labels: Dict[str, str]) -> None:
        self._counter = counter
        self._labels = labels
        self.pending = 0

    def inc(self, amount: int = 1) -> None:
        self.pending += amount

    def flush(self) -> int:
        """Fold the pending total into the registry; returns it."""
        amount, self.pending = self.pending, 0
        if amount:
            self._counter.inc(amount, **self._labels)
        return amount


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name, help_text, lock) -> None:
        super().__init__(name, help_text, lock)
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def handle(self, **labels: str) -> BatchedCounter:
        """A hot-loop-safe local accumulator for one label set."""
        return BatchedCounter(self, labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in items
        ]

    def samples(self) -> List[Dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(key), "value": value} for key, value in items
        ]


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name, help_text, lock) -> None:
        super().__init__(name, help_text, lock)
        self._values: Dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in items
        ]

    def samples(self) -> List[Dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(key), "value": value} for key, value in items
        ]


class Histogram(_Metric):
    kind = "histogram"

    #: Exemplars retained per label set — always the slowest observations
    #: seen, i.e. the population of the outlier buckets.
    MAX_EXEMPLARS = 5

    def __init__(self, name, help_text, lock,
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, lock)
        self.buckets = tuple(sorted(buckets))
        #: per-labelset: (per-bucket counts, sum, count)
        self._series: Dict[_LabelKey, Tuple[List[int], float, int]] = {}
        #: per-labelset min-heap of (value, serial, fields) — the serial
        #: breaks value ties so heap comparison never reaches the dict.
        self._exemplars: Dict[_LabelKey, List[Tuple[float, int, Dict]]] = {}
        self._exemplar_serial = 0

    def observe(self, value: float, exemplar: Optional[Dict] = None,
                **labels: str) -> None:
        """Record ``value``; an optional ``exemplar`` dict (job id,
        trace id, ...) is kept iff the value ranks among the slowest
        :data:`MAX_EXEMPLARS` for its label set — so a latency spike in
        the rendered histogram can be traced to the requests behind it.

        Exemplars never reach the Prometheus text rendering (format
        0.0.4 has no exemplar syntax); they surface through
        :meth:`exemplars`, :meth:`samples`, and the ``/debug`` view.
        """
        key = _label_key(labels)
        with self._lock:
            counts, total, count = self._series.get(
                key, ([0] * len(self.buckets), 0.0, 0)
            )
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            self._series[key] = (counts, total + value, count + 1)
            if exemplar is not None:
                entries = self._exemplars.setdefault(key, [])
                self._exemplar_serial += 1
                heapq.heappush(
                    entries, (float(value), self._exemplar_serial, dict(exemplar))
                )
                if len(entries) > self.MAX_EXEMPLARS:
                    heapq.heappop(entries)  # drop the fastest survivor

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(_label_key(labels))
        return series[2] if series else 0

    def exemplars(self, **labels: str) -> List[Dict]:
        """The retained outliers for one label set, slowest first, each
        ``{"value": seconds, ...exemplar fields}``."""
        with self._lock:
            entries = list(self._exemplars.get(_label_key(labels), ()))
        entries.sort(key=lambda entry: (-entry[0], entry[1]))
        return [
            {"value": value, **fields} for value, _, fields in entries
        ]

    def all_exemplars(self) -> List[Dict]:
        """Every retained outlier across label sets, slowest first, each
        carrying its ``labels`` alongside the exemplar fields."""
        with self._lock:
            flat = [
                (value, serial, dict(key), fields)
                for key, entries in self._exemplars.items()
                for value, serial, fields in entries
            ]
        flat.sort(key=lambda entry: (-entry[0], entry[1]))
        return [
            {"value": value, "labels": labels, **fields}
            for value, _, labels, fields in flat
        ]

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(
                (key, (list(counts), total, count))
                for key, (counts, total, count) in self._series.items()
            )
        lines = []
        for key, (counts, total, count) in items:
            for bound, cumulative in zip(self.buckets, counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, ('le', _format_value(bound)))} "
                    f"{cumulative}"
                )
            lines.append(
                f"{self.name}_bucket{_render_labels(key, ('le', '+Inf'))} "
                f"{count}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} {_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {count}")
        return lines

    def samples(self) -> List[Dict]:
        with self._lock:
            items = sorted(
                (key, (list(counts), total, count))
                for key, (counts, total, count) in self._series.items()
            )
        with self._lock:
            exemplars = {
                key: sorted(entries, key=lambda e: (-e[0], e[1]))
                for key, entries in self._exemplars.items()
            }
        out = []
        for key, (counts, total, count) in items:
            sample = {
                "labels": dict(key),
                "buckets": dict(zip(map(_format_value, self.buckets), counts)),
                "sum": total,
                "count": count,
            }
            kept = exemplars.get(key)
            if kept:
                sample["exemplars"] = [
                    {"value": value, **fields} for value, _, fields in kept
                ]
            out.append(sample)
        return out


class MetricsRegistry:
    """Registration plus rendering; one instance per daemon (or the
    process-global default from :func:`default_registry`)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(Counter(name, help_text, self._lock))

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._register(Gauge(name, help_text, self._lock))

    def histogram(self, name: str, help_text: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram(name, help_text, self._lock, buckets))

    def render(self) -> str:
        """The full exposition document, metric blocks sorted by name so
        the output is deterministic for any registration order."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-serializable dump of every metric's current series —
        the ``metrics.json`` the ``--telemetry`` sink writes."""
        return {
            name: {
                "kind": metric.kind,
                "help": metric.help,
                "samples": metric.samples(),
            }
            for name, metric in sorted(self._metrics.items())
        }


# -- the process-global default registry --------------------------------------

_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-global registry shared by the CLI, the engine, and any
    embedded caller that does not bring its own (the daemon does)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = MetricsRegistry()
        return _DEFAULT


def reset_default_registry() -> MetricsRegistry:
    """Swap in a fresh default registry (tests; telemetry re-enable)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = MetricsRegistry()
        return _DEFAULT
