"""Degradation accounting: the ``repro_degraded_total{reason}`` counter.

Every place the stack *survives* a failure instead of dying — a fused
kernel falling back to the object path, a broken pool replaced by the
sequential loop, a poison shard quarantined, a stuck job requeued, a
corrupt job dir scrubbed aside — records the event here.  The counter is
the operational contract of docs/ROBUSTNESS.md: a clean run shows zero,
and any non-zero reason labels exactly which self-healing path fired.

Recording is metrics + a structured log line + (when a telemetry sink is
active) a zero-duration ``degraded`` span, so every observability surface
tells the same story.  Like the rest of ``repro.obs`` this is near-free
on healthy runs: nothing here sits on a hot path — degradation events
are by definition rare.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry, default_registry

#: Counter of survived failures, labelled by self-healing path.
DEGRADED_COUNTER = "repro_degraded_total"

#: Counter of shard-transport payload bytes, labelled by transport
#: (``shm``/``mmap``).  The partitioner records the total buffer size of
#: every partition it publishes, so the perf trajectory can correlate
#: throughput with how many bytes actually crossed the process boundary.
SHARD_BYTES_COUNTER = "repro_shard_bytes_total"

#: The reasons the stack currently records (docs/ROBUSTNESS.md catalog).
DEGRADED_REASONS = (
    "kernel_fallback",     # fused kernel failed; shard redone on object path
    "pool_fallback",       # process pool unusable; sequential loop took over
    "pool_rebuilt",        # dead pool replaced by a fresh one mid-run
    "shard_retried",       # a shard attempt failed and was retried
    "shard_quarantined",   # a poison shard exhausted its retries
    "checkpoint_quarantined",  # an invalid checkpoint was set aside
    "job_requeued",        # a stuck service job was killed and requeued
    "store_quarantined",   # a corrupt job dir was scrubbed aside
)


def record_degraded(
    reason: str,
    registry: Optional[MetricsRegistry] = None,
    **fields,
) -> None:
    """Record one survived failure under ``reason``.

    ``registry`` defaults to the process-global registry (the daemon
    passes its own so ``/metrics`` carries the counts).  Extra ``fields``
    (shard number, tool, job id, error text) go to the structured log and
    span, not the metric labels — label cardinality stays bounded at the
    reason set.
    """
    target = registry if registry is not None else default_registry()
    target.counter(
        DEGRADED_COUNTER,
        "Failures survived by self-healing, by degradation path.",
    ).inc(reason=reason)
    telemetry.log.warning(
        "degraded", f"degraded path taken: {reason}", reason=reason, **fields
    )
    if telemetry.enabled():
        telemetry.emit_span("degraded", 0.0, reason=reason, **fields)


def record_shard_bytes(
    nbytes: int,
    transport: str,
    registry: Optional[MetricsRegistry] = None,
) -> None:
    """Count ``nbytes`` of published shard-transport payload.

    Called once per partition (not per shard, not per event), so it is
    nowhere near a hot path; label cardinality is bounded by the
    two-transport set.
    """
    target = registry if registry is not None else default_registry()
    target.counter(
        SHARD_BYTES_COUNTER,
        "Shard transport payload bytes published, by transport.",
    ).inc(nbytes, transport=transport)
