"""Structured tracing: spans, structured logs, and the JSONL sink.

The span API is the tracing half of :mod:`repro.obs`::

    from repro import obs

    with obs.span("shard.analyze", shard=3, tool="FastTrack"):
        ...  # timed: wall clock + CPU time, nesting tracked per thread

Every completed span appends one JSON line to ``DIR/spans.jsonl`` (the
``--telemetry DIR`` sink): name, span/parent ids, start timestamp, wall
and CPU seconds, ok/error status, and free-form attributes.  Nesting is
per-thread (a ``threading.local`` stack), and exception safety is part
of the contract: a span body that raises still emits its record, marked
``status="error"`` with the exception type, and re-raises unchanged.

Zero overhead when disabled — the default state.  :func:`span` returns a
shared no-op context manager without allocating, :func:`emit_span` and
the structured logger check one module global and return; no clock is
read, no file is touched.  The engine's hot loops therefore never pay
for telemetry they did not ask for (``benchmarks/bench_obs_overhead.py``
holds this under 2%).

Structured logging rides the same sink: ``obs.log.warning(event, msg,
**fields)`` writes a ``{"type": "log", ...}`` record when telemetry is
on and falls back to plain stderr otherwise, so engine diagnostics (the
``--jobs auto`` oversubscription warning, drain notices) are never lost
but become machine-readable the moment a sink exists.

Forked engine workers inherit the enabled state; the sink re-opens its
file append-only on first write from a new pid and writes whole lines
under a lock, so records from daemon threads never interleave.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import threading
import time
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)

SPANS_FILENAME = "spans.jsonl"
METRICS_FILENAME = "metrics.json"

#: Log severities accepted by the structured logger.
LOG_LEVELS = ("debug", "info", "warning", "error")


class _NullSpan:
    """The disabled-path span: a shared, stateless context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed region; records itself on ``__exit__`` (even on error)."""

    __slots__ = (
        "telemetry", "name", "attrs", "span_id", "parent_id",
        "_start_unix", "_start_wall", "_start_cpu",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict) -> None:
        self.telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (e.g. event counts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        telemetry = self.telemetry
        self.span_id = telemetry.next_id()
        stack = telemetry.stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start_unix = time.time()
        self._start_cpu = time.process_time()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start_wall
        cpu = time.process_time() - self._start_cpu
        stack = self.telemetry.stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start_unix": self._start_unix,
            "wall_s": wall,
            "cpu_s": cpu,
            "status": "ok" if exc_type is None else "error",
            "attrs": self.attrs,
        }
        if exc_type is not None:
            record["error"] = f"{exc_type.__name__}: {exc}"
        self.telemetry.write(record)
        return False  # never swallow the exception


class Telemetry:
    """An enabled sink: a directory holding ``spans.jsonl`` and (on
    :meth:`write_metrics`) a ``metrics.json`` registry snapshot."""

    def __init__(
        self,
        directory: str,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.registry = registry if registry is not None else default_registry()
        self.spans_path = os.path.join(directory, SPANS_FILENAME)
        self.metrics_path = os.path.join(directory, METRICS_FILENAME)
        self._lock = threading.Lock()
        self._stream = open(self.spans_path, "a", encoding="utf-8")
        self._pid = os.getpid()
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- span plumbing -------------------------------------------------------

    def next_id(self) -> int:
        return next(self._ids)

    def stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[int]:
        stack = self.stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def emit_span(
        self,
        name: str,
        wall_s: float,
        cpu_s: float = 0.0,
        start_unix: Optional[float] = None,
        status: str = "ok",
        **attrs,
    ) -> None:
        """Record a span measured elsewhere (e.g. inside a shard worker,
        whose timing travels back in the checkpoint payload)."""
        self.write({
            "type": "span",
            "name": name,
            "id": self.next_id(),
            "parent": self.current_span_id(),
            "start_unix": time.time() if start_unix is None else start_unix,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "status": status,
            "attrs": attrs,
        })

    def log(self, level: str, event: str, message: str, **fields) -> None:
        self.write({
            "type": "log",
            "level": level,
            "event": event,
            "message": message,
            "time_unix": time.time(),
            "fields": fields,
        })

    # -- sink ----------------------------------------------------------------

    def write(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            if os.getpid() != self._pid:
                # Forked worker: never share the parent's stream position.
                self._stream = open(self.spans_path, "a", encoding="utf-8")
                self._pid = os.getpid()
            self._stream.write(line)
            self._stream.flush()

    def write_metrics(self) -> str:
        """Snapshot the registry to ``metrics.json``; returns the path."""
        with open(self.metrics_path, "w", encoding="utf-8") as stream:
            json.dump(self.registry.snapshot(), stream, indent=2,
                      sort_keys=True)
            stream.write("\n")
        return self.metrics_path

    def close(self) -> None:
        with self._lock:
            try:
                self._stream.close()
            except OSError:  # pragma: no cover - best effort
                pass


# -- module-global switch ------------------------------------------------------

_ACTIVE: Optional[Telemetry] = None


def enable(
    directory: str, registry: Optional[MetricsRegistry] = None
) -> Telemetry:
    """Turn telemetry on, sinking to ``directory``; returns the sink.

    Re-enabling replaces (and closes) any previous sink.  Without an
    explicit ``registry`` the sink snapshots a *fresh* default registry,
    so one run's ``metrics.json`` never inherits a previous run's counts
    from the same process.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    if registry is None:
        registry = reset_default_registry()
    _ACTIVE = Telemetry(directory, registry)
    return _ACTIVE


def disable() -> None:
    """Turn telemetry off and close the sink (writing metrics.json)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.write_metrics()
        _ACTIVE.close()
        _ACTIVE = None


def enabled() -> bool:
    return _ACTIVE is not None


def active() -> Optional[Telemetry]:
    return _ACTIVE


def span(name: str, **attrs):
    """A context manager timing ``name``; free when telemetry is off."""
    telemetry = _ACTIVE
    if telemetry is None:
        return NULL_SPAN
    return telemetry.span(name, **attrs)


def emit_span(name: str, wall_s: float, cpu_s: float = 0.0,
              start_unix: Optional[float] = None, status: str = "ok",
              **attrs) -> None:
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.emit_span(name, wall_s, cpu_s=cpu_s, start_unix=start_unix,
                            status=status, **attrs)


class _Log:
    """Structured diagnostics: JSONL when telemetry is on, stderr else.

    The stderr fallback prints exactly ``{level}: {message}`` — so the
    command-line diagnostics users already see (``warning: --jobs 8
    exceeds ...``) are unchanged when no sink is configured — and only
    for warning/error severity; info/debug records exist solely for the
    sink, like a logger at WARNING threshold.
    """

    #: Levels that reach stderr when no sink is active.
    STDERR_LEVELS = ("warning", "error")

    @classmethod
    def _emit(cls, level: str, event: str, message: str, **fields) -> None:
        telemetry = _ACTIVE
        if telemetry is not None:
            telemetry.log(level, event, message, **fields)
        elif level in cls.STDERR_LEVELS:
            print(f"{level}: {message}", file=sys.stderr)

    def debug(self, event: str, message: str, **fields) -> None:
        self._emit("debug", event, message, **fields)

    def info(self, event: str, message: str, **fields) -> None:
        self._emit("info", event, message, **fields)

    def warning(self, event: str, message: str, **fields) -> None:
        self._emit("warning", event, message, **fields)

    def error(self, event: str, message: str, **fields) -> None:
        self._emit("error", event, message, **fields)


log = _Log()


# -- span-file schema ----------------------------------------------------------

_SPAN_KEYS = {
    "type", "name", "id", "parent", "start_unix", "wall_s", "cpu_s",
    "status", "attrs", "error",
}
_LOG_KEYS = {"type", "level", "event", "message", "time_unix", "fields"}


def validate_record(record: Dict) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid telemetry line."""
    if not isinstance(record, dict):
        raise ValueError(f"record is not an object: {record!r}")
    kind = record.get("type")
    if kind == "span":
        missing = (_SPAN_KEYS - {"error"}) - set(record)
        if missing:
            raise ValueError(f"span record missing {sorted(missing)}")
        unknown = set(record) - _SPAN_KEYS
        if unknown:
            raise ValueError(f"span record has unknown keys {sorted(unknown)}")
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError("span name must be a non-empty string")
        if not isinstance(record["id"], int):
            raise ValueError("span id must be an integer")
        if record["parent"] is not None and not isinstance(
            record["parent"], int
        ):
            raise ValueError("span parent must be an integer or null")
        for key in ("start_unix", "wall_s", "cpu_s"):
            if not isinstance(record[key], (int, float)):
                raise ValueError(f"span {key} must be a number")
        if record["wall_s"] < 0:
            raise ValueError("span wall_s must be >= 0")
        if record["status"] not in ("ok", "error"):
            raise ValueError(f"bad span status {record['status']!r}")
        if record["status"] == "error" and "error" not in record:
            raise ValueError("error span needs an 'error' description")
        if not isinstance(record["attrs"], dict):
            raise ValueError("span attrs must be an object")
    elif kind == "log":
        missing = _LOG_KEYS - set(record)
        if missing:
            raise ValueError(f"log record missing {sorted(missing)}")
        if record["level"] not in LOG_LEVELS:
            raise ValueError(f"bad log level {record['level']!r}")
        if not isinstance(record["fields"], dict):
            raise ValueError("log fields must be an object")
    else:
        raise ValueError(f"unknown record type {kind!r}")


def read_spans(path: str, validate: bool = True) -> List[Dict]:
    """Load (and by default validate) every record of a spans.jsonl file."""
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: bad JSON: {error}")
            if validate:
                try:
                    validate_record(record)
                except ValueError as error:
                    raise ValueError(f"{path}:{lineno}: {error}")
            records.append(record)
    return records


def validate_spans_file(path: str) -> int:
    """Validate a spans.jsonl file; returns the number of records."""
    return len(read_spans(path, validate=True))
