"""Structured tracing: spans, structured logs, and the JSONL sink.

The span API is the tracing half of :mod:`repro.obs`::

    from repro import obs

    with obs.span("shard.analyze", shard=3, tool="FastTrack"):
        ...  # timed: wall clock + CPU time, nesting tracked per thread

Every completed span appends one JSON line to the ``--telemetry DIR``
sink: name, span/parent ids, the owning ``trace_id``, start timestamp,
wall and CPU seconds, ok/error status, and free-form attributes.
Nesting is per-thread (a ``threading.local`` stack), and exception
safety is part of the contract: a span body that raises still emits its
record, marked ``status="error"`` with the exception type, and re-raises
unchanged.

Zero overhead when disabled — the default state.  :func:`span` returns a
shared no-op context manager without allocating, :func:`emit_span` and
the structured logger check one module global and return; no clock is
read, no file is touched.  The engine's hot loops therefore never pay
for telemetry they did not ask for (``benchmarks/bench_obs_overhead.py``
holds this under 2%).

Distributed traces.  Span ids are globally unique strings (a per-process
random prefix plus a counter), every record carries a ``trace_id``, and
:meth:`Telemetry.trace_scope` rebinds the current thread to a carried
trace/parent pair — the mechanism :mod:`repro.obs.tracecontext` uses to
join engine workers to the submitting request.  The process that called
:func:`enable` writes ``spans.jsonl``; any *other* pid (a forked pool
worker, a spawned one adopting via its carried context) writes its own
``spans-<pid>.jsonl`` in the same directory, so multi-process runs never
interleave writes within a file.  :func:`read_all_spans` reads the whole
sink back, and ``repro profile`` stitches it into one tree per trace.

Structured logging rides the same sink: ``obs.log.warning(event, msg,
**fields)`` writes a ``{"type": "log", ...}`` record when telemetry is
on and falls back to plain stderr otherwise, so engine diagnostics (the
``--jobs auto`` oversubscription warning, drain notices) are never lost
but become machine-readable the moment a sink exists.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import os
import sys
import threading
import time
from typing import Dict, Iterator, List, Optional, Union

from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)

SPANS_FILENAME = "spans.jsonl"
METRICS_FILENAME = "metrics.json"

#: Per-pid sink files written by worker processes: ``spans-<pid>.jsonl``.
WORKER_SPANS_PREFIX = "spans-"

#: Environment fallback for trace propagation into *spawned* workers,
#: which share no memory with the parent (see repro.obs.tracecontext).
TRACE_ENV = "REPRO_TRACE"

#: Log severities accepted by the structured logger.
LOG_LEVELS = ("debug", "info", "warning", "error")

SpanId = Union[int, str]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (collision odds are cosmological)."""
    return os.urandom(8).hex()


def worker_spans_filename(pid: int) -> str:
    return f"{WORKER_SPANS_PREFIX}{pid}.jsonl"


class _NullSpan:
    """The disabled-path span: a shared, stateless context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """One timed region; records itself on ``__exit__`` (even on error)."""

    __slots__ = (
        "telemetry", "name", "attrs", "span_id", "parent_id", "trace_id",
        "_start_unix", "_start_wall", "_start_cpu",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict) -> None:
        self.telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[SpanId] = None
        self.parent_id: Optional[SpanId] = None
        self.trace_id: Optional[str] = None

    def set(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (e.g. event counts)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        telemetry = self.telemetry
        self.span_id = telemetry.next_id()
        self.trace_id = telemetry.current_trace_id()
        stack = telemetry.stack()
        self.parent_id = stack[-1] if stack else telemetry.base_parent()
        stack.append(self.span_id)
        self._start_unix = time.time()
        self._start_cpu = time.process_time()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._start_wall
        cpu = time.process_time() - self._start_cpu
        stack = self.telemetry.stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "trace_id": self.trace_id,
            "start_unix": self._start_unix,
            "wall_s": wall,
            "cpu_s": cpu,
            "status": "ok" if exc_type is None else "error",
            "attrs": self.attrs,
        }
        if exc_type is not None:
            record["error"] = f"{exc_type.__name__}: {exc}"
        self.telemetry.write(record)
        return False  # never swallow the exception


class Telemetry:
    """An enabled sink: a directory holding ``spans.jsonl`` (plus
    ``spans-<pid>.jsonl`` per worker process) and (on
    :meth:`write_metrics`) a ``metrics.json`` registry snapshot."""

    def __init__(
        self,
        directory: str,
        registry: Optional[MetricsRegistry] = None,
        trace_id: Optional[str] = None,
        worker: bool = False,
    ) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.registry = registry if registry is not None else default_registry()
        self._pid = os.getpid()
        self.worker = worker
        self.spans_path = os.path.join(
            directory,
            worker_spans_filename(self._pid) if worker else SPANS_FILENAME,
        )
        self.metrics_path = os.path.join(directory, METRICS_FILENAME)
        self._lock = threading.Lock()
        self._stream = open(self.spans_path, "a", encoding="utf-8")
        self._ids = itertools.count(1)
        self._id_prefix = os.urandom(5).hex()
        self._local = threading.local()
        #: Run-level default; requests/jobs rebind via :meth:`trace_scope`.
        self.trace_id = trace_id if trace_id else new_trace_id()

    # -- fork safety ---------------------------------------------------------

    def _ensure_pid(self) -> None:
        """Adopt a fork-inherited sink on first use from a new pid.

        A forked worker must not share the parent's stream position, its
        (possibly held-at-fork) lock, its span-id sequence, or its
        per-thread span stacks — so all four are replaced, and writes go
        to this pid's own ``spans-<pid>.jsonl``.
        """
        if os.getpid() == self._pid:
            return
        self._pid = os.getpid()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._id_prefix = os.urandom(5).hex()
        self._local = threading.local()
        self.spans_path = os.path.join(
            self.directory, worker_spans_filename(self._pid)
        )
        self._stream = open(self.spans_path, "a", encoding="utf-8")

    # -- span plumbing -------------------------------------------------------

    def next_id(self) -> str:
        """A globally-unique span id: process prefix + local counter."""
        self._ensure_pid()
        return f"{self._id_prefix}{next(self._ids):06x}"

    def stack(self) -> List[SpanId]:
        self._ensure_pid()
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[SpanId]:
        stack = self.stack()
        return stack[-1] if stack else None

    # -- trace binding -------------------------------------------------------

    def current_trace_id(self) -> str:
        bound = getattr(self._local, "trace", None)
        return bound[0] if bound is not None else self.trace_id

    def base_parent(self) -> Optional[SpanId]:
        """The carried remote parent, used when the local stack is empty."""
        bound = getattr(self._local, "trace", None)
        return bound[1] if bound is not None else None

    @contextlib.contextmanager
    def trace_scope(
        self,
        trace_id: Optional[str],
        parent: Optional[SpanId] = None,
    ) -> Iterator["Telemetry"]:
        """Bind this thread to ``trace_id`` (and a remote ``parent`` span)
        for the duration; top-level spans opened inside attach there."""
        self._ensure_pid()
        previous = getattr(self._local, "trace", None)
        self._local.trace = (trace_id if trace_id else self.trace_id, parent)
        try:
            yield self
        finally:
            self._local.trace = previous

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def emit_span(
        self,
        name: str,
        wall_s: float,
        cpu_s: float = 0.0,
        start_unix: Optional[float] = None,
        status: str = "ok",
        **attrs,
    ) -> None:
        """Record a span measured elsewhere (a pre-timed region that was
        not wrapped in a live ``with obs.span(...)`` block)."""
        self.write({
            "type": "span",
            "name": name,
            "id": self.next_id(),
            "parent": self.current_span_id() or self.base_parent(),
            "trace_id": self.current_trace_id(),
            "start_unix": time.time() if start_unix is None else start_unix,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "status": status,
            "attrs": attrs,
        })

    def log(self, level: str, event: str, message: str, **fields) -> None:
        self.write({
            "type": "log",
            "level": level,
            "event": event,
            "message": message,
            "time_unix": time.time(),
            "trace_id": self.current_trace_id(),
            "fields": fields,
        })

    # -- sink ----------------------------------------------------------------

    def write(self, record: Dict) -> None:
        self._ensure_pid()
        record.setdefault("pid", self._pid)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            self._stream.write(line)
            self._stream.flush()

    def write_metrics(self) -> str:
        """Snapshot the registry to ``metrics.json``; returns the path."""
        with open(self.metrics_path, "w", encoding="utf-8") as stream:
            json.dump(self.registry.snapshot(), stream, indent=2,
                      sort_keys=True)
            stream.write("\n")
        return self.metrics_path

    def close(self) -> None:
        with self._lock:
            try:
                self._stream.close()
            except OSError:  # pragma: no cover - best effort
                pass


# -- module-global switch ------------------------------------------------------

_ACTIVE: Optional[Telemetry] = None


def enable(
    directory: str,
    registry: Optional[MetricsRegistry] = None,
    trace_id: Optional[str] = None,
    worker: bool = False,
) -> Telemetry:
    """Turn telemetry on, sinking to ``directory``; returns the sink.

    Re-enabling replaces (and closes) any previous sink.  Without an
    explicit ``registry`` the sink snapshots a *fresh* default registry,
    so one run's ``metrics.json`` never inherits a previous run's counts
    from the same process.  Non-worker sinks also export their directory
    and run trace id to ``REPRO_TRACE`` so spawn-started pool workers
    (which inherit env, not memory) can find the sink; ``worker=True``
    sinks write ``spans-<pid>.jsonl`` and leave the env alone.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    if registry is None:
        registry = reset_default_registry()
    _ACTIVE = Telemetry(directory, registry, trace_id=trace_id, worker=worker)
    if not worker:
        os.environ[TRACE_ENV] = json.dumps(
            {"dir": directory, "trace_id": _ACTIVE.trace_id}
        )
    return _ACTIVE


def disable() -> None:
    """Turn telemetry off and close the sink (writing metrics.json)."""
    global _ACTIVE
    if _ACTIVE is not None:
        if not _ACTIVE.worker:
            os.environ.pop(TRACE_ENV, None)
        _ACTIVE.write_metrics()
        _ACTIVE.close()
        _ACTIVE = None


def enabled() -> bool:
    return _ACTIVE is not None


def active() -> Optional[Telemetry]:
    return _ACTIVE


def span(name: str, **attrs):
    """A context manager timing ``name``; free when telemetry is off."""
    telemetry = _ACTIVE
    if telemetry is None:
        return NULL_SPAN
    return telemetry.span(name, **attrs)


def emit_span(name: str, wall_s: float, cpu_s: float = 0.0,
              start_unix: Optional[float] = None, status: str = "ok",
              **attrs) -> None:
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.emit_span(name, wall_s, cpu_s=cpu_s, start_unix=start_unix,
                            status=status, **attrs)


def current_trace_id() -> Optional[str]:
    """The trace id spans would record right now; None when disabled."""
    telemetry = _ACTIVE
    if telemetry is None:
        return None
    return telemetry.current_trace_id()


def trace_scope(trace_id: Optional[str], parent: Optional[SpanId] = None):
    """Bind the calling thread to ``trace_id`` while the ``with`` body
    runs; the shared null context when telemetry is off."""
    telemetry = _ACTIVE
    if telemetry is None:
        return NULL_SPAN
    return telemetry.trace_scope(trace_id, parent)


def propagation_context(**extra) -> Optional[Dict]:
    """The picklable trace context to hand a worker (None when off).

    Carries the active trace id, the would-be parent span, and the sink
    directory; ``extra`` keys (e.g. the submission timestamp used for
    queue-wait attribution) ride along verbatim.
    """
    telemetry = _ACTIVE
    if telemetry is None:
        return None
    context = {
        "trace_id": telemetry.current_trace_id(),
        "parent": telemetry.current_span_id() or telemetry.base_parent(),
        "dir": telemetry.directory,
    }
    context.update(extra)
    return context


class _Log:
    """Structured diagnostics: JSONL when telemetry is on, stderr else.

    The stderr fallback prints exactly ``{level}: {message}`` — so the
    command-line diagnostics users already see (``warning: --jobs 8
    exceeds ...``) are unchanged when no sink is configured — and only
    for warning/error severity; info/debug records exist solely for the
    sink, like a logger at WARNING threshold.
    """

    #: Levels that reach stderr when no sink is active.
    STDERR_LEVELS = ("warning", "error")

    @classmethod
    def _emit(cls, level: str, event: str, message: str, **fields) -> None:
        telemetry = _ACTIVE
        if telemetry is not None:
            telemetry.log(level, event, message, **fields)
        elif level in cls.STDERR_LEVELS:
            print(f"{level}: {message}", file=sys.stderr)

    def debug(self, event: str, message: str, **fields) -> None:
        self._emit("debug", event, message, **fields)

    def info(self, event: str, message: str, **fields) -> None:
        self._emit("info", event, message, **fields)

    def warning(self, event: str, message: str, **fields) -> None:
        self._emit("warning", event, message, **fields)

    def error(self, event: str, message: str, **fields) -> None:
        self._emit("error", event, message, **fields)


log = _Log()


# -- span-file schema ----------------------------------------------------------

_SPAN_KEYS = {
    "type", "name", "id", "parent", "trace_id", "pid", "start_unix",
    "wall_s", "cpu_s", "status", "attrs", "error",
}
#: Keys a span record may omit: ``error`` (ok spans), and ``trace_id``/
#: ``pid`` so pre-tracing span files still validate.
_SPAN_OPTIONAL = {"error", "trace_id", "pid"}
_LOG_KEYS = {
    "type", "level", "event", "message", "time_unix", "trace_id", "pid",
    "fields",
}
_LOG_OPTIONAL = {"trace_id", "pid"}


def _valid_span_id(value) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return True  # pre-tracing sinks used per-process integers
    return isinstance(value, str) and bool(value)


def validate_record(record: Dict) -> None:
    """Raise ``ValueError`` unless ``record`` is a valid telemetry line."""
    if not isinstance(record, dict):
        raise ValueError(f"record is not an object: {record!r}")
    kind = record.get("type")
    if kind == "span":
        missing = (_SPAN_KEYS - _SPAN_OPTIONAL) - set(record)
        if missing:
            raise ValueError(f"span record missing {sorted(missing)}")
        unknown = set(record) - _SPAN_KEYS
        if unknown:
            raise ValueError(f"span record has unknown keys {sorted(unknown)}")
        if not isinstance(record["name"], str) or not record["name"]:
            raise ValueError("span name must be a non-empty string")
        if not _valid_span_id(record["id"]):
            raise ValueError("span id must be an integer or non-empty string")
        if record["parent"] is not None and not _valid_span_id(
            record["parent"]
        ):
            raise ValueError(
                "span parent must be an id (integer or string) or null"
            )
        if "trace_id" in record and (
            not isinstance(record["trace_id"], str) or not record["trace_id"]
        ):
            raise ValueError("span trace_id must be a non-empty string")
        if "pid" in record and not isinstance(record["pid"], int):
            raise ValueError("span pid must be an integer")
        for key in ("start_unix", "wall_s", "cpu_s"):
            if not isinstance(record[key], (int, float)):
                raise ValueError(f"span {key} must be a number")
        if record["wall_s"] < 0:
            raise ValueError("span wall_s must be >= 0")
        if record["status"] not in ("ok", "error"):
            raise ValueError(f"bad span status {record['status']!r}")
        if record["status"] == "error" and "error" not in record:
            raise ValueError("error span needs an 'error' description")
        if not isinstance(record["attrs"], dict):
            raise ValueError("span attrs must be an object")
    elif kind == "log":
        missing = (_LOG_KEYS - _LOG_OPTIONAL) - set(record)
        if missing:
            raise ValueError(f"log record missing {sorted(missing)}")
        if record["level"] not in LOG_LEVELS:
            raise ValueError(f"bad log level {record['level']!r}")
        if not isinstance(record["fields"], dict):
            raise ValueError("log fields must be an object")
    else:
        raise ValueError(f"unknown record type {kind!r}")


def read_spans(path: str, validate: bool = True) -> List[Dict]:
    """Load (and by default validate) every record of a spans.jsonl file."""
    records = []
    with open(path, "r", encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{lineno}: bad JSON: {error}")
            if validate:
                try:
                    validate_record(record)
                except ValueError as error:
                    raise ValueError(f"{path}:{lineno}: {error}")
            records.append(record)
    return records


def span_files(directory: str) -> List[str]:
    """Every span file of a telemetry dir: the main ``spans.jsonl`` first,
    then the per-pid worker files in sorted order."""
    paths = []
    main = os.path.join(directory, SPANS_FILENAME)
    if os.path.exists(main):
        paths.append(main)
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if name.startswith(WORKER_SPANS_PREFIX) and name.endswith(".jsonl"):
            paths.append(os.path.join(directory, name))
    return paths


def read_all_spans(directory: str, validate: bool = True) -> List[Dict]:
    """Load every record from every span file of a telemetry dir."""
    records: List[Dict] = []
    for path in span_files(directory):
        records.extend(read_spans(path, validate=validate))
    return records


def validate_spans_file(path: str) -> int:
    """Validate a spans.jsonl file; returns the number of records."""
    return len(read_spans(path, validate=True))


def validate_telemetry_dir(directory: str) -> int:
    """Validate every span file in ``directory``; returns total records."""
    return len(read_all_spans(directory, validate=True))
