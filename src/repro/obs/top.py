"""``repro top`` — the terminal ops view, for daemons and local runs.

Two sources, one habit:

* **Service mode** (``repro top --url`` / ``--host/--port``): poll the
  daemon's ``GET /debug?format=json`` snapshot (``repro.debug/1``, see
  :mod:`repro.service.debug`) and render queue depth, in-flight jobs
  with their current stage, resident partitions, and the slowest recent
  jobs from the latency exemplars.
* **Local mode** (``repro top --telemetry DIR``): no daemon — read the
  span files a ``repro check --telemetry`` run wrote (the main
  ``spans.jsonl`` plus every worker's ``spans-<pid>.jsonl``), stitch
  them per trace, and show where the time went.

Rendering is plain text; the CLI loops it with ``--interval`` (or emits
one frame with ``--once``) — no curses, so output survives pipes and CI
logs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs import profile, telemetry


def _rows(headers: List[str], rows: List[List]) -> List[str]:
    """A fixed-width text table (headers + rows), no trailing spaces."""
    if not rows:
        return ["  (none)"]
    table = [headers] + [
        ["" if cell is None else str(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in table) for col in range(len(headers))
    ]
    out = []
    for index, row in enumerate(table):
        line = "  " + "  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        )
        out.append(line.rstrip())
        if index == 0:
            out.append("  " + "-" * (sum(widths) + 2 * (len(widths) - 1)))
    return out


def render_top(snapshot: Dict) -> str:
    """One frame of the service view from a ``repro.debug/1`` snapshot."""
    lines = [
        f"repro top — daemon {snapshot.get('status', '?')}, "
        f"up {snapshot.get('uptime_seconds', 0):.0f}s, "
        f"queue depth {snapshot.get('queue_depth', 0)}, "
        f"{snapshot.get('quarantined', 0)} quarantined",
    ]
    states = snapshot.get("jobs") or {}
    if states:
        lines.append(
            "jobs: " + "  ".join(
                f"{state}={count}" for state, count in sorted(states.items())
            )
        )
    lines.append("")
    lines.append("in flight:")
    lines.extend(_rows(
        ["job", "stage", "in stage", "elapsed", "trace", "tools"],
        [
            [
                job.get("job"), job.get("stage"),
                f"{job.get('stage_elapsed_s', 0):.1f}s",
                f"{job.get('elapsed_s', 0):.1f}s",
                job.get("trace_id"),
                ",".join(job.get("tools") or []),
            ]
            for job in snapshot.get("inflight") or []
        ],
    ))
    lines.append("")
    lines.append("slowest recent jobs:")
    lines.extend(_rows(
        ["seconds", "job", "tool", "trace", "shards"],
        [
            [
                f"{row.get('seconds', 0):.3f}", row.get("job"),
                row.get("tool"), row.get("trace_id"), row.get("shards"),
            ]
            for row in snapshot.get("slowest") or []
        ],
    ))
    partitions = snapshot.get("partitions") or []
    pinned = sum(1 for p in partitions if p.get("refcount"))
    lines.append("")
    lines.append(
        f"partitions: {len(partitions)} resident, {pinned} pinned"
    )
    degraded = snapshot.get("degraded") or {}
    if degraded:
        lines.append(
            "degraded: " + "  ".join(
                f"{reason}={int(count)}"
                for reason, count in sorted(degraded.items())
            )
        )
    return "\n".join(lines) + "\n"


# -- local (telemetry-dir) mode -----------------------------------------------


def snapshot_from_telemetry(directory: str) -> Dict:
    """Summarize a telemetry dir: traces, processes, slowest spans."""
    records = telemetry.read_all_spans(directory, validate=False)
    traces = profile.stitch_traces(records)
    entries = []
    for entry in sorted(
        traces.values(), key=lambda e: (-len(e["spans"]), e["trace_id"])
    ):
        roots_wall = sum(root["wall_s"] for root in entry["roots"])
        entries.append({
            "trace_id": entry["trace_id"],
            "spans": len(entry["spans"]),
            "pids": len(entry["pids"]),
            "wall_s": round(roots_wall, 6),
            "critical_path": profile.render_critical_path(entry["spans"]),
        })
    spans = [r for r in records if r.get("type") == "span"]
    slowest = sorted(spans, key=lambda s: -s["wall_s"])[:10]
    return {
        "schema": "repro.top.telemetry/1",
        "directory": directory,
        "files": len(telemetry.span_files(directory)),
        "traces": entries,
        "slowest": [
            {
                "name": profile._span_label(span),
                "wall_s": round(span["wall_s"], 6),
                "trace_id": span.get("trace_id"),
                "pid": span.get("pid"),
            }
            for span in slowest
        ],
    }


def render_telemetry_top(snapshot: Dict) -> str:
    """One frame of the local view from a telemetry-dir snapshot."""
    lines = [
        f"repro top — telemetry {snapshot['directory']} "
        f"({snapshot['files']} span file(s))",
        "",
        "traces:",
    ]
    lines.extend(_rows(
        ["trace", "spans", "procs", "wall"],
        [
            [
                entry["trace_id"], entry["spans"], entry["pids"],
                f"{entry['wall_s']:.3f}s",
            ]
            for entry in snapshot["traces"]
        ],
    ))
    for entry in snapshot["traces"]:
        if entry["critical_path"]:
            lines.append(f"  [{entry['trace_id']}] {entry['critical_path']}")
    lines.append("")
    lines.append("slowest spans:")
    lines.extend(_rows(
        ["wall", "span", "trace", "pid"],
        [
            [
                f"{span['wall_s'] * 1e3:.1f}ms", span["name"],
                span.get("trace_id"), span.get("pid"),
            ]
            for span in snapshot["slowest"]
        ],
    ))
    return "\n".join(lines) + "\n"
