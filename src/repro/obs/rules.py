"""Per-rule firing counts as live metrics — Figure 2, continuously.

FastTrack's performance claim rests on a distribution: >96% of monitored
operations take O(1) fast paths (PAPER.md Figure 2).  Every detector
already tallies its slow-path rule firings in ``CostStats.rules``; the
same-epoch fast paths deliberately run counter-free and their firing
counts are *derived* (reads/writes minus the counted slow paths) —
exactly the arithmetic ``repro.bench.harness.run_rule_frequencies`` uses
for the offline Figure 2 benchmark.  This module owns that derivation in
one place and flushes one run's tallies into the shared metric

    repro_rule_total{detector="FastTrack", rule="FT READ SAME EPOCH"}

so ``repro check --telemetry``, the engine, and every completed service
job reproduce Figure 2 live on ``/metrics``.  Flushes are batched — one
registry-lock acquisition per (rule, run), never one per event — and the
per-shard tallies the engine merges are plain ``Counter`` sums, so the
merged counts are deterministic for any shard count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.detector import CostStats
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry

#: The live Figure 2 metric: rule firings by detector and rule.
RULE_COUNTER = "repro_rule_total"
RULE_HELP = (
    "Analysis rule firings by detector and rule "
    "(same-epoch fast paths derived; reproduces Figure 2)"
)

#: Operation-mix companion: events analyzed by detector and class.
EVENTS_COUNTER = "repro_ops_total"
EVENTS_HELP = "Operations analyzed by detector and class (reads/writes/...)"

#: Rules whose counts are derived from the totals rather than counted on
#: the hot path (the paper's same-epoch fast paths), per detector.
_FT_READ_SLOW = ("FT READ SHARED", "FT READ EXCLUSIVE", "FT READ SHARE")
_FT_WRITE_SLOW = ("FT WRITE EXCLUSIVE", "FT WRITE SHARED")


def derived_rule_counts(tool: str, stats: CostStats) -> Dict[str, int]:
    """All rule firing counts for one run, fast paths included.

    Counted rules come straight from ``stats.rules``; the counter-free
    same-epoch rules are derived with the same arithmetic as
    ``run_rule_frequencies`` (FastTrack's derived READ SAME EPOCH also
    absorbs the optional ``FT READ SAME EPOCH SHARED`` hits, which keep
    their own row when the variant is enabled).  Keys sort alphabetically
    so every surface lists rules in the same order.
    """
    counts: Dict[str, int] = dict(stats.rules)
    if tool in ("FastTrack", "AsyncFinish"):
        # AsyncFinish inherits FastTrack's counter-free same-epoch fast
        # paths unchanged (the task rules only touch sync events).
        counts["FT READ SAME EPOCH"] = stats.reads - sum(
            counts.get(rule, 0) for rule in _FT_READ_SLOW
        )
        counts["FT WRITE SAME EPOCH"] = stats.writes - sum(
            counts.get(rule, 0) for rule in _FT_WRITE_SLOW
        )
    elif tool == "DJIT+":
        counts["DJIT+ READ SAME EPOCH"] = stats.reads - counts.get(
            "DJIT+ READ", 0
        )
        counts["DJIT+ WRITE SAME EPOCH"] = stats.writes - counts.get(
            "DJIT+ WRITE", 0
        )
    return dict(sorted(counts.items()))


def record_rule_counts(
    tool: str, stats: CostStats, registry: MetricsRegistry
) -> Dict[str, int]:
    """Flush one run's rule tallies into ``registry`` (batched: one
    counter update per rule, not per event).  Returns the counts."""
    counts = derived_rule_counts(tool, stats)
    rule_counter = registry.counter(RULE_COUNTER, RULE_HELP)
    for rule, count in counts.items():
        if count:
            rule_counter.inc(count, detector=tool, rule=rule)
    ops_counter = registry.counter(EVENTS_COUNTER, EVENTS_HELP)
    for cls, count in (
        ("reads", stats.reads),
        ("writes", stats.writes),
        ("syncs", stats.syncs),
        ("boundaries", stats.boundaries),
    ):
        if count:
            ops_counter.inc(count, detector=tool, **{"class": cls})
    return counts


def record_rules(tool: str, stats: CostStats,
                 registry: Optional[MetricsRegistry] = None) -> None:
    """Telemetry-aware entry point the engine and CLI call after a run:
    a no-op unless telemetry is enabled or a registry is given."""
    if registry is not None:
        record_rule_counts(tool, stats, registry)
        return
    active = telemetry.active()
    if active is not None:
        record_rule_counts(tool, stats, active.registry)
