"""BASICVC: the traditional vector-clock race detector.

BasicVC "maintains a read and a write VC for each memory location and
performs at least one VC comparison on every memory access" (Section 5.1).
It has no same-epoch fast path, so every read pays one O(n) comparison and
every write pays two — the cost profile FastTrack's ~10x speedup is measured
against.  Synchronization handling (Figure 3) is shared with the other
VC-based tools via :class:`~repro.core.vcsync.VCSyncDetector`, mirroring the
paper's shared optimized VC primitives.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.vectorclock import VectorClock
from repro.detectors.base import VCSyncDetector
from repro.trace import events as ev


class _BasicVarState:
    """Two full vector clocks per location: ``R_x`` and ``W_x``."""

    __slots__ = ("read_vc", "write_vc")

    def __init__(self) -> None:
        self.read_vc = VectorClock.bottom()
        self.write_vc = VectorClock.bottom()

    def shadow_words(self) -> int:
        return 3 + len(self.read_vc) + len(self.write_vc)


class BasicVC(VCSyncDetector):
    """The straightforward precise detector: all vector clocks, all the time."""

    name = "BasicVC"
    precise = True

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.vars: Dict[Hashable, _BasicVarState] = {}

    def var(self, name: Hashable) -> _BasicVarState:
        key = self.shadow_key(name)
        state = self.vars.get(key)
        if state is None:
            state = _BasicVarState()
            self.stats.vc_allocs += 2
            self.vars[key] = state
        return state

    def on_read(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        x = self.var(event.target)
        self.stats.vc_ops += 1
        if not x.write_vc.leq(t.vc):
            self.report(event, "write-read", f"write history {x.write_vc!r}")
        x.read_vc.set(t.tid, t.vc.clocks[t.tid])

    def on_write(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        x = self.var(event.target)
        self.stats.vc_ops += 2
        if not x.write_vc.leq(t.vc):
            self.report(event, "write-write", f"write history {x.write_vc!r}")
        if not x.read_vc.leq(t.vc):
            self.report(event, "read-write", f"read history {x.read_vc!r}")
        x.write_vc.set(t.tid, t.vc.get(t.tid))

    def shadow_memory_words(self) -> int:
        words = self.sync_shadow_words()
        for x in self.vars.values():
            words += x.shadow_words()
        return words
