"""The seven dynamic analyses compared in the paper's evaluation.

All tools implement the :class:`~repro.core.detector.Detector` interface and
are registered in :mod:`repro.detectors.registry`:

==============  =========  ====================================================
tool            precise?   reference
==============  =========  ====================================================
Empty           —          measures framework overhead only
Eraser          no         LockSet algorithm [33] + barrier extension [29]
MultiRace       no         hybrid LockSet/DJIT+ [30]
Goldilocks      yes        synchronization-device locksets [14]
BasicVC         yes        read + write vector clock per location
DJIT+           yes        epoch-optimized vector clocks [30]
FastTrack       yes        this paper
WCP             no*        weak-causally-precedes (predictive; repro.predict)
AsyncFinish     yes        FastTrack + async-finish task scopes (PAPERS.md)
==============  =========  ====================================================

(* WCP's extra reports are candidates made precise by vindication —
:mod:`repro.predict.vindicate` — not by Theorem 1; see docs/PREDICT.md.)
"""

from repro.detectors.base import (
    CostStats,
    Detector,
    RaceWarning,
    VCSyncDetector,
    coarse_grain,
    fine_grain,
)
from repro.detectors.empty import Empty
from repro.detectors.eraser import Eraser
from repro.detectors.basicvc import BasicVC
from repro.detectors.djit import DJITPlus
from repro.detectors.multirace import MultiRace
from repro.detectors.goldilocks import Goldilocks
from repro.detectors.classifier import SharingClassifier
from repro.detectors.asyncfinish import AsyncFinishDetector
from repro.core.fasttrack import FastTrack
from repro.detectors.registry import (
    DETECTORS,
    PRECISE_DETECTORS,
    default_tool_kwargs,
    make_detector,
    resolve_tool_name,
)
from repro.predict.wcp import WCPDetector

__all__ = [
    "CostStats",
    "Detector",
    "RaceWarning",
    "VCSyncDetector",
    "fine_grain",
    "coarse_grain",
    "Empty",
    "Eraser",
    "BasicVC",
    "DJITPlus",
    "MultiRace",
    "Goldilocks",
    "FastTrack",
    "WCPDetector",
    "AsyncFinishDetector",
    "SharingClassifier",
    "DETECTORS",
    "PRECISE_DETECTORS",
    "default_tool_kwargs",
    "make_detector",
    "resolve_tool_name",
]
