"""ERASER: the LockSet algorithm [33], extended for barriers [29].

Eraser enforces a *lock-based synchronization discipline*: every shared
variable should be consistently protected by some lock.  Per variable it
runs the classic ownership state machine

    VIRGIN → EXCLUSIVE(t) → SHARED → SHARED_MODIFIED

and, once a variable leaves the exclusive phase, maintains a candidate
lockset ``C(v)`` — intersected with the accessing thread's held locks on
every access — reporting a warning when ``C(v)`` becomes empty in the
SHARED_MODIFIED state.

Eraser is *unsound* and *incomplete* by design:

* fork/join and barrier synchronization do not update any lockset, so
  race-free fork/join programs produce spurious warnings (the paper's
  Table 1: 27 Eraser warnings vs. 8 real races);
* the EXCLUSIVE state forgives a genuinely racy handoff to the first other
  thread, so Eraser can *miss* races FastTrack finds (the hedc case).

Following the paper's evaluation setup ("ERASER [33], extended to handle
barrier synchronization [29]" — without it "the total number of warnings is
about three times higher"), a ``barrier_rel(T)`` event re-initializes every
variable's state machine: threads released from a barrier start a new phase
in which previous sharing history is forgotten.

Volatile accesses are ignored: stock Eraser has no happens-before reasoning,
which is one source of its false alarms on Eclipse (Section 5.3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional, Set

from repro.detectors.base import Detector
from repro.trace import events as ev

VIRGIN = 0
EXCLUSIVE = 1
SHARED = 2
SHARED_MODIFIED = 3

_STATE_NAMES = {
    VIRGIN: "virgin",
    EXCLUSIVE: "exclusive",
    SHARED: "shared",
    SHARED_MODIFIED: "shared-modified",
}


class _EraserVarState:
    __slots__ = ("state", "owner", "lockset")

    def __init__(self) -> None:
        self.state = VIRGIN
        self.owner = -1
        # None = the universe of locks (the candidate set before the first
        # post-exclusive access).
        self.lockset: Optional[FrozenSet[Hashable]] = None

    def shadow_words(self) -> int:
        return 3 + (len(self.lockset) if self.lockset else 0)


class Eraser(Detector):
    """The LockSet-discipline checker."""

    name = "Eraser"
    precise = False

    def __init__(self, handle_barriers: bool = True, **kwargs) -> None:
        super().__init__(**kwargs)
        self.vars: Dict[Hashable, _EraserVarState] = {}
        self.held: Dict[int, Set[Hashable]] = {}
        self.handle_barriers = handle_barriers

    def var(self, name: Hashable) -> _EraserVarState:
        key = self.shadow_key(name)
        state = self.vars.get(key)
        if state is None:
            state = _EraserVarState()
            self.vars[key] = state
        return state

    def _held(self, tid: int) -> Set[Hashable]:
        held = self.held.get(tid)
        if held is None:
            held = set()
            self.held[tid] = held
        return held

    # -- lock tracking -------------------------------------------------------

    def on_acquire(self, event: ev.Event) -> None:
        self._held(event.tid).add(event.target)

    def on_release(self, event: ev.Event) -> None:
        self._held(event.tid).discard(event.target)

    def on_barrier_release(self, event: ev.Event) -> None:
        if not self.handle_barriers:
            return
        self.stats.rule("ERASER BARRIER RESET")
        for state in self.vars.values():
            state.state = VIRGIN
            state.owner = -1
            state.lockset = None

    # -- the state machine ------------------------------------------------------

    def _access(self, event: ev.Event, is_write: bool) -> None:
        x = self.var(event.target)
        tid = event.tid
        state = x.state

        if state == VIRGIN:
            self.stats.rule("ERASER FIRST ACCESS")
            x.state = EXCLUSIVE
            x.owner = tid
            return
        if state == EXCLUSIVE:
            if tid == x.owner:
                self.stats.rule("ERASER EXCLUSIVE")
                return
            # Second thread: leave the exclusive phase.  The candidate set
            # becomes the locks held right now (universe ∩ held).
            x.lockset = frozenset(self._held(tid))
            x.state = SHARED_MODIFIED if is_write else SHARED
            self.stats.rule("ERASER SHARE TRANSITION")
        else:
            held = self._held(tid)
            current = x.lockset if x.lockset is not None else frozenset(held)
            x.lockset = (
                current & frozenset(held) if current else frozenset()
            )
            if is_write and state == SHARED:
                x.state = SHARED_MODIFIED
            self.stats.rule("ERASER LOCKSET REFINE")

        if x.state == SHARED_MODIFIED and not x.lockset:
            self.report(
                event,
                "lockset-empty",
                "no lock consistently protects this variable",
            )

    def on_read(self, event: ev.Event) -> None:
        self._access(event, is_write=False)

    def on_write(self, event: ev.Event) -> None:
        self._access(event, is_write=True)

    # -- memory accounting --------------------------------------------------------

    def shadow_memory_words(self) -> int:
        words = 0
        for x in self.vars.values():
            words += x.shadow_words()
        for held in self.held.values():
            words += 1 + len(held)
        return words
