"""DJIT+: the high-performance vector-clock race detector [30].

DJIT+ keeps two vector clocks per location, like BasicVC, but adds the
same-epoch fast paths shown in the right column of Figure 2 (the revised
formulation the paper compares against — "some clocks are one less than in
the original ... slightly simpler and more directly comparable to
FastTrack"):

* `[DJIT+ READ SAME EPOCH]`  — ``R_x(t) == C_t(t)``: skip the check
  (78.0% of reads in the paper's benchmarks);
* `[DJIT+ READ]`             — O(n) check ``W_x ⊑ C_t``, then
  ``R_x(t) := C_t(t)``;
* `[DJIT+ WRITE SAME EPOCH]` — ``W_x(t) == C_t(t)``: skip (71.0% of writes);
* `[DJIT+ WRITE]`            — O(n) checks ``W_x ⊑ C_t`` and ``R_x ⊑ C_t``,
  then ``W_x(t) := C_t(t)``.

The remaining O(n) work on ~22% of reads and ~29% of writes is exactly what
FastTrack's epochs eliminate.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.core.vectorclock import VectorClock
from repro.detectors.base import VCSyncDetector
from repro.trace import events as ev


class _DJITVarState:
    __slots__ = ("read_vc", "write_vc")

    def __init__(self) -> None:
        self.read_vc = VectorClock.bottom()
        self.write_vc = VectorClock.bottom()

    def shadow_words(self) -> int:
        return 3 + len(self.read_vc) + len(self.write_vc)


class DJITPlus(VCSyncDetector):
    """The epoch-fast-pathed vector-clock detector of Pozniansky & Schuster."""

    name = "DJIT+"
    precise = True

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.vars: Dict[Hashable, _DJITVarState] = {}

    def var(self, name: Hashable) -> _DJITVarState:
        key = self.shadow_key(name)
        state = self.vars.get(key)
        if state is None:
            state = _DJITVarState()
            self.stats.vc_allocs += 2
            self.vars[key] = state
        return state

    def on_read(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        x = self.var(event.target)
        clock = t.vc.clocks[t.tid]
        # [DJIT+ READ SAME EPOCH]: counted by derivation (hot path).
        if x.read_vc.get(t.tid) == clock:
            return
        self.stats.rule("DJIT+ READ")
        self.stats.vc_ops += 1
        if not x.write_vc.leq(t.vc):
            self.report(event, "write-read", f"write history {x.write_vc!r}")
        x.read_vc.set(t.tid, clock)

    def on_write(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        x = self.var(event.target)
        clock = t.vc.clocks[t.tid]
        # [DJIT+ WRITE SAME EPOCH]: counted by derivation (hot path).
        if x.write_vc.get(t.tid) == clock:
            return
        self.stats.rule("DJIT+ WRITE")
        self.stats.vc_ops += 2
        if not x.write_vc.leq(t.vc):
            self.report(event, "write-write", f"write history {x.write_vc!r}")
        if not x.read_vc.leq(t.vc):
            self.report(event, "read-write", f"read history {x.read_vc!r}")
        x.write_vc.set(t.tid, clock)

    def shadow_memory_words(self) -> int:
        words = self.sync_shadow_words()
        for x in self.vars.values():
            words += x.shadow_words()
        return words
