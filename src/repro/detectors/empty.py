"""The EMPTY tool: no analysis at all.

The paper uses EMPTY to measure the cost of delivering the event stream to a
back-end checker (a 4.1x average slowdown under RoadRunner).  Here it plays
the same role: the harness reports every tool's replay time as a ratio to
EMPTY's, isolating analysis cost from event-delivery cost.
"""

from __future__ import annotations

from repro.detectors.base import Detector


class Empty(Detector):
    """Receives every event and does nothing with it."""

    name = "Empty"
    precise = False
