"""Sharing-pattern classification: quantifying the paper's key insight.

Section 1: "the vast majority of data in multithreaded programs is either
thread local, lock protected, or read shared" — that empirical observation
is what justifies FastTrack's adaptive representation.  This analysis
measures it: every variable (and every access) is classified into

* ``thread-local``   — accessed by a single thread;
* ``lock-protected`` — accessed by several threads, with some lock held on
  every access (a non-empty consistent candidate lockset);
* ``read-shared``    — accessed by several threads, but written by at most
  one, with no foreign write after the first foreign read (the
  initialize-then-share idiom);
* ``synchronized``   — shared and race-free, but ordered by fork/join,
  barriers, volatiles, or monitor handoffs rather than a consistent lock;
* ``racy``           — involved in a detected race.

The classifier runs a full FastTrack instance for the race verdict (so
``racy`` is precise), plus Eraser-style lockset refinement and accessor
bookkeeping for the other classes.  ``fractions()`` weights classes by
access count, which is the quantity the paper's fast-path argument needs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional, Set

from repro.core.detector import Detector
from repro.core.fasttrack import FastTrack
from repro.trace import events as ev

THREAD_LOCAL = "thread-local"
LOCK_PROTECTED = "lock-protected"
READ_SHARED = "read-shared"
SYNCHRONIZED = "synchronized"
RACY = "racy"

CLASSES = (THREAD_LOCAL, LOCK_PROTECTED, READ_SHARED, SYNCHRONIZED, RACY)


class _VarProfile:
    __slots__ = (
        "accessors",
        "writers",
        "lockset",
        "accesses",
        "foreign_read_seen",
        "write_after_share",
    )

    def __init__(self) -> None:
        self.accessors: Set[int] = set()
        self.writers: Set[int] = set()
        self.lockset: Optional[FrozenSet[Hashable]] = None  # None = universe
        self.accesses = 0
        self.foreign_read_seen = False
        self.write_after_share = False


class SharingClassifier(Detector):
    """Classifies every variable by its observed sharing pattern."""

    name = "SharingClassifier"
    precise = True  # its 'racy' class comes from FastTrack

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.fasttrack = FastTrack(shadow_key=self.shadow_key)
        self.profiles: Dict[Hashable, _VarProfile] = {}
        self.held: Dict[int, Set[Hashable]] = {}

    # -- bookkeeping -----------------------------------------------------------

    def _profile(self, var: Hashable) -> _VarProfile:
        key = self.shadow_key(var)
        profile = self.profiles.get(key)
        if profile is None:
            profile = _VarProfile()
            self.profiles[key] = profile
        return profile

    def _held(self, tid: int) -> Set[Hashable]:
        held = self.held.get(tid)
        if held is None:
            held = set()
            self.held[tid] = held
        return held

    def on_acquire(self, event: ev.Event) -> None:
        self.fasttrack.handle(event)
        self._held(event.tid).add(event.target)

    def on_release(self, event: ev.Event) -> None:
        self.fasttrack.handle(event)
        self._held(event.tid).discard(event.target)

    def on_fork(self, event: ev.Event) -> None:
        self.fasttrack.handle(event)

    def on_join(self, event: ev.Event) -> None:
        self.fasttrack.handle(event)

    def on_volatile_read(self, event: ev.Event) -> None:
        self.fasttrack.handle(event)

    def on_volatile_write(self, event: ev.Event) -> None:
        self.fasttrack.handle(event)

    def on_barrier_release(self, event: ev.Event) -> None:
        self.fasttrack.handle(event)

    def _access(self, event: ev.Event, is_write: bool) -> None:
        self.fasttrack.handle(event)
        profile = self._profile(event.target)
        tid = event.tid
        profile.accesses += 1
        if profile.accessors and (
            tid not in profile.accessors or len(profile.accessors) > 1
        ):
            # The variable is shared: refine the candidate lockset with the
            # locks held on this access.
            held = frozenset(self._held(tid))
            profile.lockset = (
                held if profile.lockset is None else profile.lockset & held
            )
        if not is_write:
            if profile.writers and tid not in profile.writers:
                profile.foreign_read_seen = True
        else:
            if profile.foreign_read_seen:
                # A write landing after the variable was read-shared: the
                # initialize-then-share idiom is over.
                profile.write_after_share = True
        profile.accessors.add(tid)
        if is_write:
            profile.writers.add(tid)

    def on_read(self, event: ev.Event) -> None:
        self._access(event, is_write=False)

    def on_write(self, event: ev.Event) -> None:
        self._access(event, is_write=True)

    # -- results ------------------------------------------------------------------

    def classify(self) -> Dict[Hashable, str]:
        """The sharing class of every variable seen so far."""
        racy_keys = self.fasttrack._warned_keys
        result: Dict[Hashable, str] = {}
        for key, profile in self.profiles.items():
            if key in racy_keys:
                result[key] = RACY
            elif len(profile.accessors) <= 1:
                result[key] = THREAD_LOCAL
            elif profile.lockset:
                result[key] = LOCK_PROTECTED
            elif len(profile.writers) <= 1 and not profile.write_after_share:
                result[key] = READ_SHARED
            else:
                result[key] = SYNCHRONIZED
        return result

    def fractions(self, by_accesses: bool = True) -> Dict[str, float]:
        """Class weights, by access count (default) or by variable count."""
        classes = self.classify()
        totals = {cls: 0 for cls in CLASSES}
        for key, cls in classes.items():
            weight = self.profiles[key].accesses if by_accesses else 1
            totals[cls] += weight
        denominator = sum(totals.values()) or 1
        return {cls: count / denominator for cls, count in totals.items()}

    @property
    def warnings(self):  # type: ignore[override]
        return self.fasttrack.warnings

    @warnings.setter
    def warnings(self, value) -> None:  # the base __init__ assigns []
        pass
