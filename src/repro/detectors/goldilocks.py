"""GOLDILOCKS: precise race detection with synchronization-device locksets [14].

Goldilocks captures happens-before without vector clocks.  Per memory
location it maintains a set of "synchronization devices" — threads, locks,
and volatile variables — such that a thread in the set can safely access the
location.  Synchronization operations grow locksets by the transfer rules

    acq(t,m):   if m ∈ LS  then  LS ∪= {t}
    rel(t,m):   if t ∈ LS  then  LS ∪= {m}
    fork(t,u):  if t ∈ LS  then  LS ∪= {u}
    join(t,u):  if u ∈ LS  then  LS ∪= {t}
    vol_wr(t,v): if t ∈ LS then  LS ∪= {v}
    vol_rd(t,v): if v ∈ LS then  LS ∪= {t}
    barrier(T): if LS ∩ T ≠ ∅ then LS ∪= T

Like the original, we use the *lazy* formulation: synchronization operations
are appended to a global event list in O(1), and a location's locksets are
only brought up to date (by replaying the events since their last position)
when the location is accessed.  The short-circuit check — "accessing thread
already in the lockset" — skips the replay entirely, which is Goldilocks'
own fast path.

Precision for read-write races requires one lockset **per outstanding
access**: one for the last write plus one per thread that has read since
(all grown independently by the rules above).  This corresponds to the
original's per-access positions into the event list.  A write checks itself
against *all* of them, then collapses the history to a single fresh record.

Two costs are inherent and reproduce the paper's findings (31.6x average
slowdown in RoadRunner): every lockset is a set that must be updated per
sync event in its replay window, and the global event list can only be
trimmed once every location has caught up — the original needed garbage-
collector integration for this; we approximate with a periodic flush that
eagerly replays all live records and clears the list.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.detectors.base import Detector
from repro.trace import events as ev

# Lockset elements are tagged so thread ids can never collide with lock or
# volatile names.
_T = "T"
_L = "L"
_V = "V"

#: Number of pending sync events that triggers an eager flush of the global
#: event list (the GC-integration surrogate).
FLUSH_THRESHOLD = 8192


class _Record:
    """One outstanding access: its lockset and its event-list position."""

    __slots__ = ("lockset", "pos")

    def __init__(self, lockset: Set[Tuple[str, Hashable]], pos: int) -> None:
        self.lockset = lockset
        self.pos = pos


class _GoldilocksVarState:
    __slots__ = ("write_record", "read_records", "owner")

    def __init__(self) -> None:
        self.write_record: Optional[_Record] = None
        self.read_records: Dict[int, _Record] = {}
        # Unsound thread-local extension: -1 = virgin, -2 = shared (past the
        # forgiven handoff), otherwise the exclusive owner's tid.
        self.owner = -1

    def shadow_words(self) -> int:
        words = 3
        if self.write_record is not None:
            words += 2 + len(self.write_record.lockset)
        for record in self.read_records.values():
            words += 2 + len(record.lockset)
        return words


class Goldilocks(Detector):
    """The precise lockset-based detector of Elmas, Qadeer, and Tasiran."""

    name = "Goldilocks"
    precise = True

    def __init__(
        self,
        flush_threshold: int = FLUSH_THRESHOLD,
        unsound_thread_local: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.vars: Dict[Hashable, _GoldilocksVarState] = {}
        self._sync_events: List[tuple] = []
        self._base = 0  # global index of _sync_events[0]
        self._flush_threshold = flush_threshold
        #: The paper's RoadRunner Goldilocks ran "utilizing an unsound
        #: extension to handle thread-local data efficiently.  (This
        #: extension caused it to miss the three races in hedc...)".  When
        #: enabled, a variable's first handoff to a second thread is
        #: forgiven: no race check, and tracking restarts at that access.
        self.unsound_thread_local = unsound_thread_local

    def var(self, name: Hashable) -> _GoldilocksVarState:
        key = self.shadow_key(name)
        state = self.vars.get(key)
        if state is None:
            state = _GoldilocksVarState()
            self.vars[key] = state
        return state

    # -- the global synchronization-event list -----------------------------------

    def _append_sync(self, entry: tuple) -> None:
        self._sync_events.append(entry)
        if len(self._sync_events) >= self._flush_threshold:
            self._flush()

    def _flush(self) -> None:
        """Bring every live record up to date and clear the event list."""
        self.stats.rule("GOLDILOCKS FLUSH")
        for state in self.vars.values():
            if state.write_record is not None:
                self._replay(state.write_record)
            for record in state.read_records.values():
                self._replay(record)
        self._base += len(self._sync_events)
        self._sync_events.clear()

    def _replay(self, record: _Record) -> None:
        """Apply the transfer rules for all events after ``record.pos``."""
        start = record.pos - self._base
        events = self._sync_events
        if start >= len(events):
            return
        lockset = record.lockset
        applied = 0
        for entry in events[start:]:
            applied += 1
            op = entry[0]
            if op == "barrier":
                members = entry[1]
                if lockset & members:
                    lockset |= members
            else:
                _, trigger, grant = entry
                if trigger in lockset:
                    lockset.add(grant)
        record.pos = self._base + len(events)
        self.stats.rules["GOLDILOCKS APPLY"] += applied

    def _now(self) -> int:
        return self._base + len(self._sync_events)

    # -- synchronization operations (O(1): append to the list) --------------------

    def on_acquire(self, event: ev.Event) -> None:
        self._append_sync(("sync", (_L, event.target), (_T, event.tid)))

    def on_release(self, event: ev.Event) -> None:
        self._append_sync(("sync", (_T, event.tid), (_L, event.target)))

    def on_fork(self, event: ev.Event) -> None:
        self._append_sync(("sync", (_T, event.tid), (_T, event.target)))

    def on_join(self, event: ev.Event) -> None:
        self._append_sync(("sync", (_T, event.target), (_T, event.tid)))

    def on_volatile_write(self, event: ev.Event) -> None:
        self._append_sync(("sync", (_T, event.tid), (_V, event.target)))

    def on_volatile_read(self, event: ev.Event) -> None:
        self._append_sync(("sync", (_V, event.target), (_T, event.tid)))

    def on_barrier_release(self, event: ev.Event) -> None:
        members = frozenset((_T, tid) for tid in event.target)
        self._append_sync(("barrier", members))

    # -- accesses ----------------------------------------------------------------

    def _ordered_after(self, record: _Record, tid: int) -> bool:
        """Whether thread ``tid``'s current operation happens after the
        access ``record`` describes (short-circuit first, then replay)."""
        element = (_T, tid)
        if element in record.lockset:  # Goldilocks' own short-circuit check
            return True
        self._replay(record)
        return element in record.lockset

    def _thread_local_fast_path(
        self, x: _GoldilocksVarState, tid: int
    ) -> bool:
        """The unsound extension: skip all tracking while a variable is
        thread-local, and forgive the first handoff to a second thread.
        Returns True if the access has been fully handled."""
        if x.owner == -2:
            return False
        if x.owner == -1:
            x.owner = tid
            return False  # fall through: install records normally
        if x.owner == tid:
            return False
        # Handoff: unsoundly treat the transfer as ordered and restart.
        x.owner = -2
        x.write_record = None
        x.read_records.clear()
        self.stats.rule("GOLDILOCKS UNSOUND HANDOFF")
        return False

    def on_read(self, event: ev.Event) -> None:
        x = self.var(event.target)
        tid = event.tid
        if self.unsound_thread_local:
            self._thread_local_fast_path(x, tid)
        if x.write_record is not None and not self._ordered_after(
            x.write_record, tid
        ):
            self.report(event, "write-read", "unordered previous write")
        x.read_records[tid] = _Record({(_T, tid)}, self._now())

    def on_write(self, event: ev.Event) -> None:
        x = self.var(event.target)
        tid = event.tid
        if self.unsound_thread_local:
            self._thread_local_fast_path(x, tid)
        if x.write_record is not None and not self._ordered_after(
            x.write_record, tid
        ):
            self.report(event, "write-write", "unordered previous write")
        for reader, record in x.read_records.items():
            if reader != tid and not self._ordered_after(record, tid):
                self.report(
                    event, "read-write", f"unordered read by thread {reader}"
                )
        x.read_records.clear()
        x.write_record = _Record({(_T, tid)}, self._now())

    # -- memory accounting ----------------------------------------------------------

    def shadow_memory_words(self) -> int:
        words = 2 * len(self._sync_events)
        for x in self.vars.values():
            words += x.shadow_words()
        return words
