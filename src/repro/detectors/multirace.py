"""MULTIRACE: the hybrid LockSet / DJIT+ detector [29, 30].

MultiRace "maintains DJIT+'s instrumentation state, as well as a lock set
for each memory location.  The checker updates the lock set for a location
on the first access in an epoch, and full vector clock comparisons are
performed after this lock set becomes empty" (Section 5.1).  It also uses
Eraser's unsound ownership machine for thread-local and read-shared data,
"which leads to imprecision".

Our implementation mirrors that structure:

* full DJIT+ shadow state per location (two vector clocks, updated exactly
  as DJIT+ does — hence the *larger* memory footprint the paper observed);
* an Eraser-style ownership phase: while a variable is thread-local or its
  candidate lockset is non-empty, the expensive VC comparisons are skipped
  (fewer VC ops than even FastTrack, per the paper);
* once the lockset becomes empty, every non-same-epoch access performs the
  DJIT+ comparisons.

The skipped comparisons are where the imprecision lives: races that occur
while the variable still looks lock-protected or thread-local are silently
missed (MultiRace reports 5 warnings on the paper's benchmarks vs.
FastTrack's 8, including only 1 of the 3 hedc races).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Optional, Set

from repro.core.vectorclock import VectorClock
from repro.detectors.base import VCSyncDetector
from repro.trace import events as ev


_MR_VIRGIN = 0
_MR_EXCLUSIVE = 1
_MR_READ_SHARED = 2
_MR_LOCKSET = 3
_MR_VC = 4


class _MultiRaceVarState:
    __slots__ = ("read_vc", "write_vc", "owner", "lockset", "phase")

    def __init__(self) -> None:
        self.read_vc = VectorClock.bottom()
        self.write_vc = VectorClock.bottom()
        self.owner = -1  # exclusive-phase owner
        self.lockset: Optional[FrozenSet[Hashable]] = None  # None = universe
        self.phase = _MR_VIRGIN

    def shadow_words(self) -> int:
        words = 4 + len(self.read_vc) + len(self.write_vc)
        if self.lockset:
            words += len(self.lockset)
        return words


class MultiRace(VCSyncDetector):
    """DJIT+ with an Eraser-style filter in front of the VC comparisons."""

    name = "MultiRace"
    precise = False

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.vars: Dict[Hashable, _MultiRaceVarState] = {}
        self.held: Dict[int, Set[Hashable]] = {}

    def var(self, name: Hashable) -> _MultiRaceVarState:
        key = self.shadow_key(name)
        state = self.vars.get(key)
        if state is None:
            state = _MultiRaceVarState()
            self.stats.vc_allocs += 2
            self.vars[key] = state
        return state

    def _held(self, tid: int) -> Set[Hashable]:
        held = self.held.get(tid)
        if held is None:
            held = set()
            self.held[tid] = held
        return held

    def on_acquire(self, event: ev.Event) -> None:
        super().on_acquire(event)
        self._held(event.tid).add(event.target)

    def on_release(self, event: ev.Event) -> None:
        super().on_release(event)
        self._held(event.tid).discard(event.target)

    # -- accesses -----------------------------------------------------------------

    def _lockset_phase(
        self, x: _MultiRaceVarState, tid: int, is_write: bool
    ) -> bool:
        """Run the Eraser-side filter; True = VC comparisons still skipped.

        This is Eraser's ownership machine, including its unsound
        thread-local and read-shared states — the source of MultiRace's
        missed races (hedc, jbb in Table 1).
        """
        phase = x.phase
        if phase == _MR_VC:
            return False
        if phase == _MR_VIRGIN:
            x.owner = tid
            x.phase = _MR_EXCLUSIVE
            self.stats.rule("MULTIRACE EXCLUSIVE")
            return True
        if phase == _MR_EXCLUSIVE:
            if tid == x.owner:
                self.stats.rule("MULTIRACE EXCLUSIVE")
                return True
            if not is_write:
                x.phase = _MR_READ_SHARED
                self.stats.rule("MULTIRACE READ SHARED")
                return True
        elif phase == _MR_READ_SHARED and not is_write:
            self.stats.rule("MULTIRACE READ SHARED")
            return True
        # A write leaving the exclusive/read-shared phase, or any access in
        # the lockset phase: refine the candidate set.
        held = frozenset(self._held(tid))
        x.lockset = held if x.lockset is None else (x.lockset & held)
        if x.lockset:
            x.phase = _MR_LOCKSET
            self.stats.rule("MULTIRACE LOCKSET")
            return True
        x.phase = _MR_VC
        self.stats.rule("MULTIRACE SWITCH TO VC")
        return False

    def on_read(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        x = self.var(event.target)
        clock = t.vc.clocks[t.tid]
        if x.read_vc.get(t.tid) == clock:  # same epoch: derived count
            return
        if not self._lockset_phase(x, event.tid, is_write=False):
            self.stats.vc_ops += 1
            if not x.write_vc.leq(t.vc):
                self.report(
                    event, "write-read", f"write history {x.write_vc!r}"
                )
        x.read_vc.set(t.tid, clock)

    def on_write(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        x = self.var(event.target)
        clock = t.vc.clocks[t.tid]
        if x.write_vc.get(t.tid) == clock:  # same epoch: derived count
            return
        if not self._lockset_phase(x, event.tid, is_write=True):
            self.stats.vc_ops += 2
            if not x.write_vc.leq(t.vc):
                self.report(
                    event, "write-write", f"write history {x.write_vc!r}"
                )
            if not x.read_vc.leq(t.vc):
                self.report(
                    event, "read-write", f"read history {x.read_vc!r}"
                )
        x.write_vc.set(t.tid, clock)

    # -- memory accounting ---------------------------------------------------------

    def shadow_memory_words(self) -> int:
        words = self.sync_shadow_words()
        for x in self.vars.values():
            words += x.shadow_words()
        for held in self.held.values():
            words += 1 + len(held)
        return words
