"""Re-exports of the common analysis framework.

The abstract interface lives in :mod:`repro.core.detector` (so the core
package is self-contained); tools import it from here, which is the
conventional location for a detector framework.
"""

from repro.core.detector import (
    CostStats,
    Detector,
    RaceWarning,
    coarse_grain,
    fine_grain,
)
from repro.core.vcsync import VCSyncDetector

__all__ = [
    "CostStats",
    "Detector",
    "RaceWarning",
    "VCSyncDetector",
    "fine_grain",
    "coarse_grain",
]
