"""Registry of the tools: the paper's seven (Table 1 column order) plus
the predictive family (``repro.predict``) and the async-finish detector
(``repro.detectors.asyncfinish``)."""

from __future__ import annotations

from typing import Dict, Type

from repro.core.detector import Detector
from repro.core.fasttrack import FastTrack
from repro.detectors.asyncfinish import AsyncFinishDetector
from repro.detectors.basicvc import BasicVC
from repro.detectors.djit import DJITPlus
from repro.detectors.empty import Empty
from repro.detectors.eraser import Eraser
from repro.detectors.goldilocks import Goldilocks
from repro.detectors.multirace import MultiRace
from repro.predict.wcp import WCPDetector

DETECTORS: Dict[str, Type[Detector]] = {
    "Empty": Empty,
    "Eraser": Eraser,
    "MultiRace": MultiRace,
    "Goldilocks": Goldilocks,
    "BasicVC": BasicVC,
    "DJIT+": DJITPlus,
    "FastTrack": FastTrack,
    "WCP": WCPDetector,
    "AsyncFinish": AsyncFinishDetector,
}

#: The tools that never report false alarms (Theorem 1 and its analogues).
#: WCP is deliberately absent: its extra reports are *candidates* made
#: precise by vindication (repro.predict), not by the observed order.
PRECISE_DETECTORS = ("Goldilocks", "BasicVC", "DJIT+", "FastTrack", "AsyncFinish")

_CANONICAL = {name.lower(): name for name in DETECTORS}

#: Convenience spellings accepted everywhere a tool name is (CLI flags,
#: service job submissions): ``--tool async`` reads better than
#: ``--tool asyncfinish`` in the task-parallel workflows.
_ALIASES = {"async": "AsyncFinish"}


def resolve_tool_name(name: str) -> str:
    """Canonicalize a tool name, case-insensitively (``wcp`` → ``WCP``,
    ``fasttrack`` → ``FastTrack``, alias ``async`` → ``AsyncFinish``).
    Unknown names pass through unchanged so the caller's own unknown-tool
    error fires with the original text."""
    token = name.strip().lower()
    token = _ALIASES.get(token, token)
    return _CANONICAL.get(token.lower(), name)


def default_tool_kwargs(name: str) -> Dict[str, object]:
    """The constructor kwargs every result-emitting surface (CLI ``check``,
    the engine path, the ``repro serve`` daemon) applies by default, so
    their outputs stay comparable: FastTrack (and its async-finish
    extension) tracks source sites to name both sides of a race."""
    if name in ("FastTrack", "AsyncFinish"):
        return {"track_sites": True}
    return {}


def make_detector(name: str, **kwargs) -> Detector:
    """Instantiate a tool by its Table 1 name (e.g. ``"DJIT+"``)."""
    try:
        cls = DETECTORS[name]
    except KeyError:
        known = ", ".join(DETECTORS)
        raise ValueError(f"unknown detector {name!r}; expected one of: {known}")
    return cls(**kwargs)
