"""Registry of the tools: the paper's seven (Table 1 column order) plus
the predictive family (``repro.predict``)."""

from __future__ import annotations

from typing import Dict, Type

from repro.core.detector import Detector
from repro.core.fasttrack import FastTrack
from repro.detectors.basicvc import BasicVC
from repro.detectors.djit import DJITPlus
from repro.detectors.empty import Empty
from repro.detectors.eraser import Eraser
from repro.detectors.goldilocks import Goldilocks
from repro.detectors.multirace import MultiRace
from repro.predict.wcp import WCPDetector

DETECTORS: Dict[str, Type[Detector]] = {
    "Empty": Empty,
    "Eraser": Eraser,
    "MultiRace": MultiRace,
    "Goldilocks": Goldilocks,
    "BasicVC": BasicVC,
    "DJIT+": DJITPlus,
    "FastTrack": FastTrack,
    "WCP": WCPDetector,
}

#: The tools that never report false alarms (Theorem 1 and its analogues).
#: WCP is deliberately absent: its extra reports are *candidates* made
#: precise by vindication (repro.predict), not by the observed order.
PRECISE_DETECTORS = ("Goldilocks", "BasicVC", "DJIT+", "FastTrack")

_CANONICAL = {name.lower(): name for name in DETECTORS}


def resolve_tool_name(name: str) -> str:
    """Canonicalize a tool name, case-insensitively (``wcp`` → ``WCP``,
    ``fasttrack`` → ``FastTrack``).  Unknown names pass through unchanged
    so the caller's own unknown-tool error fires with the original text."""
    return _CANONICAL.get(name.strip().lower(), name)


def default_tool_kwargs(name: str) -> Dict[str, object]:
    """The constructor kwargs every result-emitting surface (CLI ``check``,
    the engine path, the ``repro serve`` daemon) applies by default, so
    their outputs stay comparable: FastTrack tracks source sites to name
    both sides of a race."""
    return {"track_sites": True} if name == "FastTrack" else {}


def make_detector(name: str, **kwargs) -> Detector:
    """Instantiate a tool by its Table 1 name (e.g. ``"DJIT+"``)."""
    try:
        cls = DETECTORS[name]
    except KeyError:
        known = ", ".join(DETECTORS)
        raise ValueError(f"unknown detector {name!r}; expected one of: {known}")
    return cls(**kwargs)
