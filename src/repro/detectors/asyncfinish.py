"""Async-finish race detection with vector clocks (PAPERS.md).

"Efficient Data Race Detection of Async-Finish Programs Using Vector
Clocks" extends FastTrack-style analysis to task-parallel programs: a
task may ``async``-spawn child tasks, ``await`` one explicitly, or wrap
a region in a ``finish`` scope that blocks until every task spawned
(transitively) inside it has completed.  The trace vocabulary
(:mod:`repro.trace.events`) models these as::

    task_spawn(t, u)     # like fork(t, u), plus scope registration
    task_await(t, u)     # like join(t, u)
    finish_begin(t, f)   # open finish scope f
    finish_end(t, f)     # close f: join every task spawned under it

The vector-clock rules (tasks share the thread-id namespace, so the
Figure 3 machinery carries over unchanged):

========================  ===================================================
[AF SPAWN]                ``C_u := C_u ⊔ C_t;  C_t := inc_t(C_t)`` and ``u``
                          is registered with ``t``'s innermost *visible*
                          finish scope (inherited from ``t``'s spawner when
                          ``t`` has not opened one itself)
[AF AWAIT]                ``C_t := C_t ⊔ C_u;  C_u := inc_u(C_u)``
[AF FINISH BEGIN]         push a fresh scope; no clock movement
[AF FINISH END]           ``C_t := C_t ⊔ C_u`` for every ``u`` registered
                          with the scope (spawn order), then pop
========================  ===================================================

Transitive joining falls out of scope *inheritance by reference*: a
child spawned under scope ``S`` registers its own spawns with the same
``S`` object unless it opens a nested scope — whose ``finish_end`` is an
operation of the child, so ``S``'s closing join transitively covers the
nested tasks through the child's clock.

The detector subclasses :class:`~repro.core.fasttrack.FastTrack`, so all
access handling (epochs, adaptive read representation, Theorem 1
precision, warning dedup) is FastTrack's own; on traces with no task
events it is behaviorally identical to FastTrack.  Like every
``VCSyncDetector`` it is shard-safe: task events are synchronization, so
the engine broadcasts them to every shard and each shard sees the full
scope structure.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set

from repro.core.fasttrack import FastTrack
from repro.trace import events as ev


class _FinishScope:
    """One open ``finish`` scope: the tasks registered for its closing join."""

    __slots__ = ("label", "parent", "tasks")

    def __init__(
        self, label: Hashable, parent: Optional["_FinishScope"]
    ) -> None:
        self.label = label
        self.parent = parent
        self.tasks: List[int] = []


class AsyncFinishDetector(FastTrack):
    """FastTrack extended with async-finish task parallelism."""

    name = "AsyncFinish"
    precise = True

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        #: tid → the innermost finish scope governing its spawns (its own
        #: latest open scope, else the one inherited from its spawner).
        self._visible: Dict[int, Optional[_FinishScope]] = {}
        #: tid → scopes the task itself opened and has not yet closed.
        self._open_scopes: Dict[int, List[_FinishScope]] = {}
        #: Tasks known to have completed (awaited or finish-joined); their
        #: clocks are dead weight on feasible traces — see :meth:`compact`.
        self._terminated: Set[int] = set()

    # -- task rules -----------------------------------------------------------

    def on_task_spawn(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        u = self.thread(event.target)
        u.vc.join(t.vc)
        self.stats.vc_ops += 1
        u.refresh_epoch()
        t.vc.inc(t.tid)
        t.refresh_epoch()
        self.stats.rule("AF SPAWN")
        scope = self._visible.get(event.tid)
        # The child inherits the spawner's scope *by reference*: its own
        # spawns register with the same scope unless it opens a nested one.
        self._visible[event.target] = scope
        if scope is not None:
            scope.tasks.append(event.target)

    def on_task_await(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        u = self.thread(event.target)
        t.vc.join(u.vc)
        self.stats.vc_ops += 1
        t.refresh_epoch()
        u.vc.inc(u.tid)
        u.refresh_epoch()
        self._terminated.add(event.target)
        self.stats.rule("AF AWAIT")

    def on_finish_begin(self, event: ev.Event) -> None:
        scope = _FinishScope(event.target, self._visible.get(event.tid))
        self._open_scopes.setdefault(event.tid, []).append(scope)
        self._visible[event.tid] = scope
        self.stats.rule("AF FINISH BEGIN")

    def on_finish_end(self, event: ev.Event) -> None:
        stack = self._open_scopes.get(event.tid)
        if not stack:
            # Unmatched finish_end: no scope to close.  The feasibility
            # checker flags this; the online analysis just moves on.
            return
        scope = stack.pop()
        self._visible[event.tid] = scope.parent
        t = self.thread(event.tid)
        for utid in scope.tasks:
            if utid in self._terminated:
                continue  # already awaited explicitly
            u = self.thread(utid)
            t.vc.join(u.vc)
            self.stats.vc_ops += 1
            u.vc.inc(u.tid)
            u.refresh_epoch()
            self._terminated.add(utid)
        t.refresh_epoch()
        self.stats.rule("AF FINISH END")

    # -- compaction (repro.watch) ----------------------------------------------

    def compact(self) -> int:
        """FastTrack's compaction plus the clocks of completed tasks.

        A terminated task never acts again on a feasible trace and its
        closing join already flowed into its awaiter, so its
        ``ThreadState`` cannot influence any future warning.  Assumes
        task ids are not reused after termination.
        """
        released = super().compact()
        for tid in self._terminated:
            if self.threads.pop(tid, None) is not None:
                released += 1
            self._visible.pop(tid, None)
            self._open_scopes.pop(tid, None)
        self._terminated.clear()
        return released
