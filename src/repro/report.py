"""Human-readable race reports (markdown or self-contained HTML).

Bundles everything a developer triaging a race wants in one artifact:

* the detector's warnings, with both access sites when available;
* the happens-before oracle's confirmation (optional — O(n²) on the trace);
* the sharing classification of every racy variable's neighborhood;
* trace statistics (threads, operation mix, synchronization inventory).

Used by ``repro check --report out.md`` and importable directly::

    from repro.report import build_report
    text = build_report(trace, detector, fmt="markdown")
"""

from __future__ import annotations

import html
from typing import Iterable, Optional

from repro.core.detector import Detector
from repro.detectors.classifier import SharingClassifier
from repro.trace import events as ev
from repro.trace.trace import Trace


def _trace_summary(trace: Trace) -> dict:
    mix = trace.operation_mix()
    return {
        "events": len(trace),
        "threads": len(trace.threads()),
        "variables": len(trace.variables()),
        "locks": len(trace.locks()),
        "volatiles": len(trace.volatiles()),
        "reads": f"{mix['reads']:.1%}",
        "writes": f"{mix['writes']:.1%}",
        "synchronization": f"{mix['other']:.1%}",
    }


def build_report(
    trace: Trace,
    detector: Detector,
    fmt: str = "markdown",
    oracle_racy: Optional[Iterable] = None,
    classify: bool = True,
) -> str:
    """Render a report for a detector that has already processed ``trace``.

    ``oracle_racy`` (e.g. from :func:`repro.trace.racy_variables`) adds a
    ground-truth confirmation column; ``classify`` adds the sharing-pattern
    section (one extra pass over the trace).
    """
    if fmt not in ("markdown", "html"):
        raise ValueError(f"unknown report format {fmt!r}")

    summary = _trace_summary(trace)
    classes = None
    if classify:
        classifier = SharingClassifier()
        classifier.process(trace)
        classes = classifier.classify()
        fractions = classifier.fractions()

    oracle_set = set(oracle_racy) if oracle_racy is not None else None

    lines = []
    lines.append(f"# Race report — {detector.name}")
    lines.append("")
    verdict = (
        f"**{detector.warning_count} warning(s)**"
        if detector.warning_count
        else "**race-free** (no warnings)"
    )
    lines.append(f"Verdict: {verdict} over {summary['events']} events, "
                 f"{summary['threads']} threads.")
    lines.append("")
    lines.append("## Trace profile")
    lines.append("")
    lines.append("| metric | value |")
    lines.append("|---|---|")
    for key, value in summary.items():
        lines.append(f"| {key} | {value} |")
    if classes is not None:
        lines.append("")
        lines.append("sharing classes (fraction of accesses): " + ", ".join(
            f"{cls} {fraction:.1%}"
            for cls, fraction in fractions.items()
            if fraction > 0
        ))
    lines.append("")
    lines.append("## Warnings")
    lines.append("")
    if not detector.warnings:
        lines.append("None.")
    else:
        header = "| # | kind | variable | thread | site | conflicts with |"
        if oracle_set is not None:
            header += " confirmed |"
        lines.append(header)
        lines.append("|---|---|---|---|---|---|" + ("---|" if oracle_set is not None else ""))
        for index, warning in enumerate(detector.warnings):
            row = (
                f"| {index + 1} | {warning.kind} | `{warning.var}` "
                f"| {warning.tid} | {warning.site or '—'} "
                f"| {warning.prior} |"
            )
            if oracle_set is not None:
                confirmed = "yes" if warning.var in oracle_set else "NO"
                row += f" {confirmed} |"
            lines.append(row)
        if detector.suppressed_warnings:
            lines.append("")
            lines.append(
                f"({detector.suppressed_warnings} further occurrence(s) "
                "suppressed — one report per variable and per site)"
            )
    if classes is not None and detector.warnings:
        lines.append("")
        lines.append("## Racy variables in context")
        lines.append("")
        racy_keys = {detector.shadow_key(w.var) for w in detector.warnings}
        neighbors = sorted(
            (str(var), cls)
            for var, cls in classes.items()
            if var not in racy_keys and cls != "thread-local"
        )[:12]
        lines.append(
            "Shared-but-clean variables nearby (how the rest of the "
            "program synchronizes):"
        )
        lines.append("")
        for var, cls in neighbors:
            lines.append(f"* `{var}` — {cls}")
        if not neighbors:
            lines.append("* (none — every other variable is thread-local)")
    text = "\n".join(lines) + "\n"
    if fmt == "markdown":
        return text
    return _markdown_to_html(text)


def _markdown_to_html(markdown: str) -> str:
    """A minimal, dependency-free renderer for the report's own markdown
    subset (headings, tables, bullets, bold, code spans)."""
    body_lines = []
    in_table = False
    for raw in markdown.splitlines():
        line = html.escape(raw)
        # inline formatting
        while "`" in line:
            line = line.replace("`", "<code>", 1).replace("`", "</code>", 1)
        while "**" in line:
            line = line.replace("**", "<strong>", 1).replace(
                "**", "</strong>", 1
            )
        if raw.startswith("## "):
            body_lines.append(f"<h2>{line[3:]}</h2>")
        elif raw.startswith("# "):
            body_lines.append(f"<h1>{line[2:]}</h1>")
        elif raw.startswith("|"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if all(set(cell) <= {"-"} for cell in cells):
                continue  # the separator row
            if not in_table:
                body_lines.append("<table>")
                in_table = True
                tag = "th"
            else:
                tag = "td"
            body_lines.append(
                "<tr>"
                + "".join(f"<{tag}>{cell}</{tag}>" for cell in cells)
                + "</tr>"
            )
        else:
            if in_table:
                body_lines.append("</table>")
                in_table = False
            if raw.startswith("* "):
                body_lines.append(f"<li>{line[2:]}</li>")
            elif raw.strip():
                body_lines.append(f"<p>{line}</p>")
    if in_table:
        body_lines.append("</table>")
    style = (
        "body{font-family:system-ui,sans-serif;margin:2em;max-width:60em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:4px 8px;text-align:left}"
        "code{background:#f2f2f2;padding:1px 4px}"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>Race report</title><style>{style}</style></head><body>"
        + "\n".join(body_lines)
        + "</body></html>\n"
    )
