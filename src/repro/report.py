"""Race reports: human-readable renderings and the canonical JSON schema.

Bundles everything a developer triaging a race wants in one artifact:

* the detector's warnings, with both access sites when available;
* the happens-before oracle's confirmation (optional — O(n²) on the trace);
* the sharing classification of every racy variable's neighborhood;
* trace statistics (threads, operation mix, synchronization inventory).

Used by ``repro check --report out.md`` and importable directly::

    from repro.report import build_report
    text = build_report(trace, detector, fmt="markdown")

This module also owns the **machine-readable result schema**
(``repro.result/1``) shared by every surface that emits analysis results:
``repro check --json``, the sharded engine's
:meth:`repro.engine.merge.MergedReport.to_json`, and the ``repro serve``
daemon's ``GET /v1/jobs/{id}/result`` endpoint all produce the same
document, so results can be diffed bit-for-bit across execution paths
(serialize with :func:`dumps_result`, which sorts keys)::

    {
      "schema": "repro.result/1",
      "tool": "FastTrack",
      "events": 20,
      "warning_count": 1,
      "warnings": [{"var": ..., "kind": ..., "tid": ..., "prior": ...,
                    "event_index": ..., "site": ...}],
      "suppressed_warnings": 0,
      "stats": {"events": ..., "reads": ..., ..., "rules": {...}},
      "classifier": {"access_counts": {...}, "variable_counts": {...}}
    }

The warning/stats JSON codecs live here (the engine's shard checkpoints
reuse them), so the checkpoint wire format and the public schema cannot
drift apart.
"""

from __future__ import annotations

import html
import json
from typing import Dict, Hashable, Iterable, Optional

from repro.core.detector import CostStats, Detector, RaceWarning
from repro.detectors.classifier import SharingClassifier
from repro.trace import events as ev
from repro.trace.serialize import _target_from_json, _target_to_json
from repro.trace.trace import Trace

#: Schema tags stamped into every result document.
RESULT_SCHEMA = "repro.result/1"
RESULT_SET_SCHEMA = "repro.result-set/1"


# -- JSON codecs (shared with the engine's shard checkpoints) ----------------


def _encode_hashable(value: Optional[Hashable]):
    return None if value is None else _target_to_json(value)


def _decode_hashable(value) -> Optional[Hashable]:
    return None if value is None else _target_from_json(value)


def warning_to_json(warning: RaceWarning) -> Dict:
    return {
        "var": _encode_hashable(warning.var),
        "kind": warning.kind,
        "tid": warning.tid,
        "prior": warning.prior,
        "event_index": warning.event_index,
        "site": _encode_hashable(warning.site),
    }


def warning_from_json(record: Dict) -> RaceWarning:
    return RaceWarning(
        var=_decode_hashable(record["var"]),
        kind=record["kind"],
        tid=record["tid"],
        prior=record["prior"],
        event_index=record["event_index"],
        site=_decode_hashable(record["site"]),
    )


def stats_to_json(stats: CostStats) -> Dict:
    return {
        "events": stats.events,
        "reads": stats.reads,
        "writes": stats.writes,
        "syncs": stats.syncs,
        "boundaries": stats.boundaries,
        "vc_allocs": stats.vc_allocs,
        "vc_ops": stats.vc_ops,
        "fast_ops": stats.fast_ops,
        "rules": dict(sorted(stats.rules.items())),
    }


def stats_from_json(record: Dict) -> CostStats:
    stats = CostStats(
        events=record["events"],
        reads=record["reads"],
        writes=record["writes"],
        syncs=record["syncs"],
        boundaries=record["boundaries"],
        vc_allocs=record["vc_allocs"],
        vc_ops=record["vc_ops"],
        fast_ops=record["fast_ops"],
    )
    stats.rules.update(record["rules"])
    return stats


def classifier_counts(classifier: SharingClassifier) -> Dict:
    """Aggregate a classifier run into per-class access/variable counts —
    the exact payload the engine's shard checkpoints carry and merge."""
    access_counts: Dict[str, int] = {}
    variable_counts: Dict[str, int] = {}
    for key, cls in classifier.classify().items():
        profile = classifier.profiles[key]
        access_counts[cls] = access_counts.get(cls, 0) + profile.accesses
        variable_counts[cls] = variable_counts.get(cls, 0) + 1
    return {
        "access_counts": access_counts,
        "variable_counts": variable_counts,
    }


# -- the canonical result document -------------------------------------------


def result_to_json(
    tool: str,
    stats: CostStats,
    warnings: Iterable[RaceWarning],
    suppressed_warnings: int,
    classifier: Optional[Dict] = None,
    degraded: Optional[Dict] = None,
) -> Dict:
    """Assemble the ``repro.result/1`` document from its components.

    ``degraded`` is the engine's partial-failure block (quarantined
    shards and their post-mortems — see docs/ROBUSTNESS.md).  It is
    *omitted* from clean results rather than emitted as ``null``, so a
    healthy run's bytes are unchanged from pre-robustness builds and the
    differential byte-identity contract keeps holding.
    """
    warning_records = [warning_to_json(w) for w in warnings]
    document = {
        "schema": RESULT_SCHEMA,
        "tool": tool,
        "events": stats.events,
        "warning_count": len(warning_records),
        "warnings": warning_records,
        "suppressed_warnings": suppressed_warnings,
        "stats": stats_to_json(stats),
        "classifier": classifier,
    }
    if degraded is not None:
        document["degraded"] = degraded
    return document


def detector_result(
    detector: Detector, classifier: Optional[SharingClassifier] = None
) -> Dict:
    """The result document for a single-threaded detector run."""
    return result_to_json(
        detector.name,
        detector.stats,
        detector.warnings,
        detector.suppressed_warnings,
        classifier=classifier_counts(classifier)
        if classifier is not None
        else None,
    )


def result_set(results: Dict[str, Dict]) -> Dict:
    """Wrap several tools' result documents (``--all-tools`` / multi-tool
    service jobs) into one ``repro.result-set/1`` document."""
    return {"schema": RESULT_SET_SCHEMA, "results": results}


def dumps_result(document: Dict) -> str:
    """The canonical serialization: sorted keys, two-space indent, so two
    documents are bit-identical iff their contents are."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def _trace_summary(trace: Trace) -> dict:
    mix = trace.operation_mix()
    return {
        "events": len(trace),
        "threads": len(trace.threads()),
        "variables": len(trace.variables()),
        "locks": len(trace.locks()),
        "volatiles": len(trace.volatiles()),
        "reads": f"{mix['reads']:.1%}",
        "writes": f"{mix['writes']:.1%}",
        "synchronization": f"{mix['other']:.1%}",
    }


def build_report(
    trace: Trace,
    detector: Detector,
    fmt: str = "markdown",
    oracle_racy: Optional[Iterable] = None,
    classify: bool = True,
) -> str:
    """Render a report for a detector that has already processed ``trace``.

    ``oracle_racy`` (e.g. from :func:`repro.trace.racy_variables`) adds a
    ground-truth confirmation column; ``classify`` adds the sharing-pattern
    section (one extra pass over the trace).
    """
    if fmt not in ("markdown", "html"):
        raise ValueError(f"unknown report format {fmt!r}")

    summary = _trace_summary(trace)
    classes = None
    if classify:
        classifier = SharingClassifier()
        classifier.process(trace)
        classes = classifier.classify()
        fractions = classifier.fractions()

    oracle_set = set(oracle_racy) if oracle_racy is not None else None

    lines = []
    lines.append(f"# Race report — {detector.name}")
    lines.append("")
    verdict = (
        f"**{detector.warning_count} warning(s)**"
        if detector.warning_count
        else "**race-free** (no warnings)"
    )
    lines.append(f"Verdict: {verdict} over {summary['events']} events, "
                 f"{summary['threads']} threads.")
    lines.append("")
    lines.append("## Trace profile")
    lines.append("")
    lines.append("| metric | value |")
    lines.append("|---|---|")
    for key, value in summary.items():
        lines.append(f"| {key} | {value} |")
    if classes is not None:
        lines.append("")
        lines.append("sharing classes (fraction of accesses): " + ", ".join(
            f"{cls} {fraction:.1%}"
            for cls, fraction in fractions.items()
            if fraction > 0
        ))
    lines.append("")
    lines.append("## Warnings")
    lines.append("")
    if not detector.warnings:
        lines.append("None.")
    else:
        header = "| # | kind | variable | thread | site | conflicts with |"
        if oracle_set is not None:
            header += " confirmed |"
        lines.append(header)
        lines.append("|---|---|---|---|---|---|" + ("---|" if oracle_set is not None else ""))
        for index, warning in enumerate(detector.warnings):
            row = (
                f"| {index + 1} | {warning.kind} | `{warning.var}` "
                f"| {warning.tid} | {warning.site or '—'} "
                f"| {warning.prior} |"
            )
            if oracle_set is not None:
                confirmed = "yes" if warning.var in oracle_set else "NO"
                row += f" {confirmed} |"
            lines.append(row)
        if detector.suppressed_warnings:
            lines.append("")
            lines.append(
                f"({detector.suppressed_warnings} further occurrence(s) "
                "suppressed — one report per variable and per site)"
            )
    if classes is not None and detector.warnings:
        lines.append("")
        lines.append("## Racy variables in context")
        lines.append("")
        racy_keys = {detector.shadow_key(w.var) for w in detector.warnings}
        neighbors = sorted(
            (str(var), cls)
            for var, cls in classes.items()
            if var not in racy_keys and cls != "thread-local"
        )[:12]
        lines.append(
            "Shared-but-clean variables nearby (how the rest of the "
            "program synchronizes):"
        )
        lines.append("")
        for var, cls in neighbors:
            lines.append(f"* `{var}` — {cls}")
        if not neighbors:
            lines.append("* (none — every other variable is thread-local)")
    text = "\n".join(lines) + "\n"
    if fmt == "markdown":
        return text
    return _markdown_to_html(text)


def _markdown_to_html(markdown: str) -> str:
    """A minimal, dependency-free renderer for the report's own markdown
    subset (headings, tables, bullets, bold, code spans)."""
    body_lines = []
    in_table = False
    for raw in markdown.splitlines():
        line = html.escape(raw)
        # inline formatting
        while "`" in line:
            line = line.replace("`", "<code>", 1).replace("`", "</code>", 1)
        while "**" in line:
            line = line.replace("**", "<strong>", 1).replace(
                "**", "</strong>", 1
            )
        if raw.startswith("## "):
            body_lines.append(f"<h2>{line[3:]}</h2>")
        elif raw.startswith("# "):
            body_lines.append(f"<h1>{line[2:]}</h1>")
        elif raw.startswith("|"):
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if all(set(cell) <= {"-"} for cell in cells):
                continue  # the separator row
            if not in_table:
                body_lines.append("<table>")
                in_table = True
                tag = "th"
            else:
                tag = "td"
            body_lines.append(
                "<tr>"
                + "".join(f"<{tag}>{cell}</{tag}>" for cell in cells)
                + "</tr>"
            )
        else:
            if in_table:
                body_lines.append("</table>")
                in_table = False
            if raw.startswith("* "):
                body_lines.append(f"<li>{line[2:]}</li>")
            elif raw.strip():
                body_lines.append(f"<p>{line}</p>")
    if in_table:
        body_lines.append("</table>")
    style = (
        "body{font-family:system-ui,sans-serif;margin:2em;max-width:60em}"
        "table{border-collapse:collapse}"
        "td,th{border:1px solid #999;padding:4px 8px;text-align:left}"
        "code{background:#f2f2f2;padding:1px 4px}"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>Race report</title><style>{style}</style></head><body>"
        + "\n".join(body_lines)
        + "</body></html>\n"
    )
