"""Benchmark workloads and the evaluation harness.

One workload per benchmark of Table 1 (synthetic analogues reproducing each
Java program's sharing structure and known races — see DESIGN.md §2), plus
the Eclipse workload of Section 5.3, and the harness/reporting code that
regenerates every table in the paper's evaluation.
"""

from repro.bench.workload import Workload, WORKLOADS, get_workload
from repro.bench.harness import (
    BenchmarkResult,
    replay,
    run_table1,
    run_table2,
    run_table3,
    run_rule_frequencies,
    run_composition,
    run_eclipse,
)
from repro.bench import reporting

__all__ = [
    "Workload",
    "WORKLOADS",
    "get_workload",
    "BenchmarkResult",
    "replay",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_rule_frequencies",
    "run_composition",
    "run_eclipse",
    "reporting",
]
