"""The paper's published numbers, machine-readable.

Transcribed from the evaluation section of Flanagan & Freund, *FastTrack:
Efficient and Precise Dynamic Race Detection*, PLDI 2009 (revised
2016/7/1).  Table 1's slowdowns and warning counts live next to the
workloads themselves (:class:`repro.bench.workload.PaperRow`); this module
carries Table 2, Table 3, the Section 5.2 composition table, and the
Section 5.3 Eclipse table, so reports and tests can compare against the
original without hard-coding numbers at call sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

# -- Table 2: vector clocks allocated / O(n) VC operations ---------------------


@dataclass(frozen=True)
class Table2Row:
    djit_allocs: int
    fasttrack_allocs: int
    djit_ops: int
    fasttrack_ops: int


TABLE2: Dict[str, Table2Row] = {
    "colt": Table2Row(849_765, 76_209, 5_792_894, 1_266_599),
    "crypt": Table2Row(17_332_725, 119, 28_198_821, 18),
    "lufact": Table2Row(8_024_779, 2_715_630, 3_849_393_222, 3_721_749),
    "moldyn": Table2Row(849_397, 26_787, 69_519_902, 1_320_613),
    "montecarlo": Table2Row(457_647_007, 25, 519_064_435, 25),
    "mtrt": Table2Row(2_763_373, 40, 2_735_380, 402),
    "raja": Table2Row(1_498_557, 3, 760_008, 1),
    "raytracer": Table2Row(160_035_820, 14, 212_451_330, 36),
    "sparse": Table2Row(31_957_471, 456_779, 56_553_011, 15),
    "series": Table2Row(3_997_307, 13, 3_999_080, 16),
    "sor": Table2Row(2_002_115, 5_975, 26_331_880, 54_907),
    "tsp": Table2Row(311_273, 397, 829_091, 1_210),
    "elevator": Table2Row(1_678, 207, 14_209, 5_662),
    "philo": Table2Row(56, 12, 472, 120),
    "hedc": Table2Row(886, 82, 1_982, 365),
    "jbb": Table2Row(109_544_709, 1_859_828, 327_947_241, 64_912_863),
}

TABLE2_TOTALS = Table2Row(
    796_816_918, 5_142_120, 5_103_592_958, 71_284_601
)


# -- Table 3: granularity — memory overhead factors and slowdowns --------------


@dataclass(frozen=True)
class Table3Row:
    base_memory_mb: int
    mem_fine: Tuple[float, float]  # (DJIT+, FastTrack) overhead factors
    mem_coarse: Tuple[float, float]
    slow_fine: Tuple[float, float]
    slow_coarse: Tuple[float, float]


TABLE3: Dict[str, Table3Row] = {
    "colt": Table3Row(36, (4.3, 2.4), (2.0, 1.8), (0.9, 0.9), (0.9, 0.8)),
    "crypt": Table3Row(41, (44.3, 10.5), (1.2, 1.2), (54.0, 14.3), (6.6, 6.6)),
    "lufact": Table3Row(80, (9.8, 4.1), (1.1, 1.1), (36.3, 13.5), (5.4, 6.6)),
    "moldyn": Table3Row(37, (3.3, 1.7), (1.3, 1.2), (39.6, 10.6), (11.9, 8.3)),
    "montecarlo": Table3Row(
        595, (6.1, 2.1), (1.1, 1.1), (30.5, 6.4), (3.4, 2.8)
    ),
    "mtrt": Table3Row(51, (3.9, 2.2), (2.6, 1.9), (7.1, 6.0), (8.3, 7.0)),
    "raja": Table3Row(35, (1.3, 1.3), (1.2, 1.3), (3.4, 2.8), (3.1, 2.7)),
    "raytracer": Table3Row(
        36, (6.2, 1.9), (1.4, 1.2), (18.1, 13.1), (14.5, 10.6)
    ),
    "sparse": Table3Row(131, (23.3, 6.1), (1.0, 1.0), (27.8, 14.8), (3.9, 4.1)),
    "series": Table3Row(51, (8.5, 3.1), (1.1, 1.1), (1.0, 1.0), (1.0, 1.0)),
    "sor": Table3Row(40, (5.3, 2.1), (1.1, 1.1), (15.8, 9.3), (5.8, 6.3)),
    "tsp": Table3Row(33, (1.7, 1.3), (1.2, 1.2), (8.2, 8.9), (7.6, 7.3)),
    "elevator": Table3Row(32, (1.2, 1.2), (1.2, 1.2), (1.1, 1.1), (1.1, 1.1)),
    "philo": Table3Row(32, (1.2, 1.2), (1.2, 1.2), (1.1, 1.1), (1.1, 1.1)),
    "hedc": Table3Row(33, (1.4, 1.4), (1.3, 1.3), (1.1, 1.1), (0.9, 0.9)),
    "jbb": Table3Row(236, (4.1, 2.4), (2.3, 1.9), (1.6, 1.4), (1.3, 1.3)),
}

TABLE3_AVERAGES = Table3Row(
    0, (7.9, 2.8), (1.4, 1.3), (20.2, 8.5), (6.0, 5.3)
)


# -- Section 5.2: composition slowdowns ----------------------------------------

#: (checker, prefilter) -> published slowdown; None = not meaningful
#: (footnote 7: Atomizer already embeds Eraser).
COMPOSITION: Dict[Tuple[str, str], Optional[float]] = {
    ("Atomizer", "None"): 57.2,
    ("Atomizer", "TL"): 16.8,
    ("Atomizer", "Eraser"): None,
    ("Atomizer", "DJIT+"): 17.5,
    ("Atomizer", "FastTrack"): 12.6,
    ("Velodrome", "None"): 57.9,
    ("Velodrome", "TL"): 27.1,
    ("Velodrome", "Eraser"): 14.9,
    ("Velodrome", "DJIT+"): 19.6,
    ("Velodrome", "FastTrack"): 11.3,
    ("SingleTrack", "None"): 104.1,
    ("SingleTrack", "TL"): 55.4,
    ("SingleTrack", "Eraser"): 32.7,
    ("SingleTrack", "DJIT+"): 19.7,
    ("SingleTrack", "FastTrack"): 11.7,
}

#: Headline composition speedups the paper quotes in the contributions list.
VELODROME_SPEEDUP = 5.0
SINGLETRACK_SPEEDUP = 8.0


# -- Section 5.3: Eclipse --------------------------------------------------------


@dataclass(frozen=True)
class EclipseRow:
    base_time_sec: float
    slowdowns: Dict[str, float]  # Empty / Eraser / DJIT+ / FastTrack


ECLIPSE: Dict[str, EclipseRow] = {
    "Startup": EclipseRow(
        6.0, {"Empty": 13.0, "Eraser": 16.0, "DJIT+": 17.3, "FastTrack": 16.0}
    ),
    "Import": EclipseRow(
        2.5, {"Empty": 7.6, "Eraser": 14.9, "DJIT+": 17.1, "FastTrack": 13.1}
    ),
    "CleanSmall": EclipseRow(
        2.7, {"Empty": 14.1, "Eraser": 16.7, "DJIT+": 24.4, "FastTrack": 15.2}
    ),
    "CleanLarge": EclipseRow(
        6.5, {"Empty": 17.1, "Eraser": 17.9, "DJIT+": 38.5, "FastTrack": 15.4}
    ),
    "Debug": EclipseRow(
        1.1, {"Empty": 1.6, "Eraser": 1.7, "DJIT+": 1.7, "FastTrack": 1.6}
    ),
}

ECLIPSE_WARNINGS = {"FastTrack": 30, "DJIT+": 28, "Eraser": 960}

#: Other headline facts quoted in the paper's Section 1/3/5 text.
FRACTION_FAST_PATH_OPERATIONS = 0.96  # "upwards of 96% of the operations"
BASICVC_SPEEDUP = 10.0  # "almost a 10x speedup over BasicVC"
DJIT_SPEEDUP = 2.3  # "2.3x speedup even over the DJIT+ algorithm"
AVERAGE_SLOWDOWNS = {
    "Empty": 4.1,
    "Eraser": 8.6,
    "MultiRace": 21.7,
    "Goldilocks": 31.6,
    "BasicVC": 89.8,
    "DJIT+": 20.2,
    "FastTrack": 8.5,
}
OPERATION_MIX = {"reads": 0.823, "writes": 0.145, "other": 0.033}
FASTTRACK_READ_RULES = {
    "FT READ SAME EPOCH": 0.634,
    "FT READ SHARED": 0.208,
    "FT READ EXCLUSIVE": 0.157,
    "FT READ SHARE": 0.001,
}
FASTTRACK_WRITE_RULES = {
    "FT WRITE SAME EPOCH": 0.710,
    "FT WRITE EXCLUSIVE": 0.289,
    "FT WRITE SHARED": 0.001,
}
DJIT_RULES = {
    "DJIT+ READ SAME EPOCH": 0.780,
    "DJIT+ READ": 0.220,
    "DJIT+ WRITE SAME EPOCH": 0.710,
    "DJIT+ WRITE": 0.290,
}
