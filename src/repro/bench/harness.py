"""The evaluation harness: runs tools over workloads and collects the
measurements behind every table in the paper.

Timing methodology (the substitution for JVM wall-clock slowdowns):

* the *base* measurement is a bare Python loop over the workload's event
  list — the uninstrumented program;
* the EMPTY tool adds the event-delivery machinery (dispatch, counters),
  playing the same role as the paper's 4.1x RoadRunner overhead;
* each tool's **slowdown** is its replay time divided by the base time, so
  "who wins and by what factor" is directly comparable to Table 1's shape.

Architecture-independent counters (vector clocks allocated, O(n) VC
operations, per-rule frequencies, shadow words) come from
:class:`~repro.core.detector.CostStats` and reproduce Tables 2 and 3 and the
Figure 2 annotations without depending on the host machine at all.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.checkers import Atomizer, SingleTrack, Velodrome
from repro.core.detector import Detector, coarse_grain, fine_grain
from repro.detectors import make_detector
from repro.runtime.filters import (
    DJITFilter,
    EraserFilter,
    FastTrackFilter,
    NoneFilter,
    Prefilter,
    ThreadLocalFilter,
)
from repro.trace.trace import Trace
from repro.bench.workload import WORKLOADS, Workload

#: Table 1 row order.
TABLE1_ORDER = (
    "colt",
    "crypt",
    "lufact",
    "moldyn",
    "montecarlo",
    "mtrt",
    "raja",
    "raytracer",
    "sparse",
    "series",
    "sor",
    "tsp",
    "elevator",
    "philo",
    "hedc",
    "jbb",
)

#: Table 1 column order.
TABLE1_TOOLS = (
    "Empty",
    "Eraser",
    "MultiRace",
    "Goldilocks",
    "BasicVC",
    "DJIT+",
    "FastTrack",
)

#: Tools whose warnings Table 1 reports.
WARNING_TOOLS = (
    "Eraser",
    "MultiRace",
    "Goldilocks",
    "BasicVC",
    "DJIT+",
    "FastTrack",
)


def _tool(name: str, **kwargs) -> Detector:
    """Instantiate a tool in the paper's evaluation configuration (the
    RoadRunner Goldilocks ran with its unsound thread-local extension)."""
    if name == "Goldilocks":
        kwargs.setdefault("unsound_thread_local", True)
    return make_detector(name, **kwargs)


def base_replay_time(trace: Trace, repeats: int = 5) -> float:
    """Time for the uninstrumented 'program': a bare loop over the events
    (best of ``repeats`` to suppress scheduler noise)."""
    events = trace.events
    best = float("inf")
    for _rep in range(repeats):
        start = time.perf_counter()
        for _event in events:
            pass
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def replay(trace: Trace, detector: Detector) -> float:
    """Feed the whole trace to ``detector``; returns elapsed seconds."""
    handle = detector.handle
    events = trace.events
    start = time.perf_counter()
    for event in events:
        handle(event)
    return time.perf_counter() - start


def timed_replay(
    trace: Trace, make_detector: Callable[[], Detector], repeats: int = 3
):
    """Best-of-``repeats`` replay with a fresh detector per repetition
    (shadow state must start empty each time).  Returns ``(best_seconds,
    last_detector)``."""
    best = float("inf")
    detector = None
    for _rep in range(repeats):
        detector = make_detector()
        best = min(best, replay(trace, detector))
    return best, detector


@dataclass
class BenchmarkResult:
    """One (workload, tool) measurement."""

    workload: str
    tool: str
    events: int
    seconds: float
    slowdown: float
    warnings: int
    vc_allocs: int
    vc_ops: int
    memory_words: int
    rules: Dict[str, int] = field(default_factory=dict)


def run_tool(
    workload: Workload,
    tool_name: str,
    scale: Optional[int] = None,
    shadow_key: Callable = fine_grain,
    repeats: int = 3,
) -> BenchmarkResult:
    trace = workload.trace(scale=scale)
    base = base_replay_time(trace)
    seconds, detector = timed_replay(
        trace,
        lambda: _tool(tool_name, shadow_key=shadow_key),
        repeats=repeats,
    )
    detector.absorb_kind_counts(trace.events)
    return BenchmarkResult(
        workload=workload.name,
        tool=tool_name,
        events=len(trace),
        seconds=seconds,
        slowdown=seconds / base,
        warnings=detector.warning_count,
        vc_allocs=detector.stats.vc_allocs,
        vc_ops=detector.stats.vc_ops,
        memory_words=detector.shadow_memory_words(),
        rules=dict(detector.stats.rules),
    )


def run_table1(
    scale: Optional[int] = None,
    workloads: Sequence[str] = TABLE1_ORDER,
    tools: Sequence[str] = TABLE1_TOOLS,
) -> Dict[str, Dict[str, BenchmarkResult]]:
    """E1: the Table 1 grid — slowdowns and warnings for every tool."""
    results: Dict[str, Dict[str, BenchmarkResult]] = {}
    for name in workloads:
        workload = WORKLOADS[name]
        results[name] = {
            tool: run_tool(workload, tool, scale=scale) for tool in tools
        }
    return results


def run_table2(
    scale: Optional[int] = None,
    workloads: Sequence[str] = TABLE1_ORDER,
) -> Dict[str, Dict[str, BenchmarkResult]]:
    """E2: vector clocks allocated / VC operations, DJIT+ vs FastTrack."""
    results: Dict[str, Dict[str, BenchmarkResult]] = {}
    for name in workloads:
        workload = WORKLOADS[name]
        results[name] = {
            tool: run_tool(workload, tool, scale=scale)
            for tool in ("DJIT+", "FastTrack")
        }
    return results


def run_table3(
    scale: Optional[int] = None,
    workloads: Sequence[str] = TABLE1_ORDER,
) -> Dict[str, Dict[str, BenchmarkResult]]:
    """E3: fine- vs coarse-granularity memory overhead and slowdown."""
    results: Dict[str, Dict[str, BenchmarkResult]] = {}
    for name in workloads:
        workload = WORKLOADS[name]
        results[name] = {
            "DJIT+ fine": run_tool(workload, "DJIT+", scale=scale),
            "FastTrack fine": run_tool(workload, "FastTrack", scale=scale),
            "DJIT+ coarse": run_tool(
                workload, "DJIT+", scale=scale, shadow_key=coarse_grain
            ),
            "FastTrack coarse": run_tool(
                workload, "FastTrack", scale=scale, shadow_key=coarse_grain
            ),
        }
    return results


@dataclass
class RuleFrequencies:
    """E4: the operation mix and per-rule firing fractions of Figure 2."""

    reads: int
    writes: int
    syncs: int
    fasttrack_read_rules: Dict[str, float]
    fasttrack_write_rules: Dict[str, float]
    djit_read_rules: Dict[str, float]
    djit_write_rules: Dict[str, float]

    @property
    def total(self) -> int:
        return self.reads + self.writes + self.syncs

    @property
    def mix(self) -> Dict[str, float]:
        total = max(self.total, 1)
        return {
            "reads": self.reads / total,
            "writes": self.writes / total,
            "other": self.syncs / total,
        }


def run_rule_frequencies(
    scale: Optional[int] = None,
    workloads: Sequence[str] = TABLE1_ORDER,
) -> RuleFrequencies:
    reads = writes = syncs = 0
    ft_rules: Dict[str, int] = {}
    dj_rules: Dict[str, int] = {}
    for name in workloads:
        trace = WORKLOADS[name].trace(scale=scale)
        ft = _tool("FastTrack")
        ft.process(trace)
        dj = _tool("DJIT+")
        dj.process(trace)
        reads += ft.stats.reads
        writes += ft.stats.writes
        syncs += ft.stats.syncs
        for rule, count in ft.stats.rules.items():
            ft_rules[rule] = ft_rules.get(rule, 0) + count
        for rule, count in dj.stats.rules.items():
            dj_rules[rule] = dj_rules.get(rule, 0) + count

    # Same-epoch rules run counter-free on the hot path; derive their
    # firing counts from the totals.
    ft_rules["FT READ SAME EPOCH"] = reads - sum(
        ft_rules.get(rule, 0)
        for rule in ("FT READ SHARED", "FT READ EXCLUSIVE", "FT READ SHARE")
    )
    ft_rules["FT WRITE SAME EPOCH"] = writes - sum(
        ft_rules.get(rule, 0)
        for rule in ("FT WRITE EXCLUSIVE", "FT WRITE SHARED")
    )
    dj_rules["DJIT+ READ SAME EPOCH"] = reads - dj_rules.get("DJIT+ READ", 0)
    dj_rules["DJIT+ WRITE SAME EPOCH"] = writes - dj_rules.get(
        "DJIT+ WRITE", 0
    )

    def fractions(rules: Dict[str, int], keys: Iterable[str], denom: int):
        denom = max(denom, 1)
        return {key: rules.get(key, 0) / denom for key in keys}

    return RuleFrequencies(
        reads=reads,
        writes=writes,
        syncs=syncs,
        fasttrack_read_rules=fractions(
            ft_rules,
            (
                "FT READ SAME EPOCH",
                "FT READ SHARED",
                "FT READ EXCLUSIVE",
                "FT READ SHARE",
            ),
            reads,
        ),
        fasttrack_write_rules=fractions(
            ft_rules,
            ("FT WRITE SAME EPOCH", "FT WRITE EXCLUSIVE", "FT WRITE SHARED"),
            writes,
        ),
        djit_read_rules=fractions(
            dj_rules, ("DJIT+ READ SAME EPOCH", "DJIT+ READ"), reads
        ),
        djit_write_rules=fractions(
            dj_rules, ("DJIT+ WRITE SAME EPOCH", "DJIT+ WRITE"), writes
        ),
    )


# -- Section 5.2: analysis composition -----------------------------------------------

#: The checkers of the Section 5.2 table.
CHECKERS: Dict[str, Callable[[], Detector]] = {
    "Atomizer": Atomizer,
    "Velodrome": Velodrome,
    "SingleTrack": SingleTrack,
}

#: Prefilters, in the table's column order.
PREFILTERS: Dict[str, Callable[[], Prefilter]] = {
    "None": NoneFilter,
    "TL": ThreadLocalFilter,
    "Eraser": EraserFilter,
    "DJIT+": DJITFilter,
    "FastTrack": FastTrackFilter,
}

#: The compute-bound workloads the composition study averages over.
COMPOSITION_WORKLOADS = tuple(
    name for name in TABLE1_ORDER if WORKLOADS[name].compute_bound
)


@dataclass
class CompositionCell:
    """One (checker, prefilter) measurement, averaged over workloads."""

    checker: str
    prefilter: str
    slowdown: float  # pipeline time / base time, averaged
    pass_fraction: float  # fraction of events reaching the checker
    violations: int


def run_composition(
    scale: Optional[int] = None,
    workloads: Sequence[str] = COMPOSITION_WORKLOADS,
    checkers: Sequence[str] = ("Atomizer", "Velodrome", "SingleTrack"),
    prefilters: Sequence[str] = ("None", "TL", "Eraser", "DJIT+", "FastTrack"),
    repeats: int = 3,
) -> Dict[str, Dict[str, CompositionCell]]:
    """E6: checker slowdown under each prefilter (best of ``repeats``).

    Following the paper's footnote 7, the Atomizer × Eraser cell is skipped
    (Atomizer already embeds Eraser, so that composition is not meaningful).
    """
    table: Dict[str, Dict[str, CompositionCell]] = {}
    for checker_name in checkers:
        table[checker_name] = {}
        for filter_name in prefilters:
            if checker_name == "Atomizer" and filter_name == "Eraser":
                continue
            slowdowns: List[float] = []
            passed = 0
            total = 0
            violations = 0
            for workload_name in workloads:
                trace = WORKLOADS[workload_name].trace(scale=scale)
                base = base_replay_time(trace)
                best = float("inf")
                for _rep in range(repeats):
                    prefilter = PREFILTERS[filter_name]()
                    checker = CHECKERS[checker_name]()
                    keep = prefilter.keep
                    handle = checker.handle
                    start = time.perf_counter()
                    for event in trace.events:
                        if keep(event):
                            handle(event)
                    best = min(best, time.perf_counter() - start)
                slowdowns.append(best / base)
                passed += prefilter.events_out
                total += prefilter.events_in
                violations += getattr(
                    checker, "violation_count", checker.warning_count
                )
            table[checker_name][filter_name] = CompositionCell(
                checker=checker_name,
                prefilter=filter_name,
                slowdown=sum(slowdowns) / len(slowdowns),
                pass_fraction=passed / max(total, 1),
                violations=violations,
            )
    return table


# -- Section 5.3: Eclipse ---------------------------------------------------------------


def run_eclipse(scale: Optional[int] = None):
    """E7: the five Eclipse operations under Empty/Eraser/DJIT+/FastTrack.

    Implemented in :mod:`repro.bench.eclipse`; re-exported here so the
    harness is the single entry point for every experiment.
    """
    from repro.bench import eclipse

    return eclipse.run(scale=scale)
