"""Text renderers for the paper's tables (paper value / measured value).

Each ``format_*`` function takes the corresponding ``run_*`` output from
:mod:`repro.bench.harness` and returns a printable table whose rows mirror
the paper's layout, with the published numbers alongside ours where that is
meaningful (warning counts, rule frequencies) and with the published
slowdowns shown for reference where absolute values are not expected to
match (a Python event-replay is not a JVM).
"""

from __future__ import annotations

from typing import Dict

from repro.bench import paperdata
from repro.bench.harness import (
    BenchmarkResult,
    CompositionCell,
    RuleFrequencies,
    TABLE1_ORDER,
    TABLE1_TOOLS,
    WARNING_TOOLS,
)
from repro.bench.workload import WORKLOADS


def _fmt(value, width: int = 6, digits: int = 1) -> str:
    if value is None:
        return "–".rjust(width)
    if isinstance(value, float):
        return f"{value:.{digits}f}".rjust(width)
    return str(value).rjust(width)


def format_table1(results: Dict[str, Dict[str, BenchmarkResult]]) -> str:
    """Table 1: slowdowns (measured, with paper values below) + warnings."""
    lines = []
    header = f"{'program':<12s}{'events':>9s}" + "".join(
        f"{tool:>11s}" for tool in TABLE1_TOOLS
    )
    lines.append("Table 1 — instrumented slowdown (x) [ours / paper]")
    lines.append(header)
    lines.append("-" * len(header))
    sums: Dict[str, float] = {tool: 0.0 for tool in TABLE1_TOOLS}
    compute_bound = 0
    for name in results:
        row = results[name]
        workload = WORKLOADS[name]
        star = "" if workload.compute_bound else "*"
        events = next(iter(row.values())).events
        ours = "".join(_fmt(row[t].slowdown, 11) for t in TABLE1_TOOLS)
        paper = "".join(
            _fmt(workload.paper.slowdowns.get(t), 11) for t in TABLE1_TOOLS
        )
        lines.append(f"{name + star:<12s}{events:>9d}{ours}")
        lines.append(f"{'  (paper)':<12s}{'':>9s}{paper}")
        if workload.compute_bound:
            compute_bound += 1
            for tool in TABLE1_TOOLS:
                sums[tool] += row[tool].slowdown
    if compute_bound:
        avg = "".join(
            _fmt(sums[t] / compute_bound, 11) for t in TABLE1_TOOLS
        )
        lines.append(f"{'Average':<12s}{'':>9s}{avg}")
    lines.append("")
    lines.append("Table 1 — warnings [ours / paper]")
    header = f"{'program':<12s}" + "".join(
        f"{tool:>14s}" for tool in WARNING_TOOLS
    )
    lines.append(header)
    lines.append("-" * len(header))
    totals = {tool: 0 for tool in WARNING_TOOLS}
    for name in results:
        row = results[name]
        workload = WORKLOADS[name]
        cells = []
        for tool in WARNING_TOOLS:
            measured = row[tool].warnings if tool in row else None
            published = workload.paper.warnings.get(tool)
            cells.append(
                f"{measured if measured is not None else '–'}/"
                f"{published if published is not None else '–'}".rjust(14)
            )
            if measured is not None:
                totals[tool] += measured
        lines.append(f"{name:<12s}" + "".join(cells))
    lines.append(
        f"{'Total':<12s}"
        + "".join(str(totals[t]).rjust(14) for t in WARNING_TOOLS)
    )
    return "\n".join(lines)


def format_table2(results: Dict[str, Dict[str, BenchmarkResult]]) -> str:
    """Table 2: vector clocks allocated and O(n) VC operations."""
    lines = ["Table 2 — vector clock allocation and usage"]
    header = (
        f"{'program':<12s}{'allocs DJIT+':>14s}{'allocs FT':>12s}"
        f"{'VC ops DJIT+':>14s}{'VC ops FT':>12s}"
        f"{'ratio ops':>10s}{'(paper)':>10s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    total = {"da": 0, "fa": 0, "do": 0, "fo": 0}
    for name, row in results.items():
        dj, ft = row["DJIT+"], row["FastTrack"]
        ratio = dj.vc_ops / max(ft.vc_ops, 1)
        published = paperdata.TABLE2.get(name)
        paper_ratio = (
            published.djit_ops / max(published.fasttrack_ops, 1)
            if published
            else float("nan")
        )
        lines.append(
            f"{name:<12s}{dj.vc_allocs:>14d}{ft.vc_allocs:>12d}"
            f"{dj.vc_ops:>14d}{ft.vc_ops:>12d}{ratio:>10.1f}"
            f"{paper_ratio:>10.1f}"
        )
        total["da"] += dj.vc_allocs
        total["fa"] += ft.vc_allocs
        total["do"] += dj.vc_ops
        total["fo"] += ft.vc_ops
    published_totals = paperdata.TABLE2_TOTALS
    lines.append(
        f"{'Total':<12s}{total['da']:>14d}{total['fa']:>12d}"
        f"{total['do']:>14d}{total['fo']:>12d}"
        f"{total['do'] / max(total['fo'], 1):>10.1f}"
        f"{published_totals.djit_ops / published_totals.fasttrack_ops:>10.1f}"
    )
    lines.append(
        f"(paper totals: {published_totals.djit_allocs:,} vs "
        f"{published_totals.fasttrack_allocs:,} allocations; "
        f"{published_totals.djit_ops:,} vs "
        f"{published_totals.fasttrack_ops:,} operations)"
    )
    return "\n".join(lines)


def format_table3(results: Dict[str, Dict[str, BenchmarkResult]]) -> str:
    """Table 3: fine vs coarse granularity — shadow memory and slowdown."""
    lines = ["Table 3 — granularity: shadow words and slowdown"]
    header = (
        f"{'program':<12s}"
        f"{'mem DJ fine':>13s}{'mem FT fine':>13s}"
        f"{'mem DJ coarse':>15s}{'mem FT coarse':>15s}"
        f"{'slow DJ/FT fine':>17s}{'slow DJ/FT coarse':>19s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in results.items():
        lines.append(
            f"{name:<12s}"
            f"{row['DJIT+ fine'].memory_words:>13d}"
            f"{row['FastTrack fine'].memory_words:>13d}"
            f"{row['DJIT+ coarse'].memory_words:>15d}"
            f"{row['FastTrack coarse'].memory_words:>15d}"
            f"{row['DJIT+ fine'].slowdown:>8.1f}/"
            f"{row['FastTrack fine'].slowdown:<8.1f}"
            f"{row['DJIT+ coarse'].slowdown:>9.1f}/"
            f"{row['FastTrack coarse'].slowdown:<9.1f}"
        )
    return "\n".join(lines)


def format_rule_frequencies(freq: RuleFrequencies) -> str:
    """Figure 2's margins: operation mix and per-rule frequencies."""
    mix = freq.mix
    lines = [
        "Figure 2 — operation mix and rule frequencies [ours (paper)]",
        f"  reads : {mix['reads']:6.1%}  (82.3%)",
        f"  writes: {mix['writes']:6.1%}  (14.5%)",
        f"  other : {mix['other']:6.1%}  ( 3.3%)",
        "  FastTrack read rules (fraction of reads):",
    ]
    paper_read = paperdata.FASTTRACK_READ_RULES
    for rule, fraction in freq.fasttrack_read_rules.items():
        lines.append(
            f"    {rule:<24s}{fraction:7.1%}  ({paper_read[rule]:.1%})"
        )
    paper_write = paperdata.FASTTRACK_WRITE_RULES
    lines.append("  FastTrack write rules (fraction of writes):")
    for rule, fraction in freq.fasttrack_write_rules.items():
        lines.append(
            f"    {rule:<24s}{fraction:7.1%}  ({paper_write[rule]:.1%})"
        )
    lines.append("  DJIT+ rules:")
    paper_dj = paperdata.DJIT_RULES
    for rule, fraction in {
        **freq.djit_read_rules,
        **freq.djit_write_rules,
    }.items():
        lines.append(f"    {rule:<24s}{fraction:7.1%}  ({paper_dj[rule]:.1%})")
    return "\n".join(lines)


def format_composition(
    table: Dict[str, Dict[str, CompositionCell]]
) -> str:
    """The Section 5.2 table: checker slowdown under five prefilters."""
    filters = ("None", "TL", "Eraser", "DJIT+", "FastTrack")
    lines = ["Section 5.2 — checker slowdown under prefilters [ours (paper)]"]
    header = f"{'checker':<14s}" + "".join(f"{f:>18s}" for f in filters)
    lines.append(header)
    lines.append("-" * len(header))
    for checker, row in table.items():
        cells = []
        for filter_name in filters:
            cell = row.get(filter_name)
            if cell is None:
                cells.append("—".rjust(18))
                continue
            published = paperdata.COMPOSITION.get((checker, filter_name))
            rendered = f"{published:5.1f}" if published is not None else "  —  "
            cells.append(
                f"{cell.slowdown:7.1f} ({rendered})".rjust(18)
            )
        lines.append(f"{checker:<14s}" + "".join(cells))
    lines.append("")
    lines.append("fraction of events reaching the checker:")
    for checker, row in table.items():
        cells = []
        for filter_name in filters:
            cell = row.get(filter_name)
            cells.append(
                ("—" if cell is None else f"{cell.pass_fraction:7.1%}").rjust(
                    18
                )
            )
        lines.append(f"{checker:<14s}" + "".join(cells))
    return "\n".join(lines)


def format_eclipse(results) -> str:
    """The Section 5.3 table: Eclipse operations under four tools."""
    tools = ("Empty", "Eraser", "DJIT+", "FastTrack")
    paper = {
        op: row.slowdowns for op, row in paperdata.ECLIPSE.items()
    }
    lines = ["Section 5.3 — Eclipse operations [ours (paper)]"]
    header = f"{'operation':<12s}{'events':>9s}" + "".join(
        f"{t:>18s}" for t in tools
    )
    lines.append(header)
    lines.append("-" * len(header))
    for op, row in results["slowdowns"].items():
        cells = []
        for tool in tools:
            published = paper.get(op, {}).get(tool)
            cells.append(
                f"{row[tool].slowdown:7.1f} ({published:5.1f})".rjust(18)
            )
        lines.append(
            f"{op:<12s}{row['Empty'].events:>9d}" + "".join(cells)
        )
    lines.append("")
    warn = results["warnings"]
    published = paperdata.ECLIPSE_WARNINGS
    lines.append(
        "distinct warnings — "
        f"FastTrack: {warn['FastTrack']} (paper: {published['FastTrack']}), "
        f"DJIT+: {warn['DJIT+']} (paper: {published['DJIT+']}), "
        f"Eraser: {warn['Eraser']} (paper: {published['Eraser']})"
    )
    return "\n".join(lines)
