"""Regenerate every table of the paper's evaluation.

Usage::

    python -m repro.bench                # all experiments, default scales
    python -m repro.bench --scale 300    # quicker, smaller workloads
    python -m repro.bench table1 table2  # a subset

Output is the paper-vs-measured rendering of Tables 1–3, the Figure 2 rule
frequencies, the Section 5.2 composition table, and the Section 5.3 Eclipse
table.  EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.bench import harness, reporting


def _jsonable(value):
    """Recursively convert harness results into JSON-friendly structures."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        choices=[
            [],
            "table1",
            "table2",
            "table3",
            "figure2",
            "composition",
            "eclipse",
        ],
        help="subset of experiments to run (default: all)",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=None,
        help="override each workload's default scale (smaller = faster)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the raw results as JSON ('-' for stdout)",
    )
    args = parser.parse_args(argv)
    wanted = set(args.experiments) or {
        "table1",
        "table2",
        "table3",
        "figure2",
        "composition",
        "eclipse",
    }

    def section(title: str, body: str) -> None:
        print("=" * 78)
        print(title)
        print("=" * 78)
        print(body)
        print()

    started = time.perf_counter()
    collected = {}
    if "table1" in wanted:
        results = harness.run_table1(scale=args.scale)
        collected["table1"] = results
        section(
            "E1: Table 1 — performance and precision",
            reporting.format_table1(results),
        )
    if "table2" in wanted:
        results = harness.run_table2(scale=args.scale)
        collected["table2"] = results
        section(
            "E2: Table 2 — vector clock allocation and usage",
            reporting.format_table2(results),
        )
    if "table3" in wanted:
        results = harness.run_table3(scale=args.scale)
        collected["table3"] = results
        section(
            "E3: Table 3 — analysis granularity",
            reporting.format_table3(results),
        )
    if "figure2" in wanted:
        results = harness.run_rule_frequencies(scale=args.scale)
        collected["figure2"] = results
        section(
            "E4: Figure 2 — operation mix and rule frequencies",
            reporting.format_rule_frequencies(results),
        )
    if "composition" in wanted:
        results = harness.run_composition(scale=args.scale)
        collected["composition"] = results
        section(
            "E6: Section 5.2 — analysis composition",
            reporting.format_composition(results),
        )
    if "eclipse" in wanted:
        results = harness.run_eclipse(scale=args.scale)
        collected["eclipse"] = results
        section(
            "E7: Section 5.3 — Eclipse",
            reporting.format_eclipse(results),
        )
    print(f"(total {time.perf_counter() - started:.1f}s)")
    if args.json is not None:
        payload = json.dumps(_jsonable(collected), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as stream:
                stream.write(payload)
            print(f"(raw results written to {args.json})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
