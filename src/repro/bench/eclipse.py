"""The Eclipse experiment (Section 5.3).

The paper checks Eclipse 3.4 during five user-initiated operations, with up
to 24 concurrent threads, and reports (a) per-operation slowdowns for
Empty / Eraser / DJIT+ / FastTrack and (b) warning totals: FastTrack 30
distinct warnings (all from a handful of race families: tree-node arrays,
progress meters, double-checked locking, helper-to-parent result arrays, and
debugger stream initialization), DJIT+ 28 (same families, scheduling
differences), Eraser 960 (it cannot reason about Eclipse's wait/notify,
semaphore, and readers-writer idioms).

This module builds five synthetic IDE operations with exactly those
characteristics:

* a job-manager thread pool (up to 23 workers + main) fed through a monitor;
* lock-protected workspace/resource state;
* monitor-ordered per-job handoff variables — race-free, but counted *per
  field* by Eraser (no source-site collapsing), which is what inflates its
  Eclipse number into the hundreds;
* the real race families above, each annotated with one source site per
  "field", so FastTrack's distinct-warning count is comparable to the
  paper's 30.

As in the paper — where every tool monitored its own separate execution —
each tool here replays a trace produced with its own scheduler seed, so
tools may see slightly different warning counts for the genuinely racy
families (the paper's FastTrack-30 vs DJIT+-28 effect).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.bench.harness import BenchmarkResult, base_replay_time, _tool
from repro.runtime.program import Program
from repro.runtime.scheduler import run_program
from repro.trace.trace import Trace

_POOL = 23  # + main = the paper's "up to 24 concurrent threads"


def _pooled_program(
    name: str,
    jobs: int,
    pool_size: int,
    job_body: Callable,
    main_extra: Optional[Callable] = None,
    racy_families: Optional[Callable] = None,
    final_flush: Optional[Callable] = None,
) -> Program:
    """Common scaffold: a monitor-fed job pool plus per-op custom bodies.

    ``job_body(th, worker_index, job_index)`` is a generator run per job;
    ``main_extra(th)`` runs on the main thread after all jobs are queued;
    ``racy_families(th, worker_index, job_index)`` adds the op's intentional
    races inside workers; ``final_flush(th, worker_index)`` runs on each
    worker's exit path, *after* its last queue operation — accesses there are
    guaranteed concurrent with ``main_extra``'s (neither side synchronizes
    again before the joins), which makes every intended race family manifest
    on every schedule.
    """
    state = {"queue": [], "done": False}

    def main(th):
        # Prefetch/seed per-job state: a fork-ordered write handoff that is
        # race-free but makes Eraser's per-field warning count explode (no
        # site annotation → one warning per field, as in its Eclipse runs).
        # Roughly two out of seven jobs have prefetched state.
        for j in range(jobs):
            if j % 7 < 2:
                yield th.write(("jobstate", name, j))
        children = []
        for w in range(pool_size):
            child = yield th.fork(worker, w)
            children.append(child)
        for j in range(jobs):
            yield th.acquire(("jobq", name))
            yield th.write(("job", name, j))
            state["queue"].append(j)
            yield th.notify_all(("jobq", name))
            yield th.release(("jobq", name))
        yield th.acquire(("jobq", name))
        state["done"] = True
        yield th.notify_all(("jobq", name))
        yield th.release(("jobq", name))
        if main_extra is not None:
            yield from main_extra(th)
        for child in children:
            yield th.join(child)

    def worker(th, w):
        while True:
            yield th.acquire(("jobq", name))
            while not state["queue"] and not state["done"]:
                yield th.wait(("jobq", name))
            if not state["queue"]:
                yield th.release(("jobq", name))
                if final_flush is not None:
                    yield from final_flush(th, w)
                return
            job = state["queue"].pop(0)
            yield th.read(("job", name, job))
            yield th.release(("jobq", name))
            yield th.write(("jobstate", name, job))  # the Eraser-only handoff
            yield from job_body(th, w, job)
            if racy_families is not None:
                yield from racy_families(th, w, job)

    return Program(main, name=name)


def _dcl(th, var, lock, site):
    """Double-checked locking: unlocked read, then locked initialization.
    A real (benign) race the paper highlights in Eclipse's compilation-unit
    reader.  Both sides carry the same site so it counts once per field."""
    yield th.read(var, site=site)
    yield th.acquire(lock)
    yield th.read(var, site=site)
    yield th.write(var, site=site)
    yield th.release(lock)


# ---------------------------------------------------------------------------
# The five operations
# ---------------------------------------------------------------------------


def startup_program(scale: int) -> Program:
    """Launch Eclipse: plugin activation over the job pool.

    Real race families (7 sites): registry counters (2), two double-checked
    singletons (2), the splash progress bar (1), the log head (1), and a
    startup flag polled by workers while main flips it (1).
    """
    jobs = scale

    def job_body(th, w, job):
        for m in range(4):
            yield th.read(("manifest", (job * 3 + m) % 64))
        yield th.write(("plugin", job, "state"))
        yield th.write(("plugin", job, "classloader"))
        yield th.acquire("registry_lock")
        yield th.read(("registry", job % 32))
        yield th.write(("registry", job % 32))
        yield th.release("registry_lock")

    def racy(th, w, job):
        if job % 3 == 0:
            yield th.read("reg_count", site="startup.reg_count")
            yield th.write("reg_count", site="startup.reg_count")
        if job % 5 == 0:
            yield th.write("reg_dirty", site="startup.reg_dirty")
        if job % 4 == 0:
            yield from _dcl(th, "singleton_core", "core_lock", "startup.dcl_core")
        if job % 6 == 0:
            yield from _dcl(th, "singleton_ui", "ui_lock", "startup.dcl_ui")
        if job % 2 == 0:
            yield th.write("splash", site="startup.splash")
        if job % 7 == 0:
            yield th.write("log_head", site="startup.log_head")
        yield th.read("startup_flag", site="startup.flag")

    def main_extra(th):
        yield th.write("startup_flag", site="startup.flag")
        yield th.read("reg_count", site="startup.reg_count")
        yield th.read("reg_dirty", site="startup.reg_dirty")
        yield th.read("singleton_core", site="startup.dcl_core")
        yield th.read("singleton_ui", site="startup.dcl_ui")
        yield th.read("splash", site="startup.splash")
        yield th.read("log_head", site="startup.log_head")

    def flush(th, w):
        yield th.read("startup_flag", site="startup.flag")
        yield th.write("reg_count", site="startup.reg_count")
        yield th.write("reg_dirty", site="startup.reg_dirty")
        yield th.write("splash", site="startup.splash")
        yield th.write("log_head", site="startup.log_head")
        # Both halves of the double-checked idiom on the exit path: one
        # worker's unlocked check races another's locked initialization.
        yield from _dcl(th, "singleton_core", "core_lock", "startup.dcl_core")
        yield from _dcl(th, "singleton_ui", "ui_lock", "startup.dcl_ui")

    return _pooled_program(
        "startup", jobs, _POOL, job_body, main_extra, racy, flush
    )


def import_program(scale: int) -> Program:
    """Import + initial build of a project.

    Real race families (6 sites): three progress-meter fields written by
    builders and read by the (simulated) UI poll, two index-merge counters,
    and a charset-cache double-checked singleton.
    """
    jobs = scale

    def job_body(th, w, job):
        for s in range(3):
            yield th.read(("source", job % 128, s))
        yield th.write(("unit", job, "ast"))
        yield th.write(("unit", job, "bytecode"))
        yield th.acquire("index_lock")
        yield th.read(("index", job % 24))
        yield th.write(("index", job % 24))
        yield th.release("index_lock")

    def racy(th, w, job):
        if job % 2 == 0:
            yield th.write("progress_worked", site="import.progress_worked")
        if job % 3 == 0:
            yield th.write("progress_task", site="import.progress_task")
        if job % 5 == 0:
            yield th.write("progress_sub", site="import.progress_sub")
        if job % 4 == 0:
            yield th.read("index_merges", site="import.index_merges")
            yield th.write("index_merges", site="import.index_merges")
        if job % 6 == 0:
            yield th.write("index_gen", site="import.index_gen")
        if job % 7 == 0:
            yield from _dcl(th, "charset_cache", "charset_lock", "import.charset")

    def main_extra(th):
        # The UI thread polls the progress meters without synchronization.
        for _poll in range(8):
            yield th.read("progress_worked", site="import.progress_worked")
            yield th.read("progress_task", site="import.progress_task")
            yield th.read("progress_sub", site="import.progress_sub")
        yield th.read("index_merges", site="import.index_merges")
        yield th.read("index_gen", site="import.index_gen")
        yield th.read("charset_cache", site="import.charset")

    def flush(th, w):
        yield th.write("progress_worked", site="import.progress_worked")
        yield th.write("progress_task", site="import.progress_task")
        yield th.write("progress_sub", site="import.progress_sub")
        yield th.write("index_merges", site="import.index_merges")
        yield th.write("index_gen", site="import.index_gen")
        yield from _dcl(th, "charset_cache", "charset_lock", "import.charset")

    return _pooled_program(
        "import", jobs, 8, job_body, main_extra, racy, flush
    )


def _clean_program(name: str, scale: int, pool: int) -> Program:
    """Rebuild a workspace: tree-node arrays and marker arrays written by
    helper threads and read by the parent without synchronization (the
    paper's "races on an array of nodes in a tree data structure" and the
    helper-to-parent result arrays), plus delta statistics (ww races)."""
    jobs = scale

    def job_body(th, w, job):
        for s in range(2):
            yield th.read(("workspace", job % 96, s))
        yield th.write(("output", job, "class"))
        yield th.acquire("notif_lock")
        yield th.read("delta_seq")
        yield th.write("delta_seq")
        yield th.release("notif_lock")

    def racy(th, w, job):
        if job % 3 == 0:
            yield th.write(("treenode", job % 4), site=f"{name}.treenode")
        if job % 4 == 0:
            yield th.write(("treechild", job % 4), site=f"{name}.treechild")
        if job % 5 == 0:
            yield th.write(("marker", job % 6), site=f"{name}.marker")
        if job % 6 == 0:
            yield th.write(("marker_info", job % 6), site=f"{name}.marker_info")
        if name == "cleanL":
            if job % 7 == 0:
                yield th.read("build_stats", site="cleanL.build_stats")
                yield th.write("build_stats", site="cleanL.build_stats")
            if job % 8 == 0:
                yield th.write("queue_depth", site="cleanL.queue_depth")

    def main_extra(th):
        # The parent walks the (still being written) tree and marker arrays.
        for n in range(4):
            yield th.read(("treenode", n), site=f"{name}.treenode")
            yield th.read(("treechild", n), site=f"{name}.treechild")
        for m in range(6):
            yield th.read(("marker", m), site=f"{name}.marker")
            yield th.read(("marker_info", m), site=f"{name}.marker_info")
        if name == "cleanL":
            yield th.read("build_stats", site="cleanL.build_stats")
            yield th.read("queue_depth", site="cleanL.queue_depth")

    def flush(th, w):
        yield th.write(("treenode", w % 4), site=f"{name}.treenode")
        yield th.write(("treechild", w % 4), site=f"{name}.treechild")
        yield th.write(("marker", w % 6), site=f"{name}.marker")
        yield th.write(("marker_info", w % 6), site=f"{name}.marker_info")
        if name == "cleanL":
            yield th.write("build_stats", site="cleanL.build_stats")
            yield th.write("queue_depth", site="cleanL.queue_depth")

    return _pooled_program(
        name, jobs, pool, job_body, main_extra, racy, flush
    )


def clean_small_program(scale: int) -> Program:
    return _clean_program("cleanS", scale, 6)


def clean_large_program(scale: int) -> Program:
    return _clean_program("cleanL", scale, 12)


def debug_program(scale: int) -> Program:
    """Launch the debugger: mostly idle, with the stream-initialization
    races (4 sites), console buffer races (2), and a launch flag (1)."""
    jobs = max(4, scale // 10)

    def job_body(th, w, job):
        yield th.read(("launch_config", job % 8))
        yield th.acquire("console_lock")
        yield th.read("console_doc")
        yield th.write("console_doc")
        yield th.release("console_lock")

    def racy(th, w, job):
        if job % 2 == 0:
            yield th.write("stdout_monitor", site="debug.stdout_monitor")
            yield th.write("stderr_monitor", site="debug.stderr_monitor")
        if job % 3 == 0:
            yield th.write("stdin_stream", site="debug.stdin_stream")
            yield th.write("proc_handle", site="debug.proc_handle")
        if job % 4 == 0:
            yield th.read("console_head", site="debug.console_head")
            yield th.write("console_head", site="debug.console_head")
        if job % 5 == 0:
            yield th.write("console_partition", site="debug.console_partition")
        yield th.read("launch_flag", site="debug.launch_flag")

    def main_extra(th):
        yield th.write("launch_flag", site="debug.launch_flag")
        yield th.read("stdout_monitor", site="debug.stdout_monitor")
        yield th.read("stderr_monitor", site="debug.stderr_monitor")
        yield th.read("stdin_stream", site="debug.stdin_stream")
        yield th.read("proc_handle", site="debug.proc_handle")
        yield th.read("console_head", site="debug.console_head")
        yield th.read("console_partition", site="debug.console_partition")

    def flush(th, w):
        yield th.read("launch_flag", site="debug.launch_flag")
        yield th.write("stdout_monitor", site="debug.stdout_monitor")
        yield th.write("stderr_monitor", site="debug.stderr_monitor")
        yield th.write("stdin_stream", site="debug.stdin_stream")
        yield th.write("proc_handle", site="debug.proc_handle")
        yield th.write("console_head", site="debug.console_head")
        yield th.write("console_partition", site="debug.console_partition")

    return _pooled_program(
        "debug", jobs, 4, job_body, main_extra, racy, flush
    )


#: The five operations with their default scales (events grow linearly).
OPERATIONS: Dict[str, tuple] = {
    "Startup": (startup_program, 700),
    "Import": (import_program, 500),
    "CleanSmall": (clean_small_program, 500),
    "CleanLarge": (clean_large_program, 1600),
    "Debug": (debug_program, 150),
}

#: The tools of the Section 5.3 table.
ECLIPSE_TOOLS = ("Empty", "Eraser", "DJIT+", "FastTrack")


def run(scale: Optional[int] = None) -> Dict[str, object]:
    """E7: replay each operation under each tool (per-tool scheduler seed,
    like the paper's separate executions) and collect slowdowns + distinct
    warning totals."""
    slowdowns: Dict[str, Dict[str, BenchmarkResult]] = {}
    warning_totals: Dict[str, int] = {tool: 0 for tool in ECLIPSE_TOOLS}
    for op_name, (factory, default_scale) in OPERATIONS.items():
        op_scale = scale if scale is not None else default_scale
        slowdowns[op_name] = {}
        for seed, tool_name in enumerate(ECLIPSE_TOOLS):
            trace = run_program(factory(op_scale), seed=seed)
            base = base_replay_time(trace)
            detector = _tool(tool_name)
            handle = detector.handle
            start = time.perf_counter()
            for event in trace.events:
                handle(event)
            seconds = time.perf_counter() - start
            detector.absorb_kind_counts(trace.events)
            slowdowns[op_name][tool_name] = BenchmarkResult(
                workload=f"eclipse.{op_name}",
                tool=tool_name,
                events=len(trace),
                seconds=seconds,
                slowdown=seconds / base,
                warnings=detector.warning_count,
                vc_allocs=detector.stats.vc_allocs,
                vc_ops=detector.stats.vc_ops,
                memory_words=detector.shadow_memory_words(),
            )
            warning_totals[tool_name] += detector.warning_count
    return {"slowdowns": slowdowns, "warnings": warning_totals}
