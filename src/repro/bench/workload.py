"""The :class:`Workload` record and the benchmark registry.

A workload couples a model program factory with the paper's published
numbers for the corresponding Java benchmark, so the harness can print
paper-vs-measured tables directly.  Workload traces are memoized per
``(scale, seed)`` — Table 1/2/3 and the composition study all replay the
same trace through different tools, exactly like RoadRunner runs different
back-ends over the same target program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.runtime.program import Program
from repro.runtime.scheduler import run_program
from repro.trace.trace import Trace


@dataclass
class PaperRow:
    """Table 1's published row for one benchmark (for comparison output).

    ``slowdowns`` maps tool name to the published slowdown factor;
    ``warnings`` maps tool name to the published warning count (None where
    the paper shows "–").
    """

    size_loc: int
    threads: int
    base_time_sec: float
    slowdowns: Dict[str, float]
    warnings: Dict[str, Optional[int]]


@dataclass
class Workload:
    """One benchmark: a program factory plus published reference data."""

    name: str
    description: str
    build: Callable[[int], Program]
    default_scale: int
    paper: PaperRow
    compute_bound: bool = True
    seed: int = 0
    _trace_cache: Dict[Tuple[int, int], Trace] = field(
        default_factory=dict, repr=False
    )

    def program(self, scale: Optional[int] = None) -> Program:
        return self.build(scale if scale is not None else self.default_scale)

    def trace(
        self, scale: Optional[int] = None, seed: Optional[int] = None
    ) -> Trace:
        """The workload's event stream (memoized per scale and seed)."""
        actual_scale = scale if scale is not None else self.default_scale
        actual_seed = seed if seed is not None else self.seed
        key = (actual_scale, actual_seed)
        trace = self._trace_cache.get(key)
        if trace is None:
            trace = run_program(self.build(actual_scale), seed=actual_seed)
            self._trace_cache[key] = trace
        return trace


#: The registry, populated by :mod:`repro.bench.programs` (imported below)
#: in the paper's Table 1 row order.
WORKLOADS: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in WORKLOADS:
        raise ValueError(f"duplicate workload {workload.name!r}")
    WORKLOADS[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(WORKLOADS)
        raise ValueError(f"unknown workload {name!r}; expected one of: {known}")


# Populate the registry (import side effect, kept at the bottom to avoid
# circular imports).
from repro.bench.programs import javagrande as _javagrande  # noqa: E402,F401
from repro.bench.programs import apps as _apps  # noqa: E402,F401
