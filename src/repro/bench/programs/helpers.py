"""Shared building blocks for the benchmark model programs."""

from __future__ import annotations

from typing import Callable, List

from repro.runtime.program import ThreadHandle


def fork_all(th: ThreadHandle, body: Callable, count: int, *args):
    """Fork ``count`` workers ``body(handle, index, *args)``; returns tids.

    Use as ``children = yield from fork_all(th, worker, 4)``.
    """
    children: List[int] = []
    for index in range(count):
        child = yield th.fork(body, index, *args)
        children.append(child)
    return children


def join_all(th: ThreadHandle, children):
    """Join every tid in ``children``: ``yield from join_all(th, tids)``."""
    for child in children:
        yield th.join(child)


def local_update(th: ThreadHandle, var, site=None):
    """The inner-loop accumulator idiom that dominates real programs
    (``sum += f(a[i])`` reads and writes the same field every iteration).

    Five reads and two writes of a per-thread variable with no intervening
    synchronization: after the first iteration every one of these accesses
    hits the same-epoch fast paths, which is what drives the paper's 63.4%
    / 71.0% same-epoch rates.
    """
    yield th.read(var, site=site)
    yield th.read(var, site=site)
    yield th.write(var, site=site)
    yield th.read(var, site=site)
    yield th.read(var, site=site)
    yield th.read(var, site=site)
    yield th.write(var, site=site)


def phase_gate(th: ThreadHandle, monitor, state: dict, key: str, target: int):
    """Block until ``state[key] >= target`` using wait/notify on ``monitor``.

    The classic guarded-wait idiom: the caller re-checks the predicate after
    every wakeup.  ``state`` is plain Python data owned by the model program;
    only the monitor operations are visible to the detectors.
    """
    yield th.acquire(monitor)
    while state[key] < target:
        yield th.wait(monitor)
    yield th.release(monitor)


def phase_advance(th: ThreadHandle, monitor, state: dict, key: str):
    """Increment ``state[key]`` under ``monitor`` and wake all waiters."""
    yield th.acquire(monitor)
    state[key] += 1
    yield th.notify_all(monitor)
    yield th.release(monitor)
