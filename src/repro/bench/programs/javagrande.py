"""Java Grande benchmark analogues: crypt, lufact, moldyn, montecarlo,
raytracer, series, sor, sparse.

Each program reproduces the sharing structure of its namesake (see the
module docstring of :mod:`repro.bench.programs`).  The ``scale`` parameter
is the per-worker item count; event volume grows linearly with it.
"""

from __future__ import annotations

from repro.bench.programs.helpers import fork_all, join_all, local_update
from repro.bench.workload import PaperRow, Workload, register
from repro.runtime.program import Barrier, Program


# ---------------------------------------------------------------------------
# crypt — IDEA encryption: fork/join, slice-partitioned arrays, read-shared
# key material.  Race-free; no tool reports anything.
# ---------------------------------------------------------------------------

_CRYPT_WORKERS = 6


def _crypt_program(scale: int) -> Program:
    def main(th):
        yield th.enter("crypt.init")
        for w in range(_CRYPT_WORKERS):
            for i in range(scale):
                yield th.write(("plain", w, i), site="crypt.init")
        for k in range(8):
            yield th.write(("key", k), site="crypt.key")
        yield th.exit("crypt.init")
        children = yield from fork_all(th, worker, _CRYPT_WORKERS)
        yield from join_all(th, children)
        yield th.enter("crypt.verify")
        for w in range(_CRYPT_WORKERS):
            for i in range(scale):
                yield th.read(("check", w, i), site="crypt.verify")
        yield th.exit("crypt.verify")

    def worker(th, w):
        yield th.enter("crypt.encrypt")
        for i in range(scale):
            yield th.read(("plain", w, i), site="crypt.rd_plain")
            yield th.read(("key", i % 8), site="crypt.rd_key")
            yield th.read(("key", (i + 3) % 8), site="crypt.rd_key2")
            yield from local_update(th, ("eacc", w), site="crypt.acc")
            yield th.write(("cipher", w, i), site="crypt.wr_cipher")
        yield th.exit("crypt.encrypt")
        yield th.enter("crypt.decrypt")
        for i in range(scale):
            yield th.read(("cipher", w, i), site="crypt.rd_cipher")
            yield th.read(("key", i % 8), site="crypt.rd_key3")
            yield from local_update(th, ("dacc", w), site="crypt.acc2")
            yield th.write(("check", w, i), site="crypt.wr_check")
        yield th.exit("crypt.decrypt")

    return Program(main, name="crypt")


register(
    Workload(
        name="crypt",
        description="IDEA encryption: fork/join over array slices",
        build=_crypt_program,
        default_scale=700,
        paper=PaperRow(
            size_loc=1241,
            threads=7,
            base_time_sec=0.2,
            slowdowns={
                "Empty": 7.6,
                "Eraser": 14.7,
                "MultiRace": 54.8,
                "Goldilocks": 77.4,
                "BasicVC": 84.4,
                "DJIT+": 54.0,
                "FastTrack": 14.3,
            },
            warnings={
                "Eraser": 0,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# lufact — LU factorization: pipelined iterations ordered by wait/notify
# phase gates.  Race-free, but Eraser reports 4 spurious warnings (fork/join
# and monitor-ordered write handoffs that no common lock protects).
# ---------------------------------------------------------------------------

_LUFACT_WORKERS = 3


def _lufact_program(scale: int) -> Program:
    iterations = max(4, scale // 60)
    cols_per_worker = max(4, scale // 100)
    state = {"phase": 0, "finished": 0}

    def main(th):
        yield th.enter("lufact.init")
        for w in range(_LUFACT_WORKERS):
            for c in range(cols_per_worker):
                yield th.write(("col", w, c), site="lufact.init_handoff")
        yield th.write("norm", site="lufact.norm_seed")
        yield th.exit("lufact.init")
        children = yield from fork_all(th, worker, _LUFACT_WORKERS)
        yield from join_all(th, children)
        # Spurious site 4: the final norm update happens after the joins,
        # but outside the lock the workers used.
        yield th.read("norm", site="lufact.norm_read")
        yield th.write("norm", site="lufact.norm_final")

    def worker(th, w):
        for k in range(iterations):
            owner = k % _LUFACT_WORKERS
            if w == owner:
                # Spurious sites 1 and 2: the pivot value and the swapped row
                # are written by a rotating owner, ordered only by the
                # monitor-based phase gate.
                yield th.write("pivot_value", site="lufact.pivot_value")
                yield th.write(("swap_row", k % 2), site="lufact.row_swap")
                yield th.acquire("phase_lock")
                state["phase"] += 1
                yield th.notify_all("phase_lock")
                yield th.release("phase_lock")
            else:
                yield th.acquire("phase_lock")
                while state["phase"] < k + 1:
                    yield th.wait("phase_lock")
                yield th.release("phase_lock")
            yield th.enter("lufact.update")
            yield th.read("pivot_value", site="lufact.pivot_read")
            yield th.read(("swap_row", k % 2), site="lufact.row_read")
            for c in range(cols_per_worker):
                for r in range(3):
                    yield th.read(("col", w, c), site="lufact.col_read")
                yield from local_update(th, ("lacc", w), site="lufact.acc")
                yield th.write(("col", w, c), site="lufact.col_write")
                yield th.write(("tmp", w, k, c), site="lufact.wr_tmp")
            yield th.exit("lufact.update")
            # End-of-iteration rendezvous: the next owner must not write the
            # pivot while a slow thread is still reading this one.
            yield th.acquire("phase_lock")
            state["finished"] += 1
            yield th.notify_all("phase_lock")
            while state["finished"] < (k + 1) * _LUFACT_WORKERS:
                yield th.wait("phase_lock")
            yield th.release("phase_lock")
        yield th.acquire("norm_lock")
        yield th.read("norm", site="lufact.norm_acc_rd")
        yield th.write("norm", site="lufact.norm_acc")
        yield th.release("norm_lock")

    return Program(main, name="lufact")


register(
    Workload(
        name="lufact",
        description="LU factorization: monitor-gated pipelined iterations",
        build=_lufact_program,
        default_scale=900,
        paper=PaperRow(
            size_loc=1627,
            threads=4,
            base_time_sec=4.5,
            slowdowns={
                "Empty": 2.6,
                "Eraser": 8.1,
                "MultiRace": 42.5,
                "Goldilocks": None,  # ran out of memory in the paper
                "BasicVC": 95.1,
                "DJIT+": 36.3,
                "FastTrack": 13.5,
            },
            warnings={
                "Eraser": 4,
                "MultiRace": 0,
                "Goldilocks": None,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# moldyn — molecular dynamics: barrier-phased force/position updates,
# read-shared positions, lock-protected energy reduction.  Race-free and
# clean for every tool (the barrier-aware Eraser included).
# ---------------------------------------------------------------------------

_MOLDYN_WORKERS = 3  # plus main = 4 barrier parties


def _moldyn_program(scale: int) -> Program:
    iterations = max(2, scale // 300)
    particles = max(8, scale // 30)  # per party
    barrier = Barrier(_MOLDYN_WORKERS + 1, name="moldyn.barrier")
    parties = _MOLDYN_WORKERS + 1

    def particle_phase(th, me):
        # Order everyone's position initialization before the first reads.
        yield th.barrier_await(barrier)
        for it in range(iterations):
            # Force phase: read everyone's positions, write own forces.
            yield th.enter("moldyn.forces")
            for other in range(parties):
                for p in range(particles):
                    yield th.read(("pos", other, p), site="moldyn.rd_pos")
            for p in range(particles):
                yield from local_update(th, ("facc", me), site="moldyn.acc")
                yield th.write(("force", me, p), site="moldyn.wr_force")
                # Per-iteration pair-distance temporaries (fresh locations
                # each sweep, like the per-step Java allocations).
                yield th.write(("tmp", me, it, p), site="moldyn.wr_tmp")
            yield th.exit("moldyn.forces")
            yield th.barrier_await(barrier)
            # Move phase: update own positions from own forces.
            yield th.enter("moldyn.move")
            for p in range(particles):
                yield th.read(("force", me, p), site="moldyn.rd_force")
                yield th.write(("pos", me, p), site="moldyn.wr_pos")
            yield th.exit("moldyn.move")
            yield th.acquire("energy_lock")
            yield th.read("energy", site="moldyn.energy_rd")
            yield th.write("energy", site="moldyn.energy_wr")
            yield th.release("energy_lock")
            yield th.barrier_await(barrier)

    def main(th):
        # Each party initializes its own particles (no handoff writes).
        for p in range(particles):
            yield th.write(("pos", 0, p), site="moldyn.init_own")
        children = yield from fork_all(th, worker, _MOLDYN_WORKERS)
        yield from particle_phase(th, 0)
        yield from join_all(th, children)
        yield th.acquire("energy_lock")
        yield th.read("energy", site="moldyn.energy_final")
        yield th.release("energy_lock")

    def worker(th, w):
        me = w + 1
        for p in range(particles):
            yield th.write(("pos", me, p), site="moldyn.init_own")
        yield from particle_phase(th, me)

    return Program(main, name="moldyn")


register(
    Workload(
        name="moldyn",
        description="molecular dynamics: barrier-phased N-body updates",
        build=_moldyn_program,
        default_scale=1200,
        paper=PaperRow(
            size_loc=1402,
            threads=4,
            base_time_sec=8.5,
            slowdowns={
                "Empty": 5.6,
                "Eraser": 9.1,
                "MultiRace": 45.0,
                "Goldilocks": 17.5,
                "BasicVC": 111.7,
                "DJIT+": 39.6,
                "FastTrack": 10.6,
            },
            warnings={
                "Eraser": 0,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# montecarlo — thread-local simulation paths, results handed to the parent
# through a lock-protected list and a join.  Race-free.
# ---------------------------------------------------------------------------

_MC_WORKERS = 3


def _montecarlo_program(scale: int) -> Program:
    def main(th):
        yield th.enter("mc.setup")
        for p in range(16):
            yield th.write(("param", p), site="mc.param")
        yield th.exit("mc.setup")
        children = yield from fork_all(th, worker, _MC_WORKERS)
        yield from join_all(th, children)
        yield th.enter("mc.reduce")
        for w in range(_MC_WORKERS):
            for i in range(scale // 8):
                yield th.read(("result", w, i), site="mc.rd_result")
        yield th.exit("mc.reduce")

    def worker(th, w):
        for i in range(scale):
            yield th.enter("mc.path")
            yield th.read(("param", i % 16), site="mc.rd_param")
            yield th.read(("local", w, i % 32), site="mc.rd_local")
            yield from local_update(th, ("macc", w), site="mc.acc")
            yield th.write(("local", w, i % 32), site="mc.wr_local")
            yield th.exit("mc.path")
            if i % 8 == 0:
                yield th.acquire("results_lock")
                yield th.write(("result", w, i // 8), site="mc.wr_result")
                yield th.release("results_lock")

    return Program(main, name="montecarlo")


register(
    Workload(
        name="montecarlo",
        description="Monte Carlo paths: thread-local state, locked results",
        build=_montecarlo_program,
        default_scale=2000,
        paper=PaperRow(
            size_loc=3669,
            threads=4,
            base_time_sec=5.0,
            slowdowns={
                "Empty": 4.2,
                "Eraser": 8.5,
                "MultiRace": 32.8,
                "Goldilocks": 6.3,
                "BasicVC": 49.4,
                "DJIT+": 30.5,
                "FastTrack": 6.4,
            },
            warnings={
                "Eraser": 0,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# raytracer — partitioned rendering with the famous unsynchronized checksum:
# one real write-write race that every tool catches.
# ---------------------------------------------------------------------------

_RT_WORKERS = 3


def _raytracer_program(scale: int) -> Program:
    def main(th):
        yield th.enter("rt.scene")
        for s in range(24):
            yield th.write(("scene", s), site="rt.scene_init")
        yield th.exit("rt.scene")
        children = yield from fork_all(th, worker, _RT_WORKERS)
        yield from join_all(th, children)
        yield th.read("checksum", site="rt.checksum_final")

    def worker(th, w):
        for i in range(scale):
            yield th.enter("rt.render_row")
            yield th.read(("scene", i % 24), site="rt.rd_scene")
            yield th.read(("scene", (i * 7) % 24), site="rt.rd_scene2")
            yield from local_update(th, ("racc", w), site="rt.acc")
            yield th.write(("pixel", w, i), site="rt.wr_pixel")
            yield th.exit("rt.render_row")
            if i % 16 == 0:
                # THE raytracer bug: checksum updated with no lock.
                yield th.read("checksum", site="rt.checksum_rd")
                yield th.write("checksum", site="rt.checksum")

    return Program(main, name="raytracer")


register(
    Workload(
        name="raytracer",
        description="ray tracer with the unsynchronized checksum race",
        build=_raytracer_program,
        default_scale=1800,
        paper=PaperRow(
            size_loc=1970,
            threads=4,
            base_time_sec=6.8,
            slowdowns={
                "Empty": 4.6,
                "Eraser": 6.7,
                "MultiRace": 17.9,
                "Goldilocks": 32.8,
                "BasicVC": 250.2,
                "DJIT+": 18.1,
                "FastTrack": 13.1,
            },
            warnings={
                "Eraser": 1,
                "MultiRace": 1,
                "Goldilocks": 1,
                "BasicVC": 1,
                "DJIT+": 1,
                "FastTrack": 1,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# series — Fourier coefficients, embarrassingly parallel.  One Eraser
# spurious warning: the per-worker block seed written by main and then by
# the worker (fork-ordered, lock-free).
# ---------------------------------------------------------------------------

_SERIES_WORKERS = 3


def _series_program(scale: int) -> Program:
    def main(th):
        for w in range(_SERIES_WORKERS):
            yield th.write(("base", w), site="series.base")
        children = yield from fork_all(th, worker, _SERIES_WORKERS)
        yield from join_all(th, children)
        for w in range(_SERIES_WORKERS):
            for i in range(0, scale, 8):
                yield th.read(("coeff", w, i), site="series.rd_coeff")

    def worker(th, w):
        yield th.read(("base", w), site="series.rd_base")
        yield th.write(("base", w), site="series.base")  # spurious site
        for i in range(scale):
            yield th.enter("series.term")
            yield th.read(("base", w), site="series.rd_base2")
            yield th.read(("trig", i % 16), site="series.rd_trig")
            yield from local_update(th, ("sacc", w), site="series.acc")
            yield th.write(("coeff", w, i), site="series.wr_coeff")
            yield th.exit("series.term")

    return Program(main, name="series")


register(
    Workload(
        name="series",
        description="Fourier series: thread-local blocks, one seeded handoff",
        build=_series_program,
        default_scale=2600,
        paper=PaperRow(
            size_loc=967,
            threads=4,
            base_time_sec=175.1,
            slowdowns={
                "Empty": 1.0,
                "Eraser": 1.0,
                "MultiRace": 1.0,
                "Goldilocks": 1.0,
                "BasicVC": 1.0,
                "DJIT+": 1.0,
                "FastTrack": 1.0,
            },
            warnings={
                "Eraser": 1,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# sor — red/black successive over-relaxation with barriers.  Race-free;
# Eraser reports 3 spurious warnings on fork/join handoffs that happen
# outside any barrier phase.
# ---------------------------------------------------------------------------

_SOR_WORKERS = 3


def _sor_program(scale: int) -> Program:
    iterations = max(2, scale // 500)
    cells = max(10, scale // 15)  # per worker
    barrier = Barrier(_SOR_WORKERS, name="sor.barrier")

    def main(th):
        # Spurious sites 1 and 2: main initializes the grid and the boundary
        # rows; the workers later write them, ordered only by the fork.
        for w in range(_SOR_WORKERS):
            for c in range(cells):
                yield th.write(("grid", w, c), site="sor.grid_handoff")
            yield th.write(("bound", w), site="sor.bounds_handoff")
            yield th.write(("wres", w), site="sor.wres_handoff")
        yield th.write("residual", site="sor.residual_seed")
        children = yield from fork_all(th, worker, _SOR_WORKERS)
        yield from join_all(th, children)
        # Spurious site 3: the final residual write happens after the joins
        # but without the lock the workers used.
        yield th.read("residual", site="sor.residual_rd")
        yield th.write("residual", site="sor.residual_final")

    def worker(th, w):
        left = (w - 1) % _SOR_WORKERS
        right = (w + 1) % _SOR_WORKERS
        yield th.read(("bound", w), site="sor.rd_bound")
        yield th.write(("bound", w), site="sor.bounds_handoff")
        yield th.read(("wres", w), site="sor.rd_wres")
        yield th.write(("wres", w), site="sor.wres_handoff")
        # Scatter: take ownership of this worker's cells (the fork-ordered
        # handoff Eraser flags), then order it before anyone's reads.
        for c in range(cells):
            yield th.read(("grid", w, c), site="sor.rd_scatter")
            yield th.write(("grid", w, c), site="sor.scatter")
        yield th.barrier_await(barrier)
        for it in range(iterations):
            # Phase A: read the previous generation (own + neighbours).
            yield th.enter("sor.gather")
            for c in range(cells):
                yield th.read(("grid", left, c), site="sor.rd_left")
                yield th.read(("grid", right, c), site="sor.rd_right")
                yield th.read(("grid", w, c), site="sor.rd_own")
                yield from local_update(th, ("soracc", w), site="sor.acc")
            yield th.exit("sor.gather")
            yield th.barrier_await(barrier)
            # Phase B: write the next generation of own cells.
            yield th.enter("sor.update")
            for c in range(cells):
                yield th.write(("grid", w, c), site="sor.wr_own")
                yield th.write(("tmp", w, it, c), site="sor.wr_tmp")
            yield th.exit("sor.update")
            yield th.acquire("residual_lock")
            yield th.read("residual", site="sor.residual_acc_rd")
            yield th.write("residual", site="sor.residual_acc")
            yield th.release("residual_lock")
            yield th.barrier_await(barrier)

    return Program(main, name="sor")


register(
    Workload(
        name="sor",
        description="red/black SOR: barrier phases over a shared grid",
        build=_sor_program,
        default_scale=1500,
        paper=PaperRow(
            size_loc=1005,
            threads=4,
            base_time_sec=0.2,
            slowdowns={
                "Empty": 4.4,
                "Eraser": 9.1,
                "MultiRace": 16.9,
                "Goldilocks": 63.2,
                "BasicVC": 24.6,
                "DJIT+": 15.8,
                "FastTrack": 9.3,
            },
            warnings={
                "Eraser": 3,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# sparse — sparse matrix-vector multiply: large read-shared inputs, worker-
# private outputs.  Race-free and read-dominated.
# ---------------------------------------------------------------------------

_SPARSE_WORKERS = 3


def _sparse_program(scale: int) -> Program:
    nnz_shared = 64

    def main(th):
        yield th.enter("sparse.load")
        for i in range(nnz_shared):
            yield th.write(("a", i), site="sparse.wr_a")
        for i in range(32):
            yield th.write(("x", i), site="sparse.wr_x")
        yield th.exit("sparse.load")
        children = yield from fork_all(th, worker, _SPARSE_WORKERS)
        yield from join_all(th, children)
        for w in range(_SPARSE_WORKERS):
            for i in range(0, scale, 16):
                yield th.read(("y", w, i), site="sparse.rd_y")

    def worker(th, w):
        for i in range(scale):
            yield th.enter("sparse.row")
            yield th.read(("a", i % nnz_shared), site="sparse.rd_a")
            yield th.read(("a", (i * 5) % nnz_shared), site="sparse.rd_a2")
            yield th.read(("x", i % 32), site="sparse.rd_x")
            yield th.read(("x", (i * 3) % 32), site="sparse.rd_x2")
            yield from local_update(th, ("spacc", w), site="sparse.acc")
            yield th.write(("y", w, i), site="sparse.wr_y")
            yield th.exit("sparse.row")

    return Program(main, name="sparse")


register(
    Workload(
        name="sparse",
        description="sparse mat-vec: read-shared inputs, private outputs",
        build=_sparse_program,
        default_scale=1600,
        paper=PaperRow(
            size_loc=868,
            threads=4,
            base_time_sec=8.5,
            slowdowns={
                "Empty": 5.4,
                "Eraser": 11.3,
                "MultiRace": 29.8,
                "Goldilocks": 64.1,
                "BasicVC": 57.5,
                "DJIT+": 27.8,
                "FastTrack": 14.8,
            },
            warnings={
                "Eraser": 0,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)
