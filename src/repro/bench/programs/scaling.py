"""A thread-count-parametric workload for the asymptotic claim.

The whole point of epochs: a vector-clock operation costs O(n) in the
number of threads, an epoch operation O(1).  The Table 1 benchmarks run at
fixed (small) thread counts, so the asymptotics hide inside constants; this
workload exposes them by scaling ``threads`` while holding the per-thread
access mix constant:

* a read-shared configuration array that every worker reads per item —
  BasicVC pays an O(n) comparison per read, FastTrack an O(1) epoch check
  (or an O(1) slot update in read-shared mode);
* a per-worker accumulator (same-epoch traffic);
* a lock-protected global counter touched rarely.

Used by ``benchmarks/bench_thread_scaling.py``; not part of the Table 1
registry (the paper's benchmarks fix their thread counts).
"""

from __future__ import annotations

from repro.bench.programs.helpers import fork_all, join_all, local_update
from repro.runtime.program import Program


def scaling_program(threads: int, scale: int) -> Program:
    """``threads`` workers (plus main) over shared data of fixed shape."""
    if threads < 1:
        raise ValueError("need at least one worker thread")
    shared_cells = 32

    def main(th):
        for c in range(shared_cells):
            yield th.write(("config", c), site="scaling.init")
        children = yield from fork_all(th, worker, threads)
        yield from join_all(th, children)
        yield th.acquire("total_lock")
        yield th.read("total", site="scaling.final")
        yield th.release("total_lock")

    def worker(th, w):
        for i in range(scale):
            yield th.read(("config", i % shared_cells), site="scaling.rd")
            yield th.read(
                ("config", (i * 7) % shared_cells), site="scaling.rd2"
            )
            yield from local_update(th, ("acc", w), site="scaling.acc")
            yield th.write(("out", w, i), site="scaling.wr")
            if i % 64 == 0:
                yield th.acquire("total_lock")
                yield th.read("total", site="scaling.total_rd")
                yield th.write("total", site="scaling.total_wr")
                yield th.release("total_lock")

    return Program(main, name=f"scaling[{threads}]")
