"""Model programs for the 16 benchmarks of Table 1.

Each module registers its workloads with :mod:`repro.bench.workload`.
The programs are synthetic analogues: they reproduce the *sharing
structure* of the original Java benchmarks — which data is thread-local,
lock-protected, read-shared, barrier-phased, or handed off via fork/join and
wait/notify — and the races the paper reports, calibrated so each tool's
warning count matches its Table 1 column (see DESIGN.md §2 for the
substitution argument and EXPERIMENTS.md for the measured comparison).
"""

from repro.bench.programs import helpers

__all__ = ["helpers"]
