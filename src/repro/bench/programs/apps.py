"""Application benchmark analogues: colt, mtrt, raja, tsp, elevator, philo,
hedc, jbb.

These carry the evaluation's interesting warning structure: tsp's benign
bound race plus eight fork/join false alarms for Eraser, hedc's three real
thread-pool races (two of which Eraser and MultiRace miss, and all of which
the paper's unsoundly-extended Goldilocks missed), jbb's two races, and the
benign races in mtrt and raytracer.
"""

from __future__ import annotations

from repro.bench.programs.helpers import fork_all, join_all, local_update
from repro.bench.workload import PaperRow, Workload, register
from repro.runtime.program import Program


# ---------------------------------------------------------------------------
# colt — scientific computing library driver: 10 workers over read-shared
# matrices.  Race-free; 3 Eraser false alarms on fork/join handoffs.
# ---------------------------------------------------------------------------

_COLT_WORKERS = 10


def _colt_program(scale: int) -> Program:
    def main(th):
        yield th.enter("colt.setup")
        for i in range(48):
            yield th.write(("A", i), site="colt.wr_A")
            yield th.write(("B", i), site="colt.wr_B")
        for w in range(_COLT_WORKERS):
            yield th.write(("wconfig", w), site="colt.config_seed")
            yield th.write(("scratch", w), site="colt.scratch_seed")
        yield th.write("total", site="colt.total_seed")
        yield th.exit("colt.setup")
        yield th.volatile_write("colt.go")
        children = yield from fork_all(th, worker, _COLT_WORKERS)
        yield from join_all(th, children)
        # Spurious site 3: final total update after the joins, lock-free.
        yield th.read("total", site="colt.total_rd")
        yield th.write("total", site="colt.total_final")

    def worker(th, w):
        yield th.volatile_read("colt.go")
        yield th.read(("wconfig", w), site="colt.config_rd")
        # Spurious sites 1 and 2: fork-ordered write handoffs.
        yield th.write(("wconfig", w), site="colt.config_handoff")
        yield th.write(("scratch", w), site="colt.scratch_handoff")
        for i in range(scale):
            yield th.enter("colt.kernel")
            yield th.read(("A", i % 48), site="colt.rd_A")
            yield th.read(("B", (i * 3) % 48), site="colt.rd_B")
            yield th.read(("scratch", w), site="colt.rd_scratch")
            yield from local_update(th, ("cacc", w), site="colt.acc")
            yield th.write(("C", w, i), site="colt.wr_C")
            yield th.exit("colt.kernel")
            if i % 32 == 0:
                yield th.acquire("total_lock")
                yield th.read("total", site="colt.total_acc_rd")
                yield th.write("total", site="colt.total_acc")
                yield th.release("total_lock")

    return Program(main, name="colt")


register(
    Workload(
        name="colt",
        description="matrix library driver: 10 workers, read-shared inputs",
        build=_colt_program,
        default_scale=500,
        paper=PaperRow(
            size_loc=111421,
            threads=11,
            base_time_sec=16.1,
            slowdowns={
                "Empty": 0.9,
                "Eraser": 0.9,
                "MultiRace": 0.9,
                "Goldilocks": 1.8,
                "BasicVC": 0.9,
                "DJIT+": 0.9,
                "FastTrack": 0.9,
            },
            warnings={
                "Eraser": 3,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# mtrt — multithreaded ray tracer (SPEC): partitioned rendering plus one
# benign write-write race on a progress counter that every tool reports.
# ---------------------------------------------------------------------------

_MTRT_WORKERS = 4


def _mtrt_program(scale: int) -> Program:
    def main(th):
        yield th.enter("mtrt.scene")
        for s in range(32):
            yield th.write(("scene", s), site="mtrt.scene_init")
        yield th.exit("mtrt.scene")
        children = yield from fork_all(th, worker, _MTRT_WORKERS)
        yield from join_all(th, children)
        for w in range(_MTRT_WORKERS):
            for i in range(0, scale, 10):
                yield th.read(("row", w, i), site="mtrt.rd_row")

    def worker(th, w):
        for i in range(scale):
            yield th.enter("mtrt.trace_ray")
            yield th.read(("scene", i % 32), site="mtrt.rd_scene")
            yield th.read(("scene", (i * 11) % 32), site="mtrt.rd_scene2")
            yield th.read(("scene", (i * 5) % 32), site="mtrt.rd_scene3")
            yield from local_update(th, ("tacc", w), site="mtrt.acc")
            yield th.write(("row", w, i), site="mtrt.wr_row")
            yield th.exit("mtrt.trace_ray")
            if i % 25 == 0:
                # Benign race: unsynchronized progress counter.
                yield th.read("progress", site="mtrt.progress_rd")
                yield th.write("progress", site="mtrt.progress")

    return Program(main, name="mtrt")


register(
    Workload(
        name="mtrt",
        description="SPEC ray tracer: benign race on a progress counter",
        build=_mtrt_program,
        default_scale=1500,
        paper=PaperRow(
            size_loc=11317,
            threads=5,
            base_time_sec=0.5,
            slowdowns={
                "Empty": 5.7,
                "Eraser": 6.5,
                "MultiRace": 7.1,
                "Goldilocks": 6.7,
                "BasicVC": 8.3,
                "DJIT+": 7.1,
                "FastTrack": 6.0,
            },
            warnings={
                "Eraser": 1,
                "MultiRace": 1,
                "Goldilocks": 1,
                "BasicVC": 1,
                "DJIT+": 1,
                "FastTrack": 1,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# raja — two-thread ray tracer: a producer/consumer job queue guarded by a
# monitor (wait/notify).  Race-free.
# ---------------------------------------------------------------------------


def _raja_program(scale: int) -> Program:
    state = {"queue": [], "done": False}

    def main(th):
        renderer = yield th.fork(render)
        for i in range(scale):
            yield th.acquire("q")
            yield th.write(("job", i), site="raja.wr_job")
            state["queue"].append(i)
            yield th.notify_all("q")
            yield th.release("q")
        yield th.acquire("q")
        state["done"] = True
        yield th.notify_all("q")
        yield th.release("q")
        yield th.join(renderer)
        for i in range(0, scale, 4):
            yield th.read(("pixel", i), site="raja.rd_pixel")

    def render(th, _w=None):
        while True:
            yield th.acquire("q")
            while not state["queue"] and not state["done"]:
                yield th.wait("q")
            if state["queue"]:
                job = state["queue"].pop(0)
                yield th.read(("job", job), site="raja.rd_job")
                yield th.release("q")
                yield th.enter("raja.render")
                yield th.read(("lut", job % 16), site="raja.rd_lut")
                yield from local_update(th, ("raacc", "render"), site="raja.acc")
                yield th.write(("pixel", job), site="raja.wr_pixel")
                yield th.exit("raja.render")
            else:
                yield th.release("q")
                return

    return Program(main, name="raja")


register(
    Workload(
        name="raja",
        description="two-thread renderer: monitor-guarded job queue",
        build=_raja_program,
        default_scale=1200,
        paper=PaperRow(
            size_loc=12028,
            threads=2,
            base_time_sec=0.7,
            slowdowns={
                "Empty": 2.8,
                "Eraser": 3.0,
                "MultiRace": 3.2,
                "Goldilocks": 2.7,
                "BasicVC": 3.5,
                "DJIT+": 3.4,
                "FastTrack": 2.8,
            },
            warnings={
                "Eraser": 0,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# tsp — branch-and-bound travelling salesman: lock-protected work counter,
# the classic benign race on the global bound (written under a lock, read
# without it), and eight per-worker tour fields seeded by main (fork-ordered
# handoffs → eight Eraser false alarms).
# ---------------------------------------------------------------------------

_TSP_WORKERS = 4
_TSP_FIELDS = (
    "path",
    "visited",
    "depth",
    "cost",
    "best_local",
    "stack",
    "prefix",
    "cache",
)


def _tsp_program(scale: int) -> Program:
    state = {"next": 0}
    tasks = max(4, scale // 12)

    def main(th):
        yield th.enter("tsp.setup")
        for i in range(40):
            yield th.write(("dist", i), site="tsp.wr_dist")
        for w in range(_TSP_WORKERS):
            for f in _TSP_FIELDS:
                yield th.write((f, w), site=f"tsp.seed_{f}")
        yield th.write("best", site="tsp.best_seed")
        yield th.exit("tsp.setup")
        children = yield from fork_all(th, worker, _TSP_WORKERS)
        yield from join_all(th, children)
        yield th.acquire("best_lock")
        yield th.read("best", site="tsp.best_result")
        yield th.release("best_lock")

    def worker(th, w):
        while True:
            yield th.acquire("task_lock")
            task = state["next"]
            state["next"] += 1
            yield th.read("next_task", site="tsp.rd_next")
            yield th.write("next_task", site="tsp.wr_next")
            yield th.release("task_lock")
            if task >= tasks:
                return
            yield th.enter("tsp.search")
            for step in range(12):
                # The benign bound race: unsynchronized pruning read.
                yield th.read("best", site="tsp.best_read")
                yield th.read(("dist", (task * 12 + step) % 40), site="tsp.rd_dist")
                yield th.read(("dist", (task * 7 + step) % 40), site="tsp.rd_dist2")
                yield from local_update(th, ("tspacc", w), site="tsp.acc")
                for f in _TSP_FIELDS:
                    if step % 4 == hash(f) % 4:
                        yield th.read((f, w), site=f"tsp.rd_{f}")
                        yield th.write((f, w), site=f"tsp.seed_{f}")
            yield th.exit("tsp.search")
            if task % 3 == 0:
                yield th.acquire("best_lock")
                yield th.read("best", site="tsp.best_locked_rd")
                yield th.write("best", site="tsp.best_update")
                yield th.release("best_lock")

    return Program(main, name="tsp")


register(
    Workload(
        name="tsp",
        description="branch-and-bound TSP: benign bound race + 8 handoffs",
        build=_tsp_program,
        default_scale=1200,
        paper=PaperRow(
            size_loc=706,
            threads=5,
            base_time_sec=0.4,
            slowdowns={
                "Empty": 4.4,
                "Eraser": 24.9,
                "MultiRace": 8.5,
                "Goldilocks": 74.2,
                "BasicVC": 390.7,
                "DJIT+": 8.2,
                "FastTrack": 8.9,
            },
            warnings={
                "Eraser": 9,
                "MultiRace": 1,
                "Goldilocks": 1,
                "BasicVC": 1,
                "DJIT+": 1,
                "FastTrack": 1,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# elevator — discrete event simulator (not compute-bound): a dispatcher
# enqueues calls under a monitor; elevator threads wait, dequeue, and update
# lock-protected floor state.  Race-free.
# ---------------------------------------------------------------------------

_ELEVATORS = 3


def _elevator_program(scale: int) -> Program:
    state = {"calls": [], "done": False}
    calls = max(4, scale // 10)

    def main(th):
        dispatcher = yield th.fork(dispatch)
        lifts = yield from fork_all(th, elevator, _ELEVATORS)
        yield th.join(dispatcher)
        yield from join_all(th, lifts)
        yield th.acquire("building")
        for f in range(8):
            yield th.read(("floor", f), site="elevator.final_rd")
        yield th.release("building")

    def dispatch(th, _w=None):
        for c in range(calls):
            yield th.acquire("building")
            yield th.write(("call", c), site="elevator.wr_call")
            state["calls"].append(c)
            yield th.notify_all("building")
            yield th.release("building")
        yield th.acquire("building")
        state["done"] = True
        yield th.notify_all("building")
        yield th.release("building")

    def elevator(th, e):
        while True:
            yield th.acquire("building")
            while not state["calls"] and not state["done"]:
                yield th.wait("building")
            if state["calls"]:
                call = state["calls"].pop(0)
                yield th.read(("call", call), site="elevator.rd_call")
                yield th.write(("floor", call % 8), site="elevator.wr_floor")
                yield th.release("building")
                for s in range(4):
                    yield th.read(("motor", e), site="elevator.rd_motor")
                    yield th.write(("motor", e), site="elevator.wr_motor")
            else:
                yield th.release("building")
                return

    return Program(main, name="elevator")


register(
    Workload(
        name="elevator",
        description="discrete-event elevator simulator (monitor-driven)",
        build=_elevator_program,
        default_scale=600,
        compute_bound=False,
        paper=PaperRow(
            size_loc=1447,
            threads=5,
            base_time_sec=5.0,
            slowdowns={
                "Empty": 1.1,
                "Eraser": 1.1,
                "MultiRace": 1.1,
                "Goldilocks": 1.1,
                "BasicVC": 1.1,
                "DJIT+": 1.1,
                "FastTrack": 1.1,
            },
            warnings={
                "Eraser": 0,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# philo — dining philosophers: fork locks acquired in canonical order,
# per-philosopher meal counters, lock-protected table statistics.  Race-free.
# ---------------------------------------------------------------------------

_PHILOSOPHERS = 5


def _philo_program(scale: int) -> Program:
    meals = max(2, scale // 25)

    def main(th):
        yield th.write("table", site="philo.table_init")
        children = yield from fork_all(th, philosopher, _PHILOSOPHERS)
        yield from join_all(th, children)
        yield th.acquire("table_lock")
        yield th.read("table_total", site="philo.final_rd")
        yield th.release("table_lock")

    def philosopher(th, p):
        first = ("fork", min(p, (p + 1) % _PHILOSOPHERS))
        second = ("fork", max(p, (p + 1) % _PHILOSOPHERS))
        for m in range(meals):
            yield th.enter("philo.dine")
            yield th.acquire(first)
            yield th.acquire(second)
            yield th.read(("meals", p), site="philo.rd_meals")
            yield th.write(("meals", p), site="philo.wr_meals")
            yield th.read("table", site="philo.rd_table")
            yield th.release(second)
            yield th.release(first)
            yield th.exit("philo.dine")
            yield th.acquire("table_lock")
            yield th.read("table_total", site="philo.rd_total")
            yield th.write("table_total", site="philo.wr_total")
            yield th.release("table_lock")

    return Program(main, name="philo")


register(
    Workload(
        name="philo",
        description="dining philosophers with ordered fork acquisition",
        build=_philo_program,
        default_scale=500,
        compute_bound=False,
        paper=PaperRow(
            size_loc=86,
            threads=6,
            base_time_sec=7.4,
            slowdowns={
                "Empty": 1.1,
                "Eraser": 1.0,
                "MultiRace": 1.1,
                "Goldilocks": 7.2,
                "BasicVC": 1.1,
                "DJIT+": 1.1,
                "FastTrack": 1.1,
            },
            warnings={
                "Eraser": 0,
                "MultiRace": 0,
                "Goldilocks": 0,
                "BasicVC": 0,
                "DJIT+": 0,
                "FastTrack": 0,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# hedc — web-data harvester with a thread pool.  Three real races around
# task cancellation and result polling; Eraser sees only the write-write one
# (plus one fork-handoff false alarm), MultiRace sees only the write-write
# one, and the paper's unsoundly-extended Goldilocks missed all three.
# ---------------------------------------------------------------------------

_HEDC_POOL = 4


def _hedc_program(scale: int) -> Program:
    state = {"queue": [], "done": False, "written": []}
    tasks = max(8, scale // 6)

    def main(th):
        for w in range(_HEDC_POOL):
            yield th.write(("slot", w), site="hedc.slot_seed")
        children = yield from fork_all(th, pool_worker, _HEDC_POOL)
        stats = yield th.fork(stats_thread)
        for i in range(tasks):
            yield th.acquire("qlock")
            yield th.write(("task", i), site="hedc.wr_task")
            state["queue"].append(i)
            yield th.notify_all("qlock")
            yield th.release("qlock")
        yield th.acquire("qlock")
        state["done"] = True
        yield th.notify_all("qlock")
        yield th.release("qlock")
        # Real race 1 (write-write): lock-free cancellation of the pool
        # slots, after main's last queue operation.  Each worker writes its
        # own shutdown status on its exit path (also after its last queue
        # operation), so neither side synchronizes again before the joins —
        # the two writes are concurrent on every schedule.
        for w in range(_HEDC_POOL):
            yield th.write(("wstatus", w), site="hedc.status")
        yield from join_all(th, children)
        yield th.join(stats)

    def pool_worker(th, w):
        yield th.read(("slot", w), site="hedc.rd_slot")
        yield th.write(("slot", w), site="hedc.slot")  # fork handoff (spurious)
        while True:
            yield th.acquire("qlock")
            while not state["queue"] and not state["done"]:
                yield th.wait("qlock")
            if state["queue"]:
                task = state["queue"].pop(0)
                yield th.read(("task", task), site="hedc.rd_task")
                yield th.release("qlock")
                yield th.enter("hedc.fetch")
                for s in range(4):
                    yield th.read(("meta", (task + s) % 16), site="hedc.rd_meta")
                yield th.write(("url", task), site="hedc.wr_url")
                yield th.write(("result", task), site="hedc.wr_result")
                yield th.write(("status", task), site="hedc.status")
                yield th.exit("hedc.fetch")
                state["written"].append(task)
            else:
                yield th.release("qlock")
                # The worker's own status write for the cancellation race.
                yield th.write(("wstatus", w), site="hedc.status")
                return

    def stats_thread(th, _w=None):
        # Real races 2 and 3 (write-read): a monitoring thread that polls
        # results and URLs with no synchronization whatsoever.  It only polls
        # indices the workers have already produced (plain Python state, no
        # events), so each variable's write strictly precedes the read in the
        # trace while remaining concurrent — the exact pattern Eraser's
        # read-share state and MultiRace's ownership machine forgive.
        polled = 0
        cursor = 0
        while polled < 12:
            if cursor < len(state["written"]):
                task = state["written"][cursor]
                cursor += 1
                polled += 1
                yield th.read(("result", task), site="hedc.result_poll")
                yield th.read(("url", task), site="hedc.url_poll")
            elif state["done"] and not state["queue"]:
                break  # pool drained and nothing new will be produced
            else:
                yield th.pause()

    return Program(main, name="hedc")


register(
    Workload(
        name="hedc",
        description="thread-pool web harvester with cancellation races",
        build=_hedc_program,
        default_scale=700,
        compute_bound=False,
        paper=PaperRow(
            size_loc=24937,
            threads=6,
            base_time_sec=5.9,
            slowdowns={
                "Empty": 1.1,
                "Eraser": 0.9,
                "MultiRace": 1.1,
                "Goldilocks": 1.1,
                "BasicVC": 1.1,
                "DJIT+": 1.1,
                "FastTrack": 1.1,
            },
            warnings={
                "Eraser": 2,
                "MultiRace": 1,
                "Goldilocks": 0,
                "BasicVC": 3,
                "DJIT+": 3,
                "FastTrack": 3,
            },
        ),
    )
)


# ---------------------------------------------------------------------------
# jbb — SPEC JBB2000 business-object simulator: per-warehouse locking, one
# unsynchronized global transaction counter (write-write race) and one
# mode-flag polling race (write-read), plus two Eraser false alarms.
# ---------------------------------------------------------------------------

_JBB_WAREHOUSES = 4


def _jbb_program(scale: int) -> Program:
    orders = max(8, scale // 4)

    def main(th):
        yield th.enter("jbb.setup")
        for c in range(24):
            yield th.write(("customer", c), site="jbb.wr_customer")
        for w in range(_JBB_WAREHOUSES):
            yield th.write(("wstats", w), site="jbb.wstats_seed")
        yield th.write("report_total", site="jbb.report_seed")
        yield th.write("mode_flag", site="jbb.mode_set")
        yield th.exit("jbb.setup")
        children = yield from fork_all(th, warehouse, _JBB_WAREHOUSES)
        # Real race 2 (write-read): flip the mode while warehouses poll it.
        yield th.write("mode_flag", site="jbb.mode_set")
        yield from join_all(th, children)
        yield th.read("report_total", site="jbb.report_rd")
        yield th.write("report_total", site="jbb.report_final")

    def warehouse(th, w):
        yield th.read(("wstats", w), site="jbb.rd_wstats")
        yield th.write(("wstats", w), site="jbb.wstats")  # fork handoff
        for o in range(orders):
            yield th.enter("jbb.order")
            yield th.read(("customer", o % 24), site="jbb.rd_customer")
            yield from local_update(th, ("jacc", w), site="jbb.acc")
            yield th.acquire(("wlock", w))
            yield th.read(("inventory", w, o % 12), site="jbb.rd_inv")
            yield th.write(("inventory", w, o % 12), site="jbb.wr_inv")
            yield th.release(("wlock", w))
            yield th.exit("jbb.order")
            if o % 6 == 0:
                # Real race 1 (write-write): global unsynchronized counter.
                yield th.read("txn_count", site="jbb.txn_rd")
                yield th.write("txn_count", site="jbb.txn_count")
            if o % 9 == 0:
                # Real race 2's reader side.
                yield th.read("mode_flag", site="jbb.mode_poll")
            if o % 8 == 0:
                yield th.acquire("report_lock")
                yield th.read("report_total", site="jbb.report_acc_rd")
                yield th.write("report_total", site="jbb.report_acc")
                yield th.release("report_lock")

    return Program(main, name="jbb")


register(
    Workload(
        name="jbb",
        description="JBB business objects: warehouse locks + two real races",
        build=_jbb_program,
        default_scale=1400,
        compute_bound=False,
        paper=PaperRow(
            size_loc=30491,
            threads=5,
            base_time_sec=72.9,
            slowdowns={
                "Empty": 1.3,
                "Eraser": 1.5,
                "MultiRace": 1.6,
                "Goldilocks": 2.1,
                "BasicVC": 1.6,
                "DJIT+": 1.6,
                "FastTrack": 1.4,
            },
            warnings={
                "Eraser": 3,
                "MultiRace": 1,
                "Goldilocks": None,
                "BasicVC": 2,
                "DJIT+": 2,
                "FastTrack": 2,
            },
        ),
    )
)
