"""ATOMIZER: a dynamic atomicity checker based on Lipton reduction [16].

A block marked atomic (``enter``/``exit``) is serializable if its operations
match the reduction pattern

    (right-mover)*  (non-mover)?  (left-mover)*

where lock acquires are right-movers, lock releases are left-movers,
race-free accesses are both-movers, and potentially racy accesses are
non-movers.  Atomizer classifies accesses with Eraser's lockset algorithm
internally — which is why the paper notes it "already uses ERASER to
identify potential races internally" and cannot use an Eraser prefilter
meaningfully.

Per active transaction, a two-phase state machine tracks whether the
commit point has passed; a right-mover (or a second non-mover) after the
commit point is a reduction failure, reported as a potential atomicity
violation for the block's label.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.detector import Detector
from repro.detectors.eraser import Eraser
from repro.trace import events as ev

_PRE = 0  # still in the right-mover prefix
_POST = 1  # past the commit point (left-mover suffix)


class _TxnState:
    __slots__ = ("label", "phase", "depth", "used_non_mover", "movers")

    def __init__(self, label: Hashable) -> None:
        self.label = label
        self.phase = _PRE
        self.depth = 1
        self.used_non_mover = False
        # The reduction proof trail: (kind, target) mover classifications,
        # reported when a block fails to reduce.
        self.movers: list = []


class Atomizer(Detector):
    """Reports atomic blocks whose executions are not reducible."""

    name = "Atomizer"
    precise = False

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        # The embedded race classifier (accesses to variables Eraser has
        # warned about are treated as non-movers).
        self.eraser = Eraser()
        self.active: Dict[int, _TxnState] = {}
        self.violations: List[Tuple[Hashable, str]] = []
        self._violated_labels: set = set()

    def _violation(self, tid: int, reason: str) -> None:
        txn = self.active.get(tid)
        label = txn.label if txn else None
        if label in self._violated_labels:
            return
        self._violated_labels.add(label)
        self.violations.append((label, reason))

    # -- transaction boundaries ------------------------------------------------

    def on_enter(self, event: ev.Event) -> None:
        txn = self.active.get(event.tid)
        if txn is not None:
            txn.depth += 1  # nested atomic block: folded into the outer one
            return
        self.active[event.tid] = _TxnState(event.target)

    def on_exit(self, event: ev.Event) -> None:
        txn = self.active.get(event.tid)
        if txn is None:
            return
        txn.depth -= 1
        if txn.depth == 0:
            del self.active[event.tid]

    # -- movers -----------------------------------------------------------------

    def on_acquire(self, event: ev.Event) -> None:
        self.eraser.handle(event)
        txn = self.active.get(event.tid)
        if txn is not None and txn.phase == _POST:
            self._violation(
                event.tid,
                f"lock acquire of {event.target!r} after the commit point",
            )
            self.stats.rule("ATOMIZER VIOLATION")

    def on_release(self, event: ev.Event) -> None:
        self.eraser.handle(event)
        txn = self.active.get(event.tid)
        if txn is not None:
            txn.phase = _POST

    def _access(self, event: ev.Event) -> None:
        self.eraser.handle(event)
        txn = self.active.get(event.tid)
        if txn is None:
            return
        if not self.eraser.has_warned(event.target):
            txn.movers.append(("both", event.target))
            if len(txn.movers) > 4096:
                del txn.movers[:2048]
            return  # race-free: both-mover, fine in any phase
        txn.movers.append(("non", event.target))
        # Potentially racy: a non-mover.
        self.stats.rule("ATOMIZER NON-MOVER")
        if txn.phase == _POST or txn.used_non_mover:
            self._violation(
                event.tid,
                f"non-mover access to {event.target!r} after the commit point",
            )
            self.stats.rule("ATOMIZER VIOLATION")
        else:
            txn.used_non_mover = True

    def on_read(self, event: ev.Event) -> None:
        self._access(event)

    def on_write(self, event: ev.Event) -> None:
        self._access(event)

    # Remaining sync operations only feed the internal Eraser.

    def on_fork(self, event: ev.Event) -> None:
        self.eraser.handle(event)

    def on_join(self, event: ev.Event) -> None:
        self.eraser.handle(event)

    def on_volatile_read(self, event: ev.Event) -> None:
        self.eraser.handle(event)

    def on_volatile_write(self, event: ev.Event) -> None:
        self.eraser.handle(event)

    def on_barrier_release(self, event: ev.Event) -> None:
        self.eraser.handle(event)

    @property
    def violation_count(self) -> int:
        return len(self.violations)
