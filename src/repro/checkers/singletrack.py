"""SINGLETRACK: a dynamic determinism checker [32].

SingleTrack verifies that a parallel program's observable behaviour does not
depend on scheduling.  The essential check: conflicting accesses must be
ordered by the program's *deterministic* synchronization structure —
fork/join parallelism and barriers — rather than by mutual exclusion alone
(two critical sections on one lock exclude each other, but their order is a
scheduler's choice, so a lock-mediated conflict is a determinism violation
even though it is not a race).

The implementation therefore runs a full vector-clock analysis in which
only fork, join, and barrier events create cross-thread edges; acquires,
releases, and volatiles advance clocks but transfer no ordering.  Every
access pays one or two O(n) comparisons against per-variable read/write
vector clocks — there are no epoch fast paths, which is why SingleTrack is
the most expensive checker in the Section 5.2 table (104x unfiltered in the
paper) and gains the most (8x) from a FastTrack prefilter.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.core.state import ThreadState
from repro.core.vectorclock import VectorClock
from repro.detectors.base import Detector
from repro.trace import events as ev


class _STVarState:
    """Per-variable determinism state.

    Beyond the read/write vector clocks, SingleTrack maintains the
    variable's *task region* — the join of every accessing task's clock —
    and the set of accessor tids; both feed its nondeterminism reports and
    are updated on every access, which is what makes the checker so much
    more expensive than a plain race detector (104x unfiltered in the
    paper, the heaviest of the three).
    """

    __slots__ = (
        "read_vc",
        "write_vc",
        "region",
        "accessors",
        "access_count",
        "log",
    )

    LOG_LIMIT = 2048

    def __init__(self) -> None:
        self.read_vc = VectorClock.bottom()
        self.write_vc = VectorClock.bottom()
        self.region = VectorClock.bottom()
        self.accessors = set()
        self.access_count = 0
        # Evidence log of (tid, clock, is_write) for violation reports.
        self.log: list = []

    def record(self, tid: int, clock: int, is_write: bool) -> None:
        log = self.log
        log.append((tid, clock, is_write))
        if len(log) > self.LOG_LIMIT:
            del log[: self.LOG_LIMIT // 2]


class SingleTrack(Detector):
    """Reports scheduler-dependent (nondeterministic) conflicting accesses."""

    name = "SingleTrack"
    precise = False  # with respect to *races*; it checks a different property

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.threads: Dict[int, ThreadState] = {}
        self.vars: Dict[Hashable, _STVarState] = {}
        self.violations: List[Tuple[Hashable, str]] = []
        self._violated: set = set()

    def thread(self, tid: int) -> ThreadState:
        state = self.threads.get(tid)
        if state is None:
            state = ThreadState(tid)
            self.stats.vc_allocs += 1
            self.threads[tid] = state
        return state

    def var(self, name: Hashable) -> _STVarState:
        key = self.shadow_key(name)
        state = self.vars.get(key)
        if state is None:
            state = _STVarState()
            self.stats.vc_allocs += 2
            self.vars[key] = state
        return state

    def _violation(self, event: ev.Event, reason: str) -> None:
        key = self.shadow_key(event.target)
        if key in self._violated:
            return
        self._violated.add(key)
        self.violations.append((event.target, reason))

    # -- deterministic synchronization: fork/join/barrier only ---------------------

    def on_fork(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        u = self.thread(event.target)
        u.vc.join(t.vc)
        self.stats.vc_ops += 1
        t.vc.inc(t.tid)

    def on_join(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        u = self.thread(event.target)
        t.vc.join(u.vc)
        self.stats.vc_ops += 1
        u.vc.inc(u.tid)

    def on_barrier_release(self, event: ev.Event) -> None:
        joined = None
        for tid in event.target:
            u = self.thread(tid)
            if joined is None:
                joined = u.vc.copy()
                self.stats.vc_allocs += 1
            else:
                joined.join(u.vc)
            self.stats.vc_ops += 1
        if joined is None:
            return
        for tid in event.target:
            u = self.thread(tid)
            u.vc.assign(joined)
            u.vc.inc(tid)
            self.stats.vc_ops += 1

    # Locks advance the local clock (new epoch) but order nothing.

    def on_acquire(self, event: ev.Event) -> None:
        self.thread(event.tid)

    def on_release(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        t.vc.inc(t.tid)

    # -- accesses: full VC comparisons, no fast paths ----------------------------------

    def _touch(self, x: _STVarState, t: ThreadState) -> None:
        """Region maintenance common to reads and writes: join the task's
        clock into the variable's region and record the accessor."""
        x.region.join(t.vc)
        self.stats.vc_ops += 1
        x.accessors.add(t.tid)
        x.access_count += 1
        x.record(t.tid, t.vc.get(t.tid), True)

    def on_read(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        x = self.var(event.target)
        self.stats.vc_ops += 2
        if not x.write_vc.leq(t.vc):
            self._violation(
                event, "read races with a write under nondeterministic order"
            )
        x.read_vc.set(t.tid, t.vc.get(t.tid))
        self._touch(x, t)

    def on_write(self, event: ev.Event) -> None:
        t = self.thread(event.tid)
        x = self.var(event.target)
        self.stats.vc_ops += 3
        if not x.write_vc.leq(t.vc):
            self._violation(
                event, "write races with a write under nondeterministic order"
            )
        if not x.read_vc.leq(t.vc):
            self._violation(
                event, "write races with a read under nondeterministic order"
            )
        elif len(x.accessors) > 1 and not x.region.leq(t.vc):
            # The write's visibility relative to other accessors of the
            # region is the scheduler's choice.
            self._violation(
                event, "write into a schedule-dependent region"
            )
        x.write_vc.set(t.tid, t.vc.get(t.tid))
        self._touch(x, t)

    @property
    def violation_count(self) -> int:
        return len(self.violations)
