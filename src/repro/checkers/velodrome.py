"""VELODROME: a sound and complete dynamic atomicity checker [17].

Velodrome builds the *transactional happens-before graph*: nodes are
transactions (``enter``/``exit`` blocks, with runs of non-transactional
operations per thread folded into unary nodes — program-order edges make
this folding sound), and edges are happens-before constraints created by

* program order between a thread's consecutive transactions,
* conflicting data accesses (last writer → next accessor, readers → next
  writer),
* lock release → subsequent acquire, volatile write → subsequent access,
* fork/join/barrier.

An execution is serializable iff this graph is acyclic; a cycle through a
transaction is reported as an atomicity violation.  Cycle detection is the
incremental check "does the edge's target already reach its source?",
answered by depth-first search — the expensive part that makes Velodrome
profit so much (5x in the paper) from a FastTrack prefilter discarding
race-free accesses before they create edges.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.detector import Detector
from repro.core.state import ThreadState
from repro.core.vectorclock import VectorClock
from repro.trace import events as ev


class _Node:
    """A transaction in the happens-before graph.

    ``reads``/``writes`` record the node's footprint — Velodrome needs
    these both for error reporting (which accesses closed the cycle) and
    for its garbage collection of completed transactions; maintaining them
    on every access is a large part of why the checker is an order of
    magnitude more expensive than a race detector.
    """

    __slots__ = (
        "nid",
        "tid",
        "label",
        "succs",
        "active",
        "reads",
        "writes",
        "log",
    )

    #: Cap on the per-node access log; beyond it, the older half is dropped
    #: (completed-transaction GC in the original).
    LOG_LIMIT = 4096

    def __init__(self, nid: int, tid: int, label: Optional[Hashable]) -> None:
        self.nid = nid
        self.tid = tid
        self.label = label  # None for unary (non-transactional) nodes
        self.succs: Set["_Node"] = set()
        self.active = True
        self.reads: Set[Hashable] = set()
        self.writes: Set[Hashable] = set()
        # Per-access evidence records (variable, is_write, index) used to
        # reconstruct the two schedules when a cycle is reported.
        self.log: list = []

    def record(self, var: Hashable, is_write: bool, index: int) -> None:
        log = self.log
        log.append((var, is_write, index))
        if len(log) > self.LOG_LIMIT:
            del log[: self.LOG_LIMIT // 2]


class Velodrome(Detector):
    """Cycle detection over the transactional happens-before graph."""

    name = "Velodrome"
    precise = True  # sound and complete for atomicity over the observed trace

    def __init__(self, prune_with_clocks: bool = True, **kwargs) -> None:
        super().__init__(**kwargs)
        #: Skip conflict edges already implied by synchronization (every
        #: sync edge is also a graph edge, so such edges never change
        #: reachability).  Disable to validate the optimization.
        self.prune_with_clocks = prune_with_clocks
        self._next_nid = 0
        self.current: Dict[int, _Node] = {}  # per-thread current node
        self.txn_depth: Dict[int, int] = {}
        self.last_writer: Dict[Hashable, _Node] = {}
        self.last_readers: Dict[Hashable, Dict[int, _Node]] = {}
        self.last_release: Dict[Hashable, _Node] = {}
        # Volatile writes are mutually unordered, so a read needs an edge
        # from every prior writer; per thread, program order makes all but
        # the latest write redundant, keeping this bounded.
        self.last_vol_writers: Dict[Hashable, Dict[int, _Node]] = {}
        self.violations: List[Tuple[Hashable, str]] = []
        self._violated_labels: set = set()
        self.node_count = 0
        # Vector-clock state used to prune redundant conflict edges: if the
        # prior access is already sync-ordered before the current one, the
        # graph necessarily contains a path between their nodes (every sync
        # edge is also a graph edge), so the conflict edge is skipped.  This
        # is Velodrome's edge-pruning optimization, and its per-access VC
        # comparisons are the bulk of the checker's cost.
        self.threads: Dict[int, ThreadState] = {}
        self.sync_vcs: Dict[Hashable, VectorClock] = {}
        self.var_write_vc: Dict[Hashable, VectorClock] = {}
        self.var_read_vc: Dict[Hashable, VectorClock] = {}

    # -- vector-clock plumbing ------------------------------------------------------

    def _thread(self, tid: int) -> ThreadState:
        state = self.threads.get(tid)
        if state is None:
            state = ThreadState(tid)
            self.stats.vc_allocs += 1
            self.threads[tid] = state
        return state

    def _sync_vc(self, name: Hashable) -> VectorClock:
        vc = self.sync_vcs.get(name)
        if vc is None:
            vc = VectorClock.bottom()
            self.stats.vc_allocs += 1
            self.sync_vcs[name] = vc
        return vc

    # -- graph plumbing -----------------------------------------------------------

    def _new_node(self, tid: int, label: Optional[Hashable]) -> _Node:
        node = _Node(self._next_nid, tid, label)
        self._next_nid += 1
        self.node_count += 1
        previous = self.current.get(tid)
        if previous is not None:
            previous.active = False
            previous.succs.add(node)  # program order
        self.current[tid] = node
        return node

    def _node_for(self, tid: int) -> _Node:
        """The node the thread's next operation belongs to (opens a unary
        node if the thread is outside any transaction)."""
        node = self.current.get(tid)
        if node is None or not node.active:
            node = self._new_node(tid, None)
        return node

    def _path(self, source: _Node, target: _Node):
        """DFS path ``source ->* target`` — the expensive inner loop.
        Returns the node list, or None when unreachable."""
        if source is target:
            return [source]
        parents = {source.nid: None}
        nodes = {source.nid: source}
        stack = [source]
        while stack:
            node = stack.pop()
            for succ in node.succs:
                if succ.nid not in parents:
                    parents[succ.nid] = node.nid
                    nodes[succ.nid] = succ
                    if succ is target:
                        path = [succ]
                        cursor = node.nid
                        while cursor is not None:
                            path.append(nodes[cursor])
                            cursor = parents[cursor]
                        path.reverse()
                        return path
                    stack.append(succ)
        return None

    def _edge(self, source: _Node, target: _Node) -> None:
        if source is target or target in source.succs:
            return
        self.stats.rule("VELODROME EDGE")
        cycle = self._path(target, source)
        if cycle is not None:
            # target ->* source plus source -> target closes a cycle: every
            # transaction on the path participates in the violation.
            labels = {
                node.label for node in cycle if node.label is not None
            } or {None}
            for label in sorted(labels, key=str):
                if label not in self._violated_labels:
                    self._violated_labels.add(label)
                    self.violations.append(
                        (
                            label,
                            "cycle between threads "
                            f"{source.tid},{target.tid}",
                        )
                    )
            self.stats.rule("VELODROME CYCLE")
            return  # do not materialize the cycle; keep the graph a DAG
        source.succs.add(target)

    # -- transaction boundaries ------------------------------------------------------

    def on_enter(self, event: ev.Event) -> None:
        depth = self.txn_depth.get(event.tid, 0)
        self.txn_depth[event.tid] = depth + 1
        if depth == 0:
            self._new_node(event.tid, event.target)

    def on_exit(self, event: ev.Event) -> None:
        depth = self.txn_depth.get(event.tid, 0)
        if depth <= 0:
            return
        self.txn_depth[event.tid] = depth - 1
        if depth == 1:
            node = self.current.get(event.tid)
            if node is not None:
                node.active = False

    # -- conflict and synchronization edges ---------------------------------------------

    def on_read(self, event: ev.Event) -> None:
        t = self._thread(event.tid)
        node = self._node_for(event.tid)
        var = event.target
        node.reads.add(var)
        node.record(var, False, self._index)
        writer = self.last_writer.get(var)
        if writer is not None and writer is not node:
            write_vc = self.var_write_vc.get(var)
            self.stats.vc_ops += 1
            if (
                not self.prune_with_clocks
                or write_vc is None
                or not write_vc.leq(t.vc)
            ):
                # Not implied by synchronization: a real conflict edge.
                self._edge(writer, node)
        read_vc = self.var_read_vc.get(var)
        if read_vc is None:
            read_vc = VectorClock.bottom()
            self.stats.vc_allocs += 1
            self.var_read_vc[var] = read_vc
        read_vc.set(t.tid, t.vc.get(t.tid))
        readers = self.last_readers.get(var)
        if readers is None:
            readers = {}
            self.last_readers[var] = readers
        readers[event.tid] = node

    def on_write(self, event: ev.Event) -> None:
        t = self._thread(event.tid)
        node = self._node_for(event.tid)
        var = event.target
        node.writes.add(var)
        node.record(var, True, self._index)
        writer = self.last_writer.get(var)
        write_vc = self.var_write_vc.get(var)
        if writer is not None and writer is not node:
            self.stats.vc_ops += 1
            if (
                not self.prune_with_clocks
                or write_vc is None
                or not write_vc.leq(t.vc)
            ):
                self._edge(writer, node)
        readers = self.last_readers.get(var)
        if readers:
            read_vc = self.var_read_vc.get(var)
            self.stats.vc_ops += 1
            if (
                not self.prune_with_clocks
                or read_vc is None
                or not read_vc.leq(t.vc)
            ):
                for reader in readers.values():
                    if reader is not node:
                        self._edge(reader, node)
            readers.clear()
        if write_vc is None:
            write_vc = VectorClock.bottom()
            self.stats.vc_allocs += 1
            self.var_write_vc[var] = write_vc
        write_vc.set(t.tid, t.vc.get(t.tid))
        self.last_writer[var] = node

    def on_acquire(self, event: ev.Event) -> None:
        t = self._thread(event.tid)
        t.vc.join(self._sync_vc(event.target))
        self.stats.vc_ops += 1
        node = self._node_for(event.tid)
        releaser = self.last_release.get(event.target)
        if releaser is not None and releaser is not node:
            self._edge(releaser, node)

    def on_release(self, event: ev.Event) -> None:
        t = self._thread(event.tid)
        self._sync_vc(event.target).assign(t.vc)
        self.stats.vc_ops += 1
        t.vc.inc(event.tid)
        self.last_release[event.target] = self._node_for(event.tid)

    def on_fork(self, event: ev.Event) -> None:
        # The child's first node must come after the parent's current node.
        t = self._thread(event.tid)
        u = self._thread(event.target)
        u.vc.join(t.vc)
        self.stats.vc_ops += 1
        t.vc.inc(event.tid)
        parent = self._node_for(event.tid)
        child = self._new_node(event.target, None)
        self._edge(parent, child)

    def on_join(self, event: ev.Event) -> None:
        t = self._thread(event.tid)
        u = self._thread(event.target)
        t.vc.join(u.vc)
        self.stats.vc_ops += 1
        u.vc.inc(event.target)
        node = self._node_for(event.tid)
        child = self.current.get(event.target)
        if child is not None and child is not node:
            self._edge(child, node)

    def on_volatile_read(self, event: ev.Event) -> None:
        t = self._thread(event.tid)
        t.vc.join(self._sync_vc(("volatile", event.target)))
        self.stats.vc_ops += 1
        node = self._node_for(event.tid)
        for writer in self.last_vol_writers.get(event.target, {}).values():
            if writer is not node:
                self._edge(writer, node)

    def on_volatile_write(self, event: ev.Event) -> None:
        t = self._thread(event.tid)
        vc = self._sync_vc(("volatile", event.target))
        vc.join(t.vc)
        self.stats.vc_ops += 1
        t.vc.inc(event.tid)
        self.last_vol_writers.setdefault(event.target, {})[
            event.tid
        ] = self._node_for(event.tid)

    def on_barrier_release(self, event: ev.Event) -> None:
        joined = None
        for tid in event.target:
            u = self._thread(tid)
            if joined is None:
                joined = u.vc.copy()
                self.stats.vc_allocs += 1
            else:
                joined.join(u.vc)
            self.stats.vc_ops += 1
        members = [self._node_for(tid) for tid in event.target]
        fresh = {tid: self._new_node(tid, None) for tid in event.target}
        for tid in event.target:
            u = self._thread(tid)
            u.vc.assign(joined)
            u.vc.inc(tid)
        for before in members:
            for after in fresh.values():
                if before is not after:
                    self._edge(before, after)

    @property
    def violation_count(self) -> int:
        return len(self.violations)
