"""Heavyweight downstream analyses for the Section 5.2 composition study.

The paper shows that FastTrack, used as a prefilter, speeds up more complex
dynamic analyses by discarding race-free memory accesses before they reach
the expensive checker: 5x for the VELODROME atomicity checker and 8x for
the SINGLETRACK determinism checker, with ATOMIZER also improving.

These are working reimplementations at the level of detail the composition
experiment needs: they consume the same event stream (using ``enter``/
``exit`` transaction boundaries), their per-event cost is dominated by
genuinely expensive structures (a transactional happens-before graph for
Velodrome, per-access vector clocks for SingleTrack, lockset + reduction
state machines for Atomizer), and they produce meaningful warnings.
"""

from repro.checkers.atomizer import Atomizer
from repro.checkers.velodrome import Velodrome
from repro.checkers.singletrack import SingleTrack

__all__ = ["Atomizer", "Velodrome", "SingleTrack"]
