"""Live instrumentation of real Python threads.

The GIL serializes Python bytecode, so true data races on Python objects
rarely corrupt memory — but the *happens-before* structure of a
``threading`` program is exactly the same as its Java counterpart's, and
unsynchronized accesses are still bugs (lost updates across the GIL's
preemption points, or real races once the code moves to a free-threaded
build).  This module captures an event stream from live threads through
explicit instrumented primitives, the closest Python equivalent of
RoadRunner's bytecode instrumentation (per the reproduction note:
"sys.settrace or synthetic traces only" — explicit wrappers are the
reliable subset of that).

Usage::

    monitor = ThreadMonitor()
    counter = SharedVar(monitor, "counter", 0)
    lock = MonitoredLock(monitor, "m")

    def worker():
        with lock:
            counter.value += 1

    t = monitor.spawn(worker)
    monitor.join(t)
    warnings = monitor.check(FastTrack())

Events are recorded in a single list guarded by an internal lock; the order
recorded is a legal linearization of the execution, so the resulting trace
is feasible and the detectors' verdicts apply to the actual run.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, List, Optional

from repro.core.detector import Detector
from repro.trace import events as ev
from repro.trace.trace import Trace


class ThreadMonitor:
    """Assigns dense tids to live threads and records their events."""

    def __init__(self) -> None:
        self._events: List[ev.Event] = []
        self._guard = threading.Lock()
        self._tids: Dict[int, int] = {}
        self._next_tid = 0
        self._register(threading.current_thread())

    def _register(self, thread: threading.Thread) -> int:
        ident = thread.ident if thread.ident is not None else id(thread)
        with self._guard:
            if ident not in self._tids:
                self._tids[ident] = self._next_tid
                self._next_tid += 1
            return self._tids[ident]

    def _preregister(self, thread: threading.Thread) -> int:
        """Reserve a tid for a not-yet-started thread (keyed by object id
        until it runs)."""
        with self._guard:
            tid = self._next_tid
            self._next_tid += 1
            self._tids[id(thread)] = tid
            return tid

    def current_tid(self) -> int:
        thread = threading.current_thread()
        ident = thread.ident
        with self._guard:
            if ident in self._tids:
                return self._tids[ident]
        return self._register(thread)

    def record(self, event: ev.Event) -> None:
        with self._guard:
            self._events.append(event)

    # -- thread lifecycle -----------------------------------------------------

    def spawn(self, fn: Callable, *args, **kwargs) -> threading.Thread:
        """Start a monitored thread; emits ``fork(parent, child)``."""
        parent = self.current_tid()
        child_box = {}

        def body() -> None:
            ident = threading.current_thread().ident
            with self._guard:
                # Transfer the pre-registered tid to the real ident.
                self._tids[ident] = child_box["tid"]
            fn(*args, **kwargs)

        thread = threading.Thread(target=body)
        child_box["tid"] = self._preregister(thread)
        # OS thread identifiers are recycled once a thread exits, so the
        # stable mapping lives on the Thread object itself.
        thread._repro_tid = child_box["tid"]  # type: ignore[attr-defined]
        self.record(ev.fork(parent, child_box["tid"]))
        thread.start()
        return thread

    def join(self, thread: threading.Thread) -> None:
        """Join a monitored thread; emits ``join(parent, child)``."""
        thread.join()
        child = getattr(thread, "_repro_tid", None)
        if child is None:
            with self._guard:
                child = self._tids.get(
                    thread.ident, self._tids.get(id(thread))
                )
        self.record(ev.join(self.current_tid(), child))

    # -- results ------------------------------------------------------------------

    def trace(self) -> Trace:
        with self._guard:
            return Trace(list(self._events))

    def check(self, detector: Detector) -> Detector:
        """Run a detector over everything recorded so far."""
        return detector.process(self.trace())


class SharedVar:
    """An instrumented memory location: emits rd/wr on every access."""

    def __init__(
        self, monitor: ThreadMonitor, name: Hashable, initial=None
    ) -> None:
        self._monitor = monitor
        self._name = name
        self._value = initial

    @property
    def value(self):
        monitor = self._monitor
        monitor.record(ev.rd(monitor.current_tid(), self._name))
        return self._value

    @value.setter
    def value(self, new_value) -> None:
        monitor = self._monitor
        monitor.record(ev.wr(monitor.current_tid(), self._name))
        self._value = new_value


class VolatileVar:
    """An instrumented Java-``volatile``-like location (Section 4).

    Writes publish; reads acquire.  The backing store is a plain attribute
    — on CPython the GIL makes the assignment itself atomic, which is
    exactly the visibility a volatile provides.
    """

    def __init__(
        self, monitor: ThreadMonitor, name: Hashable, initial=None
    ) -> None:
        self._monitor = monitor
        self._name = name
        self._value = initial

    @property
    def value(self):
        monitor = self._monitor
        monitor.record(ev.vol_rd(monitor.current_tid(), self._name))
        return self._value

    @value.setter
    def value(self, new_value) -> None:
        monitor = self._monitor
        monitor.record(ev.vol_wr(monitor.current_tid(), self._name))
        self._value = new_value


class MonitoredLock:
    """A ``threading.Lock`` that emits acq/rel events.

    The acquire event is recorded *after* the lock is granted and the
    release event *before* the lock is freed, so the recorded order is a
    correct linearization.
    """

    def __init__(self, monitor: ThreadMonitor, name: Hashable) -> None:
        self._monitor = monitor
        self._name = name
        self._lock = threading.Lock()

    def acquire(self) -> None:
        self._lock.acquire()
        self._monitor.record(
            ev.acq(self._monitor.current_tid(), self._name)
        )

    def release(self) -> None:
        self._monitor.record(
            ev.rel(self._monitor.current_tid(), self._name)
        )
        self._lock.release()

    def __enter__(self) -> "MonitoredLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class MonitoredCondition:
    """A condition variable over a monitored lock.

    ``wait`` emits the underlying release and re-acquisition (Section 4's
    modeling); ``notify_all`` emits nothing, as in the paper ("a notify
    operation ... does not induce any happens-before edges").
    """

    def __init__(self, monitor: ThreadMonitor, name: Hashable) -> None:
        self._monitor = monitor
        self._name = name
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)

    def acquire(self) -> None:
        self._lock.acquire()
        self._monitor.record(ev.acq(self._monitor.current_tid(), self._name))

    def release(self) -> None:
        self._monitor.record(ev.rel(self._monitor.current_tid(), self._name))
        self._lock.release()

    def wait(self, timeout: float = None) -> None:
        tid = self._monitor.current_tid()
        self._monitor.record(ev.rel(tid, self._name))
        self._condition.wait(timeout)
        self._monitor.record(ev.acq(tid, self._name))

    def notify_all(self) -> None:
        self._condition.notify_all()

    def __enter__(self) -> "MonitoredCondition":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class MonitoredBarrier:
    """A ``threading.Barrier`` emitting one ``barrier_rel(T)`` per trip.

    The last arriving thread records the release event (inside the barrier
    action callback, so it is ordered before any party resumes), carrying
    the tids of all parties of that generation.
    """

    def __init__(
        self, monitor: ThreadMonitor, parties: int, name: Hashable = None
    ) -> None:
        self._monitor = monitor
        self._name = name
        self._guard = threading.Lock()
        self._generation: list = []

        def on_trip() -> None:
            with self._guard:
                members = tuple(self._generation)
                self._generation.clear()
            monitor.record(ev.barrier_rel(members))

        self._barrier = threading.Barrier(parties, action=on_trip)

    def wait(self) -> None:
        tid = self._monitor.current_tid()
        with self._guard:
            self._generation.append(tid)
        self._barrier.wait()
