"""Automatic instrumentation of Python objects and containers.

The repro note for this paper ("sys.settrace or synthetic traces only")
points at the practical way to monitor real Python code: intercept accesses
at well-defined boundaries.  :class:`~repro.runtime.monitor.SharedVar`
instruments one location explicitly; this module instruments *whole
objects* the way RoadRunner instruments every field and array element:

* :func:`monitored_object` — a transparent attribute proxy: every
  ``obj.field`` read/write emits ``rd/wr(t, (name, field))``;
* :class:`MonitoredList` / :class:`MonitoredDict` — per-element events for
  container accesses (``(name, index)`` / ``(name, key)``);

and every emitted event carries the **real source site** (``file.py:line``
of the accessing statement, captured from the call stack), so FastTrack's
two-sided reports point at actual code.

Scope and honesty: this is boundary instrumentation, not bytecode
rewriting — accesses to *unwrapped* objects are invisible, and local
variables are never shared state anyway.  That is the same contract as the
paper's RoadRunner configuration, which also instruments only the chosen
classes ("All classes loaded by the benchmark programs were instrumented,
except those from the standard Java libraries").
"""

from __future__ import annotations

import os
import sys
from typing import Any, Hashable, Iterable, Optional

from repro.runtime.monitor import ThreadMonitor
from repro.trace import events as ev


def _caller_site(depth: int = 2) -> str:
    """``file.py:line`` of the statement performing the access."""
    frame = sys._getframe(depth)
    return f"{os.path.basename(frame.f_code.co_filename)}:{frame.f_lineno}"


class MonitoredObject:
    """A transparent attribute proxy emitting rd/wr per field access.

    Create via :func:`monitored_object`.  All attributes of the wrapped
    target are readable/writable through the proxy; each access emits an
    event on location ``(name, attribute)`` with the caller's source site.
    """

    __slots__ = ("_mo_monitor", "_mo_name", "_mo_target")

    def __init__(
        self, monitor: ThreadMonitor, name: Hashable, target: Any
    ) -> None:
        object.__setattr__(self, "_mo_monitor", monitor)
        object.__setattr__(self, "_mo_name", name)
        object.__setattr__(self, "_mo_target", target)

    def __getattr__(self, attribute: str) -> Any:
        monitor = object.__getattribute__(self, "_mo_monitor")
        name = object.__getattribute__(self, "_mo_name")
        target = object.__getattribute__(self, "_mo_target")
        monitor.record(
            ev.rd(
                monitor.current_tid(),
                (name, attribute),
                site=_caller_site(),
            )
        )
        return getattr(target, attribute)

    def __setattr__(self, attribute: str, value: Any) -> None:
        monitor = object.__getattribute__(self, "_mo_monitor")
        name = object.__getattribute__(self, "_mo_name")
        target = object.__getattribute__(self, "_mo_target")
        monitor.record(
            ev.wr(
                monitor.current_tid(),
                (name, attribute),
                site=_caller_site(),
            )
        )
        setattr(target, attribute, value)

    def __repr__(self) -> str:
        target = object.__getattribute__(self, "_mo_target")
        name = object.__getattribute__(self, "_mo_name")
        return f"MonitoredObject({name!r}, {target!r})"


def monitored_object(
    monitor: ThreadMonitor, name: Hashable, target: Any
) -> MonitoredObject:
    """Wrap ``target`` so every attribute access is monitored."""
    return MonitoredObject(monitor, name, target)


class MonitoredList:
    """A list whose element accesses emit per-index rd/wr events.

    Slicing reads every covered index (like the element loop it replaces);
    structural mutations (``append``, ``pop``) write the touched index and
    the list's length field ``(name, "__len__")``, since those operations
    conflict with each other through the size.
    """

    def __init__(
        self,
        monitor: ThreadMonitor,
        name: Hashable,
        initial: Optional[Iterable] = None,
    ) -> None:
        self._monitor = monitor
        self._name = name
        self._items = list(initial or ())

    # -- helpers ---------------------------------------------------------------

    def _rd(self, key: Hashable, depth: int = 3) -> None:
        self._monitor.record(
            ev.rd(
                self._monitor.current_tid(),
                (self._name, key),
                site=_caller_site(depth),
            )
        )

    def _wr(self, key: Hashable, depth: int = 3) -> None:
        self._monitor.record(
            ev.wr(
                self._monitor.current_tid(),
                (self._name, key),
                site=_caller_site(depth),
            )
        )

    def _normalize(self, index: int) -> int:
        return index if index >= 0 else index + len(self._items)

    # -- element access -----------------------------------------------------------

    def __getitem__(self, index):
        if isinstance(index, slice):
            for position in range(*index.indices(len(self._items))):
                self._rd(position)
            return self._items[index]
        self._rd(self._normalize(index))
        return self._items[index]

    def __setitem__(self, index, value) -> None:
        if isinstance(index, slice):
            raise TypeError("monitored lists do not support slice assignment")
        self._wr(self._normalize(index))
        self._items[index] = value

    def append(self, value) -> None:
        self._wr("__len__")
        self._wr(len(self._items), depth=3)
        self._items.append(value)

    def pop(self, index: int = -1):
        position = self._normalize(index)
        self._wr("__len__")
        self._rd(position, depth=3)
        return self._items.pop(index)

    def __len__(self) -> int:
        self._rd("__len__")
        return len(self._items)

    def __iter__(self):
        for position in range(len(self._items)):
            self._rd(position)
            yield self._items[position]

    def __repr__(self) -> str:
        return f"MonitoredList({self._name!r}, {self._items!r})"


class MonitoredDict:
    """A dict whose per-key accesses emit rd/wr events."""

    def __init__(
        self,
        monitor: ThreadMonitor,
        name: Hashable,
        initial: Optional[dict] = None,
    ) -> None:
        self._monitor = monitor
        self._name = name
        self._items = dict(initial or {})

    def _rd(self, key: Hashable) -> None:
        self._monitor.record(
            ev.rd(
                self._monitor.current_tid(),
                (self._name, key),
                site=_caller_site(3),
            )
        )

    def _wr(self, key: Hashable) -> None:
        self._monitor.record(
            ev.wr(
                self._monitor.current_tid(),
                (self._name, key),
                site=_caller_site(3),
            )
        )

    def __getitem__(self, key):
        self._rd(key)
        return self._items[key]

    def get(self, key, default=None):
        self._rd(key)
        return self._items.get(key, default)

    def __setitem__(self, key, value) -> None:
        self._wr(key)
        self._items[key] = value

    def __delitem__(self, key) -> None:
        self._wr(key)
        del self._items[key]

    def __contains__(self, key) -> bool:
        self._rd(key)
        return key in self._items

    def __len__(self) -> int:
        return len(self._items)

    def keys(self):
        return self._items.keys()

    def __repr__(self) -> str:
        return f"MonitoredDict({self._name!r}, {self._items!r})"
