"""Actions yielded by model-program threads to the scheduler.

A model thread is a generator; each ``yield`` hands the scheduler one of
these action records, the scheduler applies its semantics (possibly blocking
the thread), emits the corresponding trace event(s), and resumes the
generator with the action's result (e.g. the child tid of a fork).

Plain slotted records, constructed through :class:`~repro.runtime.program.
ThreadHandle` helpers so program code reads naturally::

    def worker(th):
        yield th.acquire("m")
        yield th.write(("obj", "count"))
        yield th.release("m")
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Tuple


class Action:
    __slots__ = ()


class ReadAction(Action):
    __slots__ = ("var", "site")

    def __init__(self, var: Hashable, site: Optional[Hashable] = None) -> None:
        self.var = var
        self.site = site


class WriteAction(Action):
    __slots__ = ("var", "site")

    def __init__(self, var: Hashable, site: Optional[Hashable] = None) -> None:
        self.var = var
        self.site = site


class AcquireAction(Action):
    __slots__ = ("lock",)

    def __init__(self, lock: Hashable) -> None:
        self.lock = lock


class ReleaseAction(Action):
    __slots__ = ("lock",)

    def __init__(self, lock: Hashable) -> None:
        self.lock = lock


class ForkAction(Action):
    """Start a new thread running ``body(handle, *args)``; the fork yields
    the child's tid back to the parent."""

    __slots__ = ("body", "args")

    def __init__(self, body: Callable, args: Tuple = ()) -> None:
        self.body = body
        self.args = args


class JoinAction(Action):
    __slots__ = ("tid",)

    def __init__(self, tid: int) -> None:
        self.tid = tid


class WaitAction(Action):
    """``m.wait()``: release ``lock``, sleep until notified, re-acquire.
    Modelled, as in Section 4, by the underlying release + acquisition —
    the scheduler emits exactly those two events."""

    __slots__ = ("lock",)

    def __init__(self, lock: Hashable) -> None:
        self.lock = lock


class NotifyAction(Action):
    """``m.notifyAll()``: wakes waiters.  Emits no event — "a notify
    operation can be ignored ... it affects scheduling of threads but does
    not induce any happens-before edges" (Section 4)."""

    __slots__ = ("lock",)

    def __init__(self, lock: Hashable) -> None:
        self.lock = lock


class VolatileReadAction(Action):
    __slots__ = ("var",)

    def __init__(self, var: Hashable) -> None:
        self.var = var


class VolatileWriteAction(Action):
    __slots__ = ("var",)

    def __init__(self, var: Hashable) -> None:
        self.var = var


class BarrierAwaitAction(Action):
    """Block until every party of the barrier has arrived; the scheduler
    then emits one ``barrier_rel(T)`` event and releases all parties."""

    __slots__ = ("barrier",)

    def __init__(self, barrier) -> None:
        self.barrier = barrier


class EnterAction(Action):
    """Transaction/method entry marker (for the Section 5.2 checkers)."""

    __slots__ = ("label",)

    def __init__(self, label: Hashable) -> None:
        self.label = label


class ExitAction(Action):
    __slots__ = ("label",)

    def __init__(self, label: Hashable) -> None:
        self.label = label


class YieldAction(Action):
    """A pure scheduling point: no event, just let another thread run."""

    __slots__ = ()
