"""Exhaustive schedule exploration for small model programs.

The paper's opening motivation: race conditions "typically cause problems
only on certain rare interleavings, making them extremely difficult to
detect, reproduce, and eliminate" — and a dynamic detector's verdict is a
function of the *observed* trace, so a race whose accesses only conflict
under some schedules is only reported under those schedules.

This module enumerates **every** schedule of a (small) model program by
driving the scheduler with an explicit decision script and backtracking
over the last undecided choice, like a tiny stateless model checker.
Because generators cannot be forked, each schedule re-executes the program
from scratch — callers therefore pass a *factory* (fresh ``Program``, fresh
barriers, fresh closure state per run).

::

    outcomes = explore(build_program, max_schedules=10_000)
    summary = race_coverage(build_program, detector_factory=FastTrack)
    print(summary.racy_schedules, "of", summary.total_schedules)

Deadlocking schedules are reported as outcomes too (``trace is None``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Set

from repro.core.fasttrack import FastTrack
from repro.runtime.program import Program
from repro.runtime.scheduler import DeadlockError, Scheduler, _SimThread
from repro.trace.trace import Trace


class _ScriptedScheduler(Scheduler):
    """Follows a decision script; records the branching degree of every
    step so the explorer can enumerate siblings."""

    def __init__(self, program: Program, script: List[int], **kwargs) -> None:
        super().__init__(program, **kwargs)
        self.script = script
        self.degrees: List[int] = []
        self._cursor = 0

    def _pick(self, runnable: List[_SimThread]) -> _SimThread:
        runnable.sort(key=lambda thread: thread.tid)
        self.degrees.append(len(runnable))
        if self._cursor < len(self.script):
            choice = self.script[self._cursor]
        else:
            choice = 0
            self.script.append(0)
        self._cursor += 1
        return runnable[choice]


@dataclass
class ScheduleOutcome:
    """One explored schedule: its decisions and its trace (None = deadlock)."""

    schedule: List[int]
    trace: Optional[Trace]
    deadlock: bool = False


def explore(
    program_factory: Callable[[], Program],
    max_schedules: Optional[int] = 100_000,
    max_steps: int = 100_000,
    dedupe: bool = True,
) -> Iterator[ScheduleOutcome]:
    """Enumerate every schedule of the program, depth-first.

    Some scheduler decisions are invisible in the trace (e.g. the order in
    which finished threads are reaped), so distinct decision sequences can
    produce identical traces; with ``dedupe=True`` (the default) only the
    first schedule per distinct trace is yielded.

    Raises :class:`RuntimeError` when ``max_schedules`` is exceeded — an
    explicit signal that the program is too large to explore exhaustively,
    rather than a silently truncated result.
    """
    script: List[int] = []
    produced = 0
    seen: Set[tuple] = set()
    while True:
        scheduler = _ScriptedScheduler(
            program_factory(), list(script), max_steps=max_steps
        )
        deadlock = False
        trace: Optional[Trace] = None
        try:
            trace = scheduler.run()
        except DeadlockError:
            deadlock = True
        produced += 1
        if max_schedules is not None and produced > max_schedules:
            raise RuntimeError(
                f"more than {max_schedules} schedules; "
                "the program is too large for exhaustive exploration"
            )
        fingerprint = (
            ("deadlock", tuple(scheduler.events))
            if deadlock
            else (None, tuple(trace.events))
        )
        if not dedupe or fingerprint not in seen:
            seen.add(fingerprint)
            yield ScheduleOutcome(
                schedule=list(scheduler.script),
                trace=trace,
                deadlock=deadlock,
            )
        # Advance the decision odometer: bump the last choice that still
        # has an unexplored sibling, truncating everything after it.
        script = list(scheduler.script)
        degrees = scheduler.degrees
        position = len(degrees) - 1
        while position >= 0:
            if script[position] + 1 < degrees[position]:
                script = script[: position + 1]
                script[position] += 1
                break
            position -= 1
        else:
            return


@dataclass
class RaceCoverage:
    """Aggregate verdicts over all schedules of a program."""

    total_schedules: int = 0
    racy_schedules: int = 0
    clean_schedules: int = 0
    deadlocked_schedules: int = 0
    racy_variables: Set[Hashable] = field(default_factory=set)
    per_variable_schedules: Dict[Hashable, int] = field(default_factory=dict)

    @property
    def race_probability(self) -> float:
        """Fraction of (completed) schedules on which a race is observed —
        how "rare" the interleavings exhibiting the bug are."""
        completed = self.total_schedules - self.deadlocked_schedules
        return self.racy_schedules / completed if completed else 0.0


def race_coverage(
    program_factory: Callable[[], Program],
    detector_factory: Callable = FastTrack,
    max_schedules: Optional[int] = 100_000,
) -> RaceCoverage:
    """Run a detector over every schedule and summarize the verdicts."""
    summary = RaceCoverage()
    for outcome in explore(program_factory, max_schedules=max_schedules):
        summary.total_schedules += 1
        if outcome.deadlock:
            summary.deadlocked_schedules += 1
            continue
        detector = detector_factory()
        detector.process(outcome.trace)
        if detector.warning_count:
            summary.racy_schedules += 1
            for warning in detector.warnings:
                summary.racy_variables.add(warning.var)
                summary.per_variable_schedules[warning.var] = (
                    summary.per_variable_schedules.get(warning.var, 0) + 1
                )
        else:
            summary.clean_schedules += 1
    return summary
