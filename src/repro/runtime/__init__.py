"""The simulated multithreaded runtime — our RoadRunner analogue.

The paper's RoadRunner framework instruments Java bytecode at load time and
streams lock acquires/releases, field and array accesses, forks, joins, etc.
to a back-end tool.  Python's GIL (and the absence of load-time bytecode
instrumentation) rules out a faithful port, so this package substitutes a
*simulated* runtime with identical observable behaviour:

* model programs are written as Python generator functions that yield
  :mod:`actions <repro.runtime.actions>` (read, write, acquire, fork, ...);
* a seeded :class:`~repro.runtime.scheduler.Scheduler` interleaves the
  threads, enforcing real lock / join / wait / barrier blocking semantics,
  and emits exactly the event stream of Figure 1 (feasible by construction);
* :mod:`repro.runtime.filters` reproduces RoadRunner's tool-chaining
  (``-tool FastTrack:Velodrome``) for the Section 5.2 experiments;
* :mod:`repro.runtime.monitor` additionally instruments **real**
  ``threading`` programs through wrapper primitives, for demonstrations on
  genuinely concurrent executions.
"""

from repro.runtime.actions import (
    AcquireAction,
    BarrierAwaitAction,
    EnterAction,
    ExitAction,
    ForkAction,
    JoinAction,
    NotifyAction,
    ReadAction,
    ReleaseAction,
    VolatileReadAction,
    VolatileWriteAction,
    WaitAction,
    WriteAction,
    YieldAction,
)
from repro.runtime.program import Barrier, Program, ThreadHandle
from repro.runtime.scheduler import DeadlockError, Scheduler, run_program
from repro.runtime.explore import (
    RaceCoverage,
    ScheduleOutcome,
    explore,
    race_coverage,
)
from repro.runtime.filters import (
    DJITFilter,
    EraserFilter,
    FastTrackFilter,
    NoneFilter,
    Prefilter,
    ThreadLocalFilter,
    compose,
)
from repro.runtime.monitor import (
    MonitoredBarrier,
    MonitoredCondition,
    MonitoredLock,
    SharedVar,
    ThreadMonitor,
    VolatileVar,
)
from repro.runtime.instrument import (
    MonitoredDict,
    MonitoredList,
    MonitoredObject,
    monitored_object,
)

__all__ = [
    "Program",
    "ThreadHandle",
    "Barrier",
    "Scheduler",
    "DeadlockError",
    "run_program",
    "explore",
    "race_coverage",
    "RaceCoverage",
    "ScheduleOutcome",
    "Prefilter",
    "NoneFilter",
    "ThreadLocalFilter",
    "EraserFilter",
    "DJITFilter",
    "FastTrackFilter",
    "compose",
    "ThreadMonitor",
    "SharedVar",
    "VolatileVar",
    "MonitoredLock",
    "MonitoredCondition",
    "MonitoredBarrier",
    "MonitoredObject",
    "MonitoredList",
    "MonitoredDict",
    "monitored_object",
    "ReadAction",
    "WriteAction",
    "AcquireAction",
    "ReleaseAction",
    "ForkAction",
    "JoinAction",
    "WaitAction",
    "NotifyAction",
    "BarrierAwaitAction",
    "VolatileReadAction",
    "VolatileWriteAction",
    "EnterAction",
    "ExitAction",
    "YieldAction",
]
