"""Model programs: thread bodies, handles, and barriers.

A :class:`Program` is a set of entry-point thread bodies.  Each body is a
generator function whose first parameter is a :class:`ThreadHandle`; the
handle's methods build the actions the body yields to the scheduler::

    def main(th):
        child = yield th.fork(worker, "x")
        yield th.write("x")
        yield th.join(child)

    def worker(th, var):
        yield th.acquire("m")
        yield th.read(var)
        yield th.release("m")

    program = Program(main)
    trace = Scheduler(program, seed=1).run()

Bodies may freely manipulate ordinary Python data between yields — the
scheduler runs one action at a time in a single OS thread, so such state is
updated atomically at action granularity (like a bytecode-level interleaving
in RoadRunner).  Only the *yielded* actions are visible to the detectors.
"""

from __future__ import annotations

import itertools
from typing import Callable, Hashable, Optional, Tuple

from repro.runtime import actions as act

_barrier_ids = itertools.count()


class Barrier:
    """A cyclic barrier for ``parties`` threads (``java.util.concurrent.
    CyclicBarrier`` analogue).  Reusable across generations."""

    def __init__(self, parties: int, name: Optional[str] = None) -> None:
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self.parties = parties
        self.name = name or f"barrier{next(_barrier_ids)}"
        self.arrived: list = []  # tids of the current generation

    def __repr__(self) -> str:
        return f"Barrier({self.name}, parties={self.parties})"


class ThreadHandle:
    """The per-thread facade model code uses to build actions.

    ``tid`` is assigned by the scheduler.  Handles also expose a tiny bit of
    sugar (``critical``) for the ubiquitous lock-access-unlock shape.
    """

    def __init__(self, tid: int) -> None:
        self.tid = tid

    # -- data accesses ------------------------------------------------------

    def read(self, var: Hashable, site: Optional[Hashable] = None):
        return act.ReadAction(var, site)

    def write(self, var: Hashable, site: Optional[Hashable] = None):
        return act.WriteAction(var, site)

    # -- locking -------------------------------------------------------------

    def acquire(self, lock: Hashable):
        return act.AcquireAction(lock)

    def release(self, lock: Hashable):
        return act.ReleaseAction(lock)

    def critical(self, lock: Hashable, *inner_actions):
        """Generator sugar: ``yield from th.critical("m", th.read("x"))``."""
        yield act.AcquireAction(lock)
        for inner in inner_actions:
            yield inner
        yield act.ReleaseAction(lock)

    # -- threading ------------------------------------------------------------

    def fork(self, body: Callable, *args):
        return act.ForkAction(body, args)

    def join(self, tid: int):
        return act.JoinAction(tid)

    # -- condition synchronization ----------------------------------------------

    def wait(self, lock: Hashable):
        return act.WaitAction(lock)

    def notify_all(self, lock: Hashable):
        return act.NotifyAction(lock)

    def barrier_await(self, barrier: Barrier):
        return act.BarrierAwaitAction(barrier)

    # -- volatiles ----------------------------------------------------------------

    def volatile_read(self, var: Hashable):
        return act.VolatileReadAction(var)

    def volatile_write(self, var: Hashable):
        return act.VolatileWriteAction(var)

    # -- transactions (Section 5.2 checkers) -----------------------------------------

    def enter(self, label: Hashable):
        return act.EnterAction(label)

    def exit(self, label: Hashable):
        return act.ExitAction(label)

    def atomic(self, label: Hashable, *inner_actions):
        """Generator sugar for a transaction block."""
        yield act.EnterAction(label)
        for inner in inner_actions:
            yield inner
        yield act.ExitAction(label)

    # -- scheduling ---------------------------------------------------------------------

    def pause(self):
        return act.YieldAction()


class Program:
    """A set of initial thread bodies (each spawned at tid 0, 1, ...)."""

    def __init__(self, *bodies: Callable, name: str = "program") -> None:
        self.name = name
        self.initial: Tuple[Tuple[Callable, Tuple], ...] = tuple(
            (body, ()) for body in bodies
        )

    @classmethod
    def with_args(cls, *bodies_and_args, name: str = "program") -> "Program":
        """Build from ``(body, args)`` pairs when entry points take
        arguments."""
        program = cls(name=name)
        program.initial = tuple(
            (body, tuple(args)) for body, args in bodies_and_args
        )
        return program
