"""Event-stream prefilters: RoadRunner's ``-tool A:B`` composition.

Section 5.2: "the ROADRUNNER command line option ``-tool FastTrack:
Velodrome`` configures ROADRUNNER to feed the event stream from the target
program to FASTTRACK, which filters out race-free memory accesses from the
event stream and passes all other events on to VELODROME."

A :class:`Prefilter` consumes every event (keeping its own analysis state up
to date) and decides which events continue downstream.  Synchronization and
transaction-boundary events always pass; data accesses pass only when the
filter considers them *interesting* (potentially racy).  As the paper's
footnote 6 notes, a filter "may filter out a memory access that is later
determined to be involved in a race condition; thus this optimization may
involve some small reduction in coverage" — the same holds here.

The five filters of the Section 5.2 table:

* :class:`NoneFilter`        — pass everything (the NONE baseline);
* :class:`ThreadLocalFilter` — drop accesses to data touched by one thread
  so far (the TL column);
* :class:`EraserFilter`      — pass accesses Eraser has warned about;
* :class:`DJITFilter`        — pass accesses DJIT+ has warned about;
* :class:`FastTrackFilter`   — pass accesses FastTrack has warned about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, Sequence, Set

from repro.core.detector import Detector
from repro.core.fasttrack import FastTrack
from repro.detectors.djit import DJITPlus
from repro.detectors.eraser import Eraser
from repro.trace import events as ev


class Prefilter:
    """Base class: feed me every event; I say which ones pass."""

    name = "None"

    def __init__(self) -> None:
        self.events_in = 0
        self.events_out = 0

    def keep(self, event: ev.Event) -> bool:
        """Update internal state with ``event`` and decide its fate."""
        self.events_in += 1
        decision = self._decide(event)
        if decision:
            self.events_out += 1
        return decision

    def _decide(self, event: ev.Event) -> bool:
        return True

    def filtered(self, events: Iterable[ev.Event]) -> Iterator[ev.Event]:
        """The downstream event stream."""
        for event in events:
            if self.keep(event):
                yield event


class NoneFilter(Prefilter):
    """The NONE baseline: every event reaches the downstream checker."""

    name = "None"


class ThreadLocalFilter(Prefilter):
    """Drops accesses to (so far) thread-local data — the TL column.

    Corresponds to a dynamic escape analysis: an access passes once its
    variable has been touched by a second thread.
    """

    name = "TL"

    def __init__(self) -> None:
        super().__init__()
        self._owner: Dict[Hashable, int] = {}
        self._shared: Set[Hashable] = set()

    def _decide(self, event: ev.Event) -> bool:
        if event.kind not in (ev.READ, ev.WRITE):
            return True
        var = event.target
        if var in self._shared:
            return True
        owner = self._owner.get(var)
        if owner is None:
            self._owner[var] = event.tid
            return False
        if owner == event.tid:
            return False
        self._shared.add(var)
        return True


class DetectorFilter(Prefilter):
    """Passes accesses to variables the wrapped detector has warned about.

    The decision path is deliberately flat (bound handler, direct access to
    the detector's warned-key set): the filter sits in front of every event
    of the target program, exactly like RoadRunner's tool chaining.
    """

    def __init__(self, detector: Detector) -> None:
        super().__init__()
        self.detector = detector
        self._handle = detector.handle
        self._warned_keys = detector._warned_keys
        self._shadow_key = detector.shadow_key

    def _decide(self, event: ev.Event) -> bool:
        self._handle(event)
        if event.kind > ev.WRITE:  # READ and WRITE are kinds 0 and 1
            return True
        return self._shadow_key(event.target) in self._warned_keys


class EraserFilter(DetectorFilter):
    name = "Eraser"

    def __init__(self, **kwargs) -> None:
        super().__init__(Eraser(**kwargs))


class DJITFilter(DetectorFilter):
    name = "DJIT+"

    def __init__(self, **kwargs) -> None:
        super().__init__(DJITPlus(**kwargs))


class FastTrackFilter(DetectorFilter):
    name = "FastTrack"

    def __init__(self, **kwargs) -> None:
        super().__init__(FastTrack(**kwargs))


@dataclass
class CompositionResult:
    """Outcome of running ``prefilter:checker`` over a stream."""

    prefilter: Prefilter
    checker: object
    events_in: int
    events_passed: int

    @property
    def pass_fraction(self) -> float:
        return self.events_passed / self.events_in if self.events_in else 0.0


def compose(
    prefilter: Prefilter, checker, events: Iterable[ev.Event]
) -> CompositionResult:
    """Run the two-stage pipeline (``-tool Prefilter:Checker``)."""
    for event in prefilter.filtered(events):
        checker.handle(event)
    return CompositionResult(
        prefilter=prefilter,
        checker=checker,
        events_in=prefilter.events_in,
        events_passed=prefilter.events_out,
    )


def compose_chain(
    prefilters: Sequence[Prefilter], checker, events: Iterable[ev.Event]
) -> CompositionResult:
    """Run an N-stage pipeline (``-tool A:B:...:Checker``).

    Each prefilter consumes what the previous one passed; the checker sees
    only what survives the whole chain.  With an empty prefilter list this
    degenerates to feeding the checker directly.
    """
    stream: Iterable[ev.Event] = events
    total_in = 0
    for prefilter in prefilters:
        stream = prefilter.filtered(stream)
    passed = 0
    for event in stream:
        passed += 1
        checker.handle(event)
    if prefilters:
        total_in = prefilters[0].events_in
    else:
        total_in = passed
    return CompositionResult(
        prefilter=prefilters[0] if prefilters else NoneFilter(),
        checker=checker,
        events_in=total_in,
        events_passed=passed,
    )
