"""The deterministic interleaving scheduler.

This is the execution half of the RoadRunner analogue: it runs a
:class:`~repro.runtime.program.Program`'s threads as coroutines, interleaving
them under a seeded policy while enforcing real synchronization semantics —
mutual exclusion, join blocking, wait/notify, barrier arrival — and emitting
the Figure 1 event stream.  Because events are only emitted when the
corresponding operation actually takes effect (an ``acq`` only once the lock
is granted, a ``join`` only once the child finished), every produced trace
is feasible by construction (Section 2.1), which the property tests verify.

Fidelity notes:

* **Re-entrant lock acquires/releases are filtered** — the scheduler tracks
  recursion depth and emits events only for the outermost pair, exactly as
  RoadRunner does for its back-end tools.
* **wait/notify** follow Section 4: a wait emits the underlying release and,
  once notified and re-granted the lock, the re-acquisition; a notify emits
  nothing.
* ``policy="random"`` (seeded) explores different interleavings per seed;
  ``policy="roundrobin"`` is fully deterministic and seed-independent;
  ``policy="pct"`` implements probabilistic concurrency testing (Burckhardt
  et al.): threads get random priorities, the scheduler always runs the
  highest-priority runnable thread, and priorities are demoted at
  ``pct_depth - 1`` random change points — for a bug of preemption depth
  ``d``, each run finds it with probability ≥ 1/(n·k^(d-1)), far better
  than uniform random scheduling for rare interleavings.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional

from repro.runtime import actions as act
from repro.runtime.program import Barrier, Program, ThreadHandle
from repro.trace import events as ev
from repro.trace.trace import Trace

RUNNABLE = "runnable"
BLOCKED_LOCK = "blocked-lock"
BLOCKED_JOIN = "blocked-join"
BLOCKED_BARRIER = "blocked-barrier"
WAITING = "waiting"
FINISHED = "finished"


class DeadlockError(RuntimeError):
    """No thread can make progress but the program has not finished."""


class SchedulerError(RuntimeError):
    """A model program misused the synchronization API (e.g. released a
    lock it does not hold)."""


class _SimThread:
    __slots__ = (
        "tid",
        "gen",
        "status",
        "pending",
        "send_value",
        "block_key",
        "ops",
    )

    def __init__(self, tid: int, gen) -> None:
        self.tid = tid
        self.gen = gen
        self.status = RUNNABLE
        self.pending: Optional[act.Action] = None  # action to retry
        self.send_value = None
        self.block_key: Optional[Hashable] = None
        self.ops = 0  # events emitted by this thread


class Scheduler:
    """Interleaves a program's threads and produces its trace."""

    def __init__(
        self,
        program: Program,
        seed: int = 0,
        policy: str = "random",
        sink: Optional[Callable[[ev.Event], None]] = None,
        max_steps: Optional[int] = None,
        pct_depth: int = 3,
        pct_horizon: int = 1000,
    ) -> None:
        if policy not in ("random", "roundrobin", "pct"):
            raise ValueError(f"unknown policy {policy!r}")
        if pct_depth < 1:
            raise ValueError("pct_depth must be at least 1")
        self.program = program
        self.rng = random.Random(seed)
        self.policy = policy
        self.sink = sink
        self.max_steps = max_steps
        self.events: List[ev.Event] = []
        self.threads: Dict[int, _SimThread] = {}
        self._lock_owner: Dict[Hashable, int] = {}
        self._lock_depth: Dict[Hashable, int] = {}
        self._next_tid = 0
        self._rr_cursor = 0
        self.steps = 0
        # PCT state: random per-thread priorities (assigned at spawn) and
        # d-1 priority change points sampled over the expected run length.
        self._priorities: Dict[int, float] = {}
        self._change_points = (
            sorted(
                self.rng.randrange(pct_horizon)
                for _ in range(pct_depth - 1)
            )
            if policy == "pct"
            else []
        )
        for body, args in program.initial:
            self._spawn(body, args)

    # -- thread management ---------------------------------------------------

    def _spawn(self, body: Callable, args: tuple) -> int:
        tid = self._next_tid
        self._next_tid += 1
        handle = ThreadHandle(tid)
        gen = body(handle, *args)
        self.threads[tid] = _SimThread(tid, gen)
        self._priorities[tid] = self.rng.random()
        return tid

    def _emit(self, event: ev.Event) -> None:
        self.events.append(event)
        if event.kind == ev.BARRIER_RELEASE:
            for tid in event.target:
                self.threads[tid].ops += 1
        else:
            self.threads[event.tid].ops += 1
        if self.sink is not None:
            self.sink(event)

    def _wake(self, status: str, key: Hashable) -> None:
        for thread in self.threads.values():
            if thread.status == status and thread.block_key == key:
                thread.status = RUNNABLE
                thread.block_key = None

    # -- the main loop ------------------------------------------------------------

    def run(self) -> Trace:
        """Run to completion and return the trace (also fed to ``sink``
        incrementally, if one was given)."""
        while True:
            runnable = [
                t for t in self.threads.values() if t.status == RUNNABLE
            ]
            if not runnable:
                unfinished = [
                    t.tid
                    for t in self.threads.values()
                    if t.status != FINISHED
                ]
                if unfinished:
                    raise DeadlockError(
                        f"threads {unfinished} are blocked "
                        f"({[self.threads[t].status for t in unfinished]})"
                    )
                return Trace(self.events)
            self.steps += 1
            if self.max_steps is not None and self.steps > self.max_steps:
                raise SchedulerError(
                    f"exceeded max_steps={self.max_steps} (livelock?)"
                )
            thread = self._pick(runnable)
            self._step(thread)

    def _pick(self, runnable: List[_SimThread]) -> _SimThread:
        if self.policy == "roundrobin":
            runnable.sort(key=lambda t: t.tid)
            self._rr_cursor += 1
            return runnable[self._rr_cursor % len(runnable)]
        if self.policy == "pct":
            chosen = max(runnable, key=lambda t: self._priorities[t.tid])
            if self._change_points and self.steps >= self._change_points[0]:
                self._change_points.pop(0)
                # Demote the running thread below everyone else.
                floor = min(self._priorities.values())
                self._priorities[chosen.tid] = floor - 1.0
                chosen = max(
                    runnable, key=lambda t: self._priorities[t.tid]
                )
            return chosen
        return self.rng.choice(runnable)

    def _step(self, thread: _SimThread) -> None:
        if thread.pending is not None:
            action = thread.pending
        else:
            try:
                action = thread.gen.send(thread.send_value)
            except StopIteration:
                thread.status = FINISHED
                self._wake(BLOCKED_JOIN, thread.tid)
                return
            thread.send_value = None
        self._apply(thread, action)

    # -- action semantics -----------------------------------------------------------

    def _apply(self, thread: _SimThread, action: act.Action) -> None:
        tid = thread.tid
        kind = type(action)

        if kind is act.ReadAction:
            self._emit(ev.Event(ev.READ, tid, action.var, action.site))
        elif kind is act.WriteAction:
            self._emit(ev.Event(ev.WRITE, tid, action.var, action.site))
        elif kind is act.AcquireAction:
            self._acquire(thread, action)
            return
        elif kind is act.ReleaseAction:
            self._release(thread, action.lock)
        elif kind is act.ForkAction:
            child = self._spawn(action.body, action.args)
            self._emit(ev.fork(tid, child))
            thread.send_value = child
        elif kind is act.JoinAction:
            target = self.threads.get(action.tid)
            if target is None:
                raise SchedulerError(f"join of unknown thread {action.tid}")
            if target.status != FINISHED:
                thread.status = BLOCKED_JOIN
                thread.block_key = action.tid
                thread.pending = action
                return
            self._emit(ev.join(tid, action.tid))
        elif kind is act.WaitAction:
            self._wait(thread, action.lock)
            return
        elif kind is act.NotifyAction:
            # No event: notify induces no happens-before edge (Section 4).
            for other in self.threads.values():
                if other.status == WAITING and other.block_key == action.lock:
                    other.status = RUNNABLE
                    other.block_key = None
                    # The waiter resumes by re-acquiring the monitor.
                    other.pending = act.AcquireAction(action.lock)
        elif kind is act.VolatileReadAction:
            self._emit(ev.vol_rd(tid, action.var))
        elif kind is act.VolatileWriteAction:
            self._emit(ev.vol_wr(tid, action.var))
        elif kind is act.BarrierAwaitAction:
            self._barrier(thread, action.barrier)
            return
        elif kind is act.EnterAction:
            self._emit(ev.enter(tid, action.label))
        elif kind is act.ExitAction:
            self._emit(ev.exit_(tid, action.label))
        elif kind is act.YieldAction:
            pass
        else:
            raise SchedulerError(f"unknown action {action!r}")
        thread.pending = None

    def _acquire(self, thread: _SimThread, action: act.AcquireAction) -> None:
        lock = action.lock
        owner = self._lock_owner.get(lock)
        if owner is None:
            self._lock_owner[lock] = thread.tid
            self._lock_depth[lock] = 1
            self._emit(ev.acq(thread.tid, lock))
            thread.pending = None
        elif owner == thread.tid:
            # Re-entrant acquire: no event (RoadRunner filters these).
            self._lock_depth[lock] += 1
            thread.pending = None
        else:
            thread.status = BLOCKED_LOCK
            thread.block_key = lock
            thread.pending = action

    def _release(self, thread: _SimThread, lock: Hashable) -> None:
        if self._lock_owner.get(lock) != thread.tid:
            raise SchedulerError(
                f"thread {thread.tid} released {lock!r} without holding it"
            )
        self._lock_depth[lock] -= 1
        if self._lock_depth[lock] > 0:
            return  # inner release of a re-entrant pair: no event
        del self._lock_owner[lock]
        del self._lock_depth[lock]
        self._emit(ev.rel(thread.tid, lock))
        self._wake(BLOCKED_LOCK, lock)

    def _wait(self, thread: _SimThread, lock: Hashable) -> None:
        if self._lock_owner.get(lock) != thread.tid:
            raise SchedulerError(
                f"thread {thread.tid} waits on {lock!r} without holding it"
            )
        if self._lock_depth[lock] != 1:
            raise SchedulerError(
                f"thread {thread.tid} waits on {lock!r} while holding it "
                "re-entrantly"
            )
        del self._lock_owner[lock]
        del self._lock_depth[lock]
        self._emit(ev.rel(thread.tid, lock))
        self._wake(BLOCKED_LOCK, lock)
        thread.status = WAITING
        thread.block_key = lock
        thread.pending = None  # a notify installs the re-acquire

    def _barrier(self, thread: _SimThread, barrier: Barrier) -> None:
        barrier.arrived.append(thread.tid)
        if len(barrier.arrived) < barrier.parties:
            thread.status = BLOCKED_BARRIER
            thread.block_key = barrier
            thread.pending = None
            return
        members = tuple(sorted(barrier.arrived))
        barrier.arrived.clear()
        self._emit(ev.barrier_rel(members))
        for tid in members:
            member = self.threads[tid]
            member.status = RUNNABLE
            member.block_key = None
            member.pending = None


def run_program(
    program: Program,
    seed: int = 0,
    policy: str = "random",
    sink: Optional[Callable[[ev.Event], None]] = None,
    max_steps: Optional[int] = None,
) -> Trace:
    """One-call convenience: schedule ``program`` and return its trace."""
    return Scheduler(
        program, seed=seed, policy=policy, sink=sink, max_steps=max_steps
    ).run()
