"""Command-line interface.

::

    repro tools                         list the seven detectors
    repro workloads                     list the benchmark workloads
    repro record tsp -o tsp.trace       generate a workload's event stream
    repro check tsp.trace               run FastTrack over a trace file
    repro check tsp.trace --tool Eraser --all-tools --oracle
    repro check tsp.trace --json        machine-readable result document
    repro check big.trace --jobs 4 --shards 16 --resume work/
                                        sharded parallel engine (streaming;
                                        re-running resumes finished shards)
    repro serve --port 8077 --store work/service
                                        long-running race-checking daemon
    repro submit tsp.trace --wait       send a trace to a running daemon
    repro status JOB / repro result JOB poll a daemon job / fetch its result
    repro annotate small.trace          print per-event vector clocks
    repro predict small.trace           WCP predictive races + vindication
    repro bench table1                  regenerate the paper's tables

Trace files use the text format of :mod:`repro.trace.serialize` (the
paper's concrete syntax; ``--format jsonl`` for JSON lines).  ``check``
exits with status 1 when the selected tool reports warnings, so it can
gate a CI job; 2 on input/usage errors; a run drained by SIGTERM exits
with 3 after checkpointing (re-run with ``--resume`` to finish); and a
run that completed *degraded* — poison shards quarantined after their
retries were exhausted — exits with 4 and stamps a ``degraded`` block
into the ``--json`` document (see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench.workload import WORKLOADS
from repro.detectors import (
    DETECTORS,
    default_tool_kwargs,
    make_detector,
    resolve_tool_name,
)
from repro.trace import serialize
from repro.trace.clocks import annotate as annotate_clocks
from repro.trace.feasibility import check_feasible
from repro.trace.happens_before import racy_variables
from repro.trace.trace import Trace


def _read_trace(path: str, fmt: str) -> Trace:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
    except UnicodeDecodeError as error:
        # Surface byte rot as a parse error (exit 2 with a pointer into
        # the file), the same way the streaming readers do.
        raise serialize.TraceParseError(
            f"trace is not valid UTF-8 ({error.reason} at byte {error.start})"
        ) from None
    if fmt == "jsonl":
        return serialize.loads_jsonl(text)
    return serialize.loads(text)


def _print_parse_error(path: str, error: serialize.TraceParseError) -> None:
    print(f"error: {path}: {error}", file=sys.stderr)
    if error.line is not None:
        print(f"  offending line: {error.line}", file=sys.stderr)


def _write_trace(trace: Trace, path: Optional[str], fmt: str) -> None:
    text = (
        serialize.dumps_jsonl(trace) if fmt == "jsonl" else serialize.dumps(trace)
    )
    if path is None or path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(text)


def cmd_tools(_args) -> int:
    print(f"{'tool':<12s}{'precise':>9s}  description")
    descriptions = {
        "Empty": "no analysis; measures event-delivery overhead",
        "Eraser": "LockSet discipline checker [33] (+barrier extension)",
        "MultiRace": "hybrid LockSet/DJIT+ [30]",
        "Goldilocks": "synchronization-device locksets [14]",
        "BasicVC": "read+write vector clock per location",
        "DJIT+": "epoch-fast-pathed vector clocks [30]",
        "FastTrack": "adaptive epochs (this paper)",
        "WCP": "weak-causally-precedes, predictive (repro predict)",
        "AsyncFinish": "FastTrack + async-finish task scopes (alias: async)",
    }
    for name, cls in DETECTORS.items():
        flag = "yes" if cls.precise else "no"
        print(f"{name:<12s}{flag:>9s}  {descriptions[name]}")
    return 0


def cmd_workloads(_args) -> int:
    print(f"{'workload':<12s}{'threads':>8s}{'scale':>8s}  description")
    for name, workload in WORKLOADS.items():
        print(
            f"{name:<12s}{workload.paper.threads:>8d}"
            f"{workload.default_scale:>8d}  {workload.description}"
        )
    return 0


def cmd_record(args) -> int:
    try:
        workload = WORKLOADS[args.workload]
    except KeyError:
        print(f"unknown workload {args.workload!r}", file=sys.stderr)
        return 2
    trace = workload.trace(scale=args.scale, seed=args.seed)
    _write_trace(trace, args.output, args.format)
    if args.output not in (None, "-"):
        print(
            f"wrote {len(trace)} events ({len(trace.threads())} threads) "
            f"to {args.output}",
            file=sys.stderr,
        )
    return 0


def _parse_jobs(value: str):
    """``--jobs`` argument: a positive integer or ``auto`` (= CPU count)."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        )


def _resolve_jobs(args) -> int:
    """Resolve ``--jobs auto`` and warn when workers outnumber CPUs.

    The diagnostic goes through the structured logger: a ``{"type":
    "log"}`` record in ``spans.jsonl`` when ``--telemetry`` is on, the
    familiar stderr line otherwise.
    """
    from repro import obs

    cpus = os.cpu_count() or 1
    jobs = cpus if args.jobs == "auto" else args.jobs
    if jobs > cpus:
        obs.log.warning(
            "engine.jobs.oversubscribed",
            f"--jobs {jobs} exceeds the {cpus} available CPU(s); "
            "workers will contend for cores",
            jobs=jobs,
            cpus=cpus,
        )
    return jobs


def _install_faults(args) -> Optional[int]:
    """Install the ``--faults`` plan (or adopt ``REPRO_FAULTS``).

    Returns an exit status on a bad plan, ``None`` on success.  The plan
    is mirrored into the environment so engine pool workers — including
    ones re-spawned mid-run — inherit it.
    """
    from repro import faults

    try:
        if getattr(args, "faults", None):
            faults.install(faults.load(args.faults))
        else:
            faults.load_from_env_once()
    except faults.FaultPlanError as error:
        print(f"error: fault plan: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(
            f"error: fault plan: {error.strerror or error}", file=sys.stderr
        )
        return 2
    return None


def _enable_telemetry(args) -> bool:
    """Turn on the obs sink when ``--telemetry DIR`` was given."""
    directory = getattr(args, "telemetry", None)
    if not directory:
        return False
    from repro import obs

    obs.enable(directory)
    return True


def _print_json_results(json_results, args) -> None:
    """Emit the canonical result document(s) for ``check --json``."""
    from repro.report import dumps_result, result_set

    if args.all_tools:
        sys.stdout.write(dumps_result(result_set(json_results)))
    else:
        sys.stdout.write(dumps_result(json_results[args.tool]))


def _cmd_check_sharded(args) -> int:
    """The ``--jobs N`` / ``--shards M`` / ``--resume DIR`` engine path."""
    import tempfile

    from repro import engine

    from repro.kernels import has_kernel

    if args.oracle:
        print(
            "error: --oracle needs the full trace in memory; "
            "use --jobs 1 for the oracle",
            file=sys.stderr,
        )
        return 2
    if args.kernel == "fused" and not has_kernel(args.tool):
        print(
            f"error: --kernel fused: {args.tool!r} has no fused kernel",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    tool_names = list(DETECTORS) if args.all_tools else [args.tool]
    workdir = args.resume
    owns_workdir = False
    if workdir is None and len(tool_names) > 1:
        # Partition once, analyze with every tool against the same shards.
        workdir = tempfile.mkdtemp(prefix="repro-engine-")
        owns_workdir = True
    if args.all_tools and not args.verbose and not args.json:
        print(f"{'tool':<12s}{'warnings':>9s}")
    policy = engine.RetryPolicy(
        shard_timeout_s=getattr(args, "shard_timeout", None)
    )
    worst = 0
    degraded = False
    selected = None
    json_results = {}
    try:
        for position, name in enumerate(tool_names):
            kwargs = default_tool_kwargs(name)
            # Reuse the partition for every tool after the first pass.
            resume = args.resume is not None or position > 0
            # ``--all-tools --kernel fused`` only binds the selected tool;
            # companion tools without a kernel fall back to the object path.
            kernel = args.kernel
            if kernel == "fused" and name != args.tool:
                kernel = "auto"
            report = engine.check_trace_file(
                args.trace,
                tool=name,
                fmt=args.format,
                nshards=args.shards,
                jobs=args.jobs,
                workdir=workdir,
                resume=resume,
                classify=args.json,
                tool_kwargs=kwargs,
                kernel=kernel,
                policy=policy,
                transport=getattr(args, "transport", "auto"),
            )
            if name == args.tool:
                worst = report.warning_count
                selected = report
            if report.is_degraded:
                degraded = True
                quarantined = report.degraded["quarantined_shards"]
                print(
                    f"degraded: {name}: {len(quarantined)} of "
                    f"{report.degraded['shards_total']} shard(s) "
                    f"quarantined ({quarantined}); their variables were "
                    "not analyzed",
                    file=sys.stderr,
                )
            if args.json:
                json_results[name] = report.to_json()
            elif args.all_tools and not args.verbose:
                print(f"{name:<12s}{report.warning_count:>9d}")
            else:
                print(f"{name}: {report.warning_count} warning(s)")
                for warning in report.warnings:
                    print(f"  {warning}")
    except serialize.TraceParseError as error:
        _print_parse_error(args.trace, error)
        return 2
    except engine.DrainRequested as error:
        print(f"drained: {error}", file=sys.stderr)
        return 3
    except engine.QuarantineExhausted as error:
        print(f"error: {error}", file=sys.stderr)
        return 4
    except engine.CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {args.trace}: {error.strerror or error}",
              file=sys.stderr)
        return 2
    finally:
        if workdir is not None:
            # Release any shm blocks the partition created (no-op for the
            # mmap transport).  This also covers ``--resume DIR
            # --transport shm``: shm partitions cannot outlive their
            # creating process anyway, so unlinking here just beats the
            # resource tracker's noisier exit-time backstop to it.
            engine.Workdir(workdir).release_blocks()
        if owns_workdir:
            import shutil

            shutil.rmtree(workdir, ignore_errors=True)
    if args.json:
        _print_json_results(json_results, args)
    if args.report is not None and selected is not None:
        with open(args.report, "w", encoding="utf-8") as stream:
            stream.write(engine.render_markdown(selected))
        print(
            f"report written to {args.report}",
            file=sys.stderr if args.json else sys.stdout,
        )
    if degraded:
        return 4
    return 1 if worst else 0


def cmd_check(args) -> int:
    failed = _install_faults(args)
    if failed is not None:
        return failed
    telemetry = _enable_telemetry(args)
    try:
        args.jobs = _resolve_jobs(args)
        if args.jobs > 1 or args.shards is not None or args.resume is not None:
            return _cmd_check_sharded(args)
        return _cmd_check_single(args)
    finally:
        if telemetry:
            from repro import obs

            obs.disable()  # flushes DIR/metrics.json, closes spans.jsonl


def _cmd_check_single(args) -> int:
    from repro import obs
    from repro.kernels import has_kernel, run_kernel

    if args.kernel == "fused" and not has_kernel(args.tool):
        print(
            f"error: --kernel fused: {args.tool!r} has no fused kernel",
            file=sys.stderr,
        )
        return 2
    try:
        with obs.span("check.read", trace=args.trace) as read_span:
            trace = _read_trace(args.trace, args.format)
            read_span.set(events=len(trace))
    except serialize.TraceParseError as error:
        _print_parse_error(args.trace, error)
        return 2
    except OSError as error:
        print(f"error: {args.trace}: {error.strerror or error}",
              file=sys.stderr)
        return 2
    violations = check_feasible(trace)
    if violations:
        print(
            f"warning: trace is not feasible ({violations[0]})",
            file=sys.stderr if args.json else sys.stdout,
        )
    tool_names = list(DETECTORS) if args.all_tools else [args.tool]
    columns = None
    if args.kernel != "generic" and any(has_kernel(n) for n in tool_names):
        from repro.trace.columnar import ColumnarTrace

        columns = ColumnarTrace.from_events(trace)
    classifier = None
    if args.json:
        from repro.detectors.classifier import SharingClassifier

        classifier = SharingClassifier()
        classifier.process(trace)
    report_target = None
    if args.all_tools and not args.verbose and not args.json:
        print(f"{'tool':<12s}{'warnings':>9s}")
    worst = 0
    json_results = {}
    for name in tool_names:
        # FastTrack names both sides of the race when sites exist.
        detector = make_detector(name, **default_tool_kwargs(name))
        with obs.span("check.analyze", tool=name, events=len(trace)):
            if columns is not None and has_kernel(name):
                try:
                    run_kernel(name, columns, detector=detector)
                except Exception as error:
                    # Degrade to the (bit-identical) object path rather
                    # than failing the whole check on a kernel fault.
                    obs.record_degraded(
                        "kernel_fallback", tool=name, error=str(error)
                    )
                    detector = make_detector(
                        name, **default_tool_kwargs(name)
                    )
                    detector.process(trace)
            else:
                detector.process(trace)
        obs.record_rules(name, detector.stats)
        if name == args.tool:
            worst = detector.warning_count
            report_target = detector
        if args.json:
            from repro.report import detector_result

            json_results[name] = detector_result(detector, classifier)
        elif args.all_tools and not args.verbose:
            print(f"{name:<12s}{detector.warning_count:>9d}")
        else:
            print(f"{name}: {detector.warning_count} warning(s)")
            for warning in detector.warnings:
                print(f"  {warning}")
    if args.json:
        _print_json_results(json_results, args)
    oracle_set = None
    if args.oracle:
        oracle_set = racy_variables(trace)
        rendered = ", ".join(sorted(map(str, oracle_set))) or "none"
        print(
            f"happens-before oracle: racy variables: {rendered}",
            file=sys.stderr if args.json else sys.stdout,
        )
    if args.report is not None and report_target is not None:
        from repro.report import build_report

        fmt = "html" if args.report.endswith(".html") else "markdown"
        text = build_report(
            trace, report_target, fmt=fmt, oracle_racy=oracle_set
        )
        with open(args.report, "w", encoding="utf-8") as stream:
            stream.write(text)
        print(
            f"report written to {args.report}",
            file=sys.stderr if args.json else sys.stdout,
        )
    return 1 if worst else 0


def cmd_profile(args) -> int:
    """Run a telemetry-enabled check and print the hot-path report.

    The analysis always goes through the engine (so the report has
    partition/analyze/merge stage timings); with the default ``--jobs 1``
    it runs single-shard, which keeps every rule count bit-identical to a
    plain single-threaded ``repro check`` — the Figure 2 numbers for this
    trace, live.  ``--telemetry DIR`` keeps the raw span files and
    ``metrics.json`` next to the report; otherwise they are discarded.

    ``--from-telemetry DIR`` skips the run entirely: it stitches the
    span files an earlier run (or a daemon) wrote — ``spans.jsonl`` plus
    every worker's ``spans-<pid>.jsonl`` — into one tree per trace id
    and prints them with the critical path starred.
    """
    import shutil
    import tempfile

    from repro import engine, obs

    if args.from_telemetry is not None:
        records = obs.read_all_spans(args.from_telemetry, validate=False)
        sys.stdout.write(
            obs.render_trace_report(records, directory=args.from_telemetry)
        )
        return 0
    if args.trace is None:
        print(
            "error: a trace argument is required unless --from-telemetry "
            "is given",
            file=sys.stderr,
        )
        return 2
    keep = args.telemetry is not None
    directory = args.telemetry or tempfile.mkdtemp(prefix="repro-obs-")
    obs.enable(directory)
    args.jobs = _resolve_jobs(args)
    nshards = args.shards
    if nshards is None and args.jobs == 1:
        nshards = 1  # exact single-threaded counters (see docstring)
    tool_names = list(DETECTORS) if args.all_tools else [args.tool]
    workdir = None
    if len(tool_names) > 1:
        workdir = tempfile.mkdtemp(prefix="repro-engine-")
    reports = {}
    try:
        with obs.span("check", trace=args.trace, jobs=args.jobs):
            for position, name in enumerate(tool_names):
                reports[name] = engine.check_trace_file(
                    args.trace,
                    tool=name,
                    fmt=args.format,
                    nshards=nshards,
                    jobs=args.jobs,
                    workdir=workdir,
                    resume=position > 0,
                    tool_kwargs=default_tool_kwargs(name),
                )
    except serialize.TraceParseError as error:
        _print_parse_error(args.trace, error)
        return 2
    except engine.DrainRequested as error:
        print(f"drained: {error}", file=sys.stderr)
        return 3
    except OSError as error:
        print(f"error: {args.trace}: {error.strerror or error}",
              file=sys.stderr)
        return 2
    finally:
        obs.disable()
        if workdir is not None:
            shutil.rmtree(workdir, ignore_errors=True)
    # Stitch every span file in the dir — a --jobs N run's workers wrote
    # their own spans-<pid>.jsonl files next to the main spans.jsonl.
    spans = obs.read_all_spans(directory, validate=False)
    sys.stdout.write(obs.render_profile(args.trace, reports, spans))
    if keep:
        print(f"telemetry written to {directory}", file=sys.stderr)
    else:
        shutil.rmtree(directory, ignore_errors=True)
    return 0


def cmd_watch(args) -> int:
    """Run a detector incrementally over a live stream (docs/WATCH.md).

    Emits one ``repro.warning/1`` JSON line per warning to stdout, the
    moment the completing access is analyzed.  Exit codes match ``repro
    check``: 0 clean, 1 warnings streamed, 2 input/parse errors.
    """
    from repro import obs
    from repro.watch import TailReader, WatchMonitor, stdin_lines

    telemetry = _enable_telemetry(args)
    reader = None
    try:
        if args.trace == "-":
            lines = stdin_lines()
        else:
            if not os.path.exists(args.trace):
                print(
                    f"error: {args.trace}: no such file", file=sys.stderr
                )
                return 2
            # Without --follow the whole point is draining the file, so
            # --from-start is implied; with --follow the default is to
            # start at the current end (new events only).
            reader = TailReader(
                args.trace,
                from_start=args.from_start or not args.follow,
                follow=args.follow,
                poll_interval=args.poll_interval,
                idle_timeout=args.idle_timeout,
            )
            lines = reader.lines()
        parse = (
            serialize.iter_parse_jsonl
            if args.format == "jsonl"
            else serialize.iter_parse
        )
        monitor = WatchMonitor(
            args.tool,
            compact_every=args.compact_every,
            # Traced runs stamp each warning record; without --telemetry
            # the key is absent and the stream stays byte-identical.
            trace_id=obs.current_trace_id() if telemetry else None,
        )
        arrival = (
            (lambda: reader.last_read_at) if reader is not None else None
        )
        try:
            with obs.span(
                "watch.run", tool=monitor.tool, trace=args.trace
            ) as span:
                for record in monitor.drain(parse(lines), arrival=arrival):
                    print(record, flush=True)
                summary = monitor.finish()
                span.set(
                    events=summary["events"], warnings=summary["warnings"]
                )
        except serialize.TraceParseError as error:
            monitor.finish()
            _print_parse_error(args.trace, error)
            return 2
        except OSError as error:
            print(
                f"error: {args.trace}: {error.strerror or error}",
                file=sys.stderr,
            )
            return 2
        print(
            f"watched {summary['events']} event(s): "
            f"{summary['warnings']} warning(s)"
            + (
                f", {summary['compactions']} compaction(s)"
                if summary["compactions"]
                else ""
            ),
            file=sys.stderr,
        )
        return 1 if summary["warnings"] else 0
    finally:
        if telemetry:
            obs.disable()


def cmd_classify(args) -> int:
    from repro.detectors.classifier import CLASSES, SharingClassifier

    trace = _read_trace(args.trace, args.format)
    tool = SharingClassifier()
    tool.process(trace)
    fractions = tool.fractions()
    print("sharing classification (fraction of accesses):")
    for cls in CLASSES:
        print(f"  {cls:<16s}{fractions[cls]:>8.1%}")
    if args.verbose:
        print("\nper-variable classes:")
        for var, cls in sorted(
            tool.classify().items(), key=lambda item: str(item[0])
        ):
            print(f"  {str(var):<32s}{cls}")
    return 0


def cmd_annotate(args) -> int:
    trace = _read_trace(args.trace, args.format)
    clocks = annotate_clocks(trace)
    width = max((len(serialize.format_event(e)) for e in trace), default=10)
    for index, event in enumerate(trace):
        line = serialize.format_event(event)
        print(f"{index:>5d}  {line:<{width}s}  C={clocks.post[index]!r}")
    return 0


def cmd_predict(args) -> int:
    """Windowed predictive race detection: WCP candidates + vindication."""
    import json as _json

    from repro.predict import predict_races

    try:
        trace = _read_trace(args.trace, args.format)
    except serialize.TraceParseError as error:
        _print_parse_error(args.trace, error)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = predict_races(trace, window=args.window)
    if args.json:
        print(_json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        events = list(trace)
        for race in report.races:
            c = race.candidate
            print(
                f"{race.status:<13s} {c.kind} on {c.var!r}: "
                f"thread {c.earlier_tid} (event #{c.earlier_index}) vs "
                f"thread {c.later_tid} (event #{c.later_index})"
            )
            if race.witness is not None and args.verbose:
                for pos in race.witness.order:
                    print(
                        f"    #{pos:<5d} "
                        f"{serialize.format_event(events[pos])}"
                    )
        real = len(report.observed) + len(report.vindicated)
        print(
            f"{report.events} events: {real} race(s) "
            f"({len(report.observed)} observed, "
            f"{len(report.vindicated)} predicted+vindicated), "
            f"{len(report.unvindicated)} unvindicated candidate(s), "
            f"{len(report.by_status('out-of-window'))} out of window"
        )
    return 1 if (report.observed or report.vindicated) else 0


def cmd_compose(args) -> int:
    """RoadRunner's ``-tool FastTrack:Velodrome`` chaining, verbatim."""
    from repro.checkers import Atomizer, SingleTrack, Velodrome
    from repro.runtime.filters import (
        DJITFilter,
        EraserFilter,
        FastTrackFilter,
        ThreadLocalFilter,
        compose_chain,
    )

    filter_classes = {
        "FastTrack": FastTrackFilter,
        "DJIT+": DJITFilter,
        "Eraser": EraserFilter,
        "TL": ThreadLocalFilter,
    }
    checker_classes = {
        "Atomizer": Atomizer,
        "Velodrome": Velodrome,
        "SingleTrack": SingleTrack,
    }
    stages = args.chain.split(":")
    if len(stages) < 2:
        print("error: the chain needs at least Filter:Checker", file=sys.stderr)
        return 2
    *filter_names, checker_name = stages
    try:
        prefilters = [filter_classes[name]() for name in filter_names]
        checker = checker_classes[checker_name]()
    except KeyError as missing:
        known = ", ".join([*filter_classes, "->", *checker_classes])
        print(
            f"error: unknown stage {missing}; known stages: {known}",
            file=sys.stderr,
        )
        return 2
    trace = _read_trace(args.trace, args.format)
    result = compose_chain(prefilters, checker, trace.events)
    print(
        f"{args.chain}: {result.events_passed}/{result.events_in} events "
        f"reached {checker_name} ({result.pass_fraction:.1%})"
    )
    print(f"{checker_name}: {checker.violation_count} violation(s)")
    for label, reason in checker.violations:
        print(f"  {label}: {reason}")
    return 1 if checker.violation_count else 0


def cmd_minimize(args) -> int:
    from repro.trace.minimize import minimize_trace
    from repro.trace.serialize import parse_target

    trace = _read_trace(args.trace, args.format)
    var = parse_target(args.var) if args.var is not None else None
    try:
        witness = minimize_trace(trace, var=var)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"minimized {len(trace)} events to a {len(witness)}-event witness",
        file=sys.stderr,
    )
    _write_trace(witness, args.output, args.format)
    return 0


def cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    argv = list(args.experiments)
    if args.scale is not None:
        argv += ["--scale", str(args.scale)]
    return bench_main(argv)


def _add_service_endpoint_args(parser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-request timeout in seconds",
    )
    parser.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="retry transient failures (connection resets, 429/5xx) up "
        "to N times with capped exponential backoff (default 3; 0 "
        "disables)",
    )


def _service_client(args):
    from repro.service.client import Client

    return Client(
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        retries=getattr(args, "retries", 0),
    )


def cmd_serve(args) -> int:
    from repro.service.server import ServiceConfig, serve

    failed = _install_faults(args)
    if failed is not None:
        return failed
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        engine_jobs=args.engine_jobs,
        queue_size=args.queue_size,
        ttl_seconds=args.ttl,
        store_dir=args.store,
        telemetry=args.telemetry,
        job_timeout=args.job_timeout,
    )
    return serve(config)


def cmd_submit(args) -> int:
    from repro.report import dumps_result
    from repro.service.client import JobFailed, ServiceError

    client = _service_client(args)
    tools = list(DETECTORS) if args.all_tools else [args.tool]
    try:
        job = client.submit(
            path=args.trace,
            tools=tools,
            shards=args.shards,
            kernel=args.kernel,
            fmt=args.format,
            trace_id=args.trace_id,
        )
        if not args.wait:
            print(job["id"])
            return 0
        document = client.wait(job["id"])
    except JobFailed as error:
        print(f"error: job failed: {error}", file=sys.stderr)
        return 2
    except (ServiceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sys.stdout.write(dumps_result(document))
    if document.get("schema") == "repro.result-set/1":
        selected = document["results"].get(args.tool, {})
    else:
        selected = document
    return 1 if selected.get("warning_count") else 0


def cmd_status(args) -> int:
    import json as _json

    from repro.service.client import ServiceError

    try:
        job = _service_client(args).status(args.job)
    except (ServiceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(_json.dumps(job, indent=2, sort_keys=True))
    return 0


def cmd_result(args) -> int:
    from repro.report import dumps_result
    from repro.service.client import JobFailed, ServiceError

    try:
        document = _service_client(args).result(args.job)
    except (JobFailed, ServiceError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    sys.stdout.write(dumps_result(document))
    return 0


def cmd_top(args) -> int:
    """The terminal ops view (docs/OBSERVABILITY.md): poll a daemon's
    ``/debug`` snapshot, or summarize a local run's telemetry dir.
    Plain-text frames — ``--once`` for one frame, else a loop."""
    import time as _time

    from repro.obs import top as obs_top
    from repro.service.client import ServiceError

    if args.telemetry is not None:
        def frame() -> str:
            return obs_top.render_telemetry_top(
                obs_top.snapshot_from_telemetry(args.telemetry)
            )
    else:
        client = _service_client(args)

        def frame() -> str:
            return obs_top.render_top(client.debug())

    first = True
    try:
        while True:
            try:
                text = frame()
            except (ServiceError, OSError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            if not first:
                sys.stdout.write("\n")
            sys.stdout.write(text)
            sys.stdout.flush()
            first = False
            if args.once:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FastTrack (PLDI 2009) reproduction — race detection tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tools", help="list the detectors").set_defaults(
        func=cmd_tools
    )
    sub.add_parser("workloads", help="list the workloads").set_defaults(
        func=cmd_workloads
    )

    record = sub.add_parser("record", help="generate a workload trace")
    record.add_argument("workload")
    record.add_argument("--scale", type=int, default=None)
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("-o", "--output", default=None, help="- for stdout")
    record.add_argument("--format", choices=("text", "jsonl"), default="text")
    record.set_defaults(func=cmd_record)

    check = sub.add_parser("check", help="run a detector over a trace file")
    check.add_argument("trace")
    check.add_argument(
        "--tool",
        default="FastTrack",
        type=resolve_tool_name,
        choices=list(DETECTORS),
    )
    check.add_argument(
        "--all-tools", action="store_true", help="run every detector"
    )
    check.add_argument(
        "--oracle",
        action="store_true",
        help="also compute ground truth from the happens-before definition",
    )
    check.add_argument("--format", choices=("text", "jsonl"), default="text")
    check.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=1,
        metavar="N",
        help="worker processes for the sharded engine (1 = in-process; "
        "'auto' = one per CPU)",
    )
    check.add_argument(
        "--kernel",
        choices=("auto", "fused", "generic"),
        default="auto",
        help="analysis loop: fused columnar kernel, generic object path, "
        "or auto (fused when the tool has one)",
    )
    check.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="M",
        help="shard count for --jobs (default: 2 per worker)",
    )
    check.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help="engine working directory; reuses finished shards on re-run",
    )
    check.add_argument(
        "--transport",
        choices=("auto", "shm", "mmap"),
        default="auto",
        help="shard transport for the sharded engine: shm (zero-copy "
        "shared-memory blocks), mmap (durable shard files — what "
        "--resume directories use), or auto",
    )
    check.add_argument(
        "--report",
        metavar="FILE",
        default=None,
        help="write a markdown (.md) or HTML (.html) race report",
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical repro.result/1 JSON document instead of "
        "text (the same schema the repro serve daemon returns)",
    )
    check.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="write structured telemetry (spans.jsonl + metrics.json) to "
        "DIR; analysis output is unaffected",
    )
    check.add_argument(
        "--faults",
        metavar="PLAN.json",
        default=None,
        help="inject the deterministic fault plan (repro.faults/1) into "
        "this run — chaos testing; see docs/ROBUSTNESS.md",
    )
    check.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard watchdog deadline for the engine's workers; an "
        "overdue shard is killed and counted as a failed attempt",
    )
    check.add_argument("-v", "--verbose", action="store_true")
    check.set_defaults(func=cmd_check)

    predict = sub.add_parser(
        "predict",
        help="predictive race detection: WCP candidates vindicated "
        "against feasible reorderings (docs/PREDICT.md)",
    )
    predict.add_argument("trace")
    predict.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="max reordering distance (trace positions) a candidate may "
        "span; farther pairs are reported out-of-window unvindicated "
        "(default: unbounded)",
    )
    predict.add_argument("--format", choices=("text", "jsonl"), default="text")
    predict.add_argument(
        "--json",
        action="store_true",
        help="emit the repro.predict/1 JSON document",
    )
    predict.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print each vindicated witness reordering",
    )
    predict.set_defaults(func=cmd_predict)

    profile = sub.add_parser(
        "profile",
        help="profile a trace: rule frequencies, stage timings, shard "
        "balance (a telemetry-enabled check)",
    )
    profile.add_argument(
        "trace", nargs="?", default=None,
        help="trace file to profile (omit with --from-telemetry)",
    )
    profile.add_argument(
        "--tool",
        default="FastTrack",
        type=resolve_tool_name,
        choices=list(DETECTORS),
    )
    profile.add_argument(
        "--from-telemetry",
        metavar="DIR",
        default=None,
        help="skip the run: stitch DIR's span files (spans.jsonl + every "
        "worker's spans-<pid>.jsonl) into per-trace trees with the "
        "critical path starred",
    )
    profile.add_argument(
        "--all-tools", action="store_true", help="profile every detector"
    )
    profile.add_argument(
        "--format", choices=("text", "jsonl"), default="text"
    )
    profile.add_argument(
        "--jobs",
        type=_parse_jobs,
        default=1,
        metavar="N",
        help="worker processes (1 = single-shard, counts bit-identical to "
        "a plain check; 'auto' = one per CPU)",
    )
    profile.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="M",
        help="shard count (default: 1 when --jobs 1, else 2 per worker)",
    )
    profile.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="keep the raw spans.jsonl + metrics.json in DIR instead of "
        "discarding them after the report",
    )
    profile.set_defaults(func=cmd_profile)

    watch = sub.add_parser(
        "watch",
        help="incrementally monitor a live trace stream, emitting "
        "repro.warning/1 JSON lines as races fire (docs/WATCH.md)",
    )
    watch.add_argument("trace", help="trace file to tail, or - for stdin")
    watch.add_argument(
        "--tool",
        default="FastTrack",
        type=resolve_tool_name,
        choices=list(DETECTORS),
    )
    watch.add_argument(
        "--format", choices=("text", "jsonl"), default="jsonl"
    )
    watch.add_argument(
        "--from-start",
        action="store_true",
        help="with --follow, analyze the file's existing contents before "
        "tailing (implied when --follow is absent)",
    )
    watch.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing for new events after reaching end of file",
    )
    watch.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --follow, stop after this long with no new bytes "
        "(default: follow forever)",
    )
    watch.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="how often --follow polls the file for growth",
    )
    watch.add_argument(
        "--compact-every",
        type=int,
        default=0,
        metavar="N",
        help="run warning-preserving shadow-state compaction every N "
        "events (0 = never); bounds memory on unbounded streams",
    )
    watch.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="write structured telemetry (spans.jsonl + metrics.json, "
        "including repro_watch_* metrics) to DIR",
    )
    watch.set_defaults(func=cmd_watch)

    serve = sub.add_parser(
        "serve", help="run the long-lived race-checking daemon"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8077)
    serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job-runner threads (default 2)",
    )
    serve.add_argument(
        "--engine-jobs", type=int, default=1, metavar="N",
        help="size of the persistent shard-worker process pool shared by "
        "all jobs (1 = analyze in the runner thread)",
    )
    serve.add_argument(
        "--store", metavar="DIR", required=True,
        help="job/result store directory (jobs survive daemon restarts)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded job queue; submissions beyond it get HTTP 429",
    )
    serve.add_argument(
        "--ttl", type=float, default=3600.0, metavar="SECONDS",
        help="evict finished jobs from the store after this long",
    )
    serve.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="write structured telemetry (spans.jsonl + metrics.json) to "
        "DIR; job lifecycle spans are joined by job id",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per job attempt; a stuck job is killed "
        "(finished shards stay checkpointed) and requeued at most twice",
    )
    serve.add_argument(
        "--faults",
        metavar="PLAN.json",
        default=None,
        help="inject the deterministic fault plan (repro.faults/1) into "
        "the daemon — chaos testing; see docs/ROBUSTNESS.md",
    )
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a trace file to a running daemon"
    )
    submit.add_argument("trace")
    submit.add_argument(
        "--tool",
        default="FastTrack",
        type=resolve_tool_name,
        choices=list(DETECTORS),
    )
    submit.add_argument(
        "--all-tools", action="store_true", help="run every detector"
    )
    submit.add_argument("--format", choices=("text", "jsonl"), default="text")
    submit.add_argument("--shards", type=int, default=None, metavar="M")
    submit.add_argument(
        "--kernel", choices=("auto", "fused", "generic"), default="auto"
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes and print its result document "
        "(exit 1 when the selected tool warns, as repro check does)",
    )
    submit.add_argument(
        "--trace-id",
        default=None,
        metavar="ID",
        help="propagate this trace id (sent as X-Repro-Trace-Id) so the "
        "daemon's telemetry spans for the job join the caller's trace",
    )
    _add_service_endpoint_args(submit)
    submit.set_defaults(func=cmd_submit)

    status = sub.add_parser("status", help="show a daemon job's status")
    status.add_argument("job")
    _add_service_endpoint_args(status)
    status.set_defaults(func=cmd_status)

    top = sub.add_parser(
        "top",
        help="live ops view: poll a daemon's /debug snapshot, or "
        "summarize a local run's --telemetry dir",
    )
    top.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="local mode: stitch DIR's span files instead of polling a "
        "daemon",
    )
    top.add_argument(
        "--once", action="store_true",
        help="print one frame and exit (the CI/scripting mode)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="seconds between frames when looping (default 2)",
    )
    _add_service_endpoint_args(top)
    top.set_defaults(func=cmd_top)

    result = sub.add_parser(
        "result", help="fetch a daemon job's result document"
    )
    result.add_argument("job")
    _add_service_endpoint_args(result)
    result.set_defaults(func=cmd_result)

    annotate = sub.add_parser(
        "annotate", help="print per-event vector clocks for a trace"
    )
    annotate.add_argument("trace")
    annotate.add_argument("--format", choices=("text", "jsonl"), default="text")
    annotate.set_defaults(func=cmd_annotate)

    classify = sub.add_parser(
        "classify", help="classify each variable's sharing pattern"
    )
    classify.add_argument("trace")
    classify.add_argument("--format", choices=("text", "jsonl"), default="text")
    classify.add_argument("-v", "--verbose", action="store_true")
    classify.set_defaults(func=cmd_classify)

    compose = sub.add_parser(
        "compose",
        help="run a RoadRunner-style tool chain, e.g. FastTrack:Velodrome",
    )
    compose.add_argument(
        "chain", help="colon-separated stages, filters then a checker"
    )
    compose.add_argument("trace")
    compose.add_argument("--format", choices=("text", "jsonl"), default="text")
    compose.set_defaults(func=cmd_compose)

    minimize = sub.add_parser(
        "minimize", help="shrink a racy trace to a small witness"
    )
    minimize.add_argument("trace")
    minimize.add_argument(
        "--var", default=None, help="minimize for this variable's race"
    )
    minimize.add_argument("-o", "--output", default=None, help="- for stdout")
    minimize.add_argument(
        "--format", choices=("text", "jsonl"), default="text"
    )
    minimize.set_defaults(func=cmd_minimize)

    bench = sub.add_parser("bench", help="regenerate the paper's tables")
    bench.add_argument(
        "experiments",
        nargs="*",
        help="table1 table2 table3 figure2 composition eclipse",
    )
    bench.add_argument("--scale", type=int, default=None)
    bench.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
