"""The incremental monitor: any registered detector, one event at a time.

:class:`WatchMonitor` wraps a detector built exactly the way ``repro
check`` builds it (``resolve_tool_name`` + ``default_tool_kwargs``) and
drives it through :meth:`Detector.handle`, surfacing each new warning
the moment the event that completes the race is fed.  Warning records
are ``repro.warning/1`` JSON lines::

    {"schema": "repro.warning/1", "tool": "FastTrack",
     "warning": { ...repro.result/1 warning object... }}

The embedded ``warning`` object is byte-for-byte the corresponding entry
of ``repro check --json``'s ``warnings`` array (same encoder, sorted
keys), which is the differential guarantee docs/WATCH.md states: over a
completed file, streaming and batch report the identical warning set.

Memory is bounded for unbounded streams via :meth:`Detector.compact`
every ``compact_every`` events — warning preserving by contract, so the
guarantee survives compaction (only rule/op statistics may drift).

Metrics (all on the default registry, rendered by any ``/metrics`` or
``--telemetry`` surface):

* ``repro_watch_events_total{tool}`` — events analyzed (batched handle,
  flushed every ``FLUSH_EVERY`` events and at :meth:`finish`);
* ``repro_watch_warnings_total{tool}`` — warnings streamed;
* ``repro_watch_lag_seconds{tool}`` — now minus the arrival timestamp
  of the event most recently analyzed (how far behind live data the
  analysis is running);
* ``repro_watch_compactions_total{tool}`` — compaction passes run.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterable, List, Optional

from repro.detectors import (
    default_tool_kwargs,
    make_detector,
    resolve_tool_name,
)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.report import warning_to_json
from repro.trace import events as ev

#: Schema tag on every streamed warning record.
WARNING_SCHEMA = "repro.warning/1"

WATCH_EVENTS_COUNTER = "repro_watch_events_total"
WATCH_WARNINGS_COUNTER = "repro_watch_warnings_total"
WATCH_LAG_GAUGE = "repro_watch_lag_seconds"
WATCH_COMPACTIONS_COUNTER = "repro_watch_compactions_total"

#: Events between flushes of the batched event counter.
FLUSH_EVERY = 1024


class WatchMonitor:
    """Drive one detector incrementally and stream its warnings."""

    def __init__(
        self,
        tool: str = "FastTrack",
        compact_every: int = 0,
        registry: Optional[MetricsRegistry] = None,
        clock: Callable[[], float] = time.monotonic,
        trace_id: Optional[str] = None,
        **tool_kwargs,
    ) -> None:
        # Set only when the caller is tracing: the key is *absent* from
        # warning records otherwise, so untraced output stays
        # byte-identical to every earlier release.
        self.trace_id = trace_id
        self.tool = resolve_tool_name(tool)
        kwargs = dict(default_tool_kwargs(self.tool))
        kwargs.update(tool_kwargs)
        self.detector = make_detector(self.tool, **kwargs)
        self.compact_every = compact_every
        self.compactions = 0
        self.released = 0
        self.warnings_emitted = 0
        self._since_compact = 0
        self._emitted_upto = 0
        self._clock = clock
        target = registry if registry is not None else default_registry()
        self._events = target.counter(
            WATCH_EVENTS_COUNTER, "Events analyzed by the live monitor."
        ).handle(tool=self.tool)
        self._warnings = target.counter(
            WATCH_WARNINGS_COUNTER, "Warnings streamed by the live monitor."
        )
        self._lag = target.gauge(
            WATCH_LAG_GAUGE,
            "Seconds the analysis lags behind the newest observed data.",
        )

    # -- the event loop ----------------------------------------------------------

    def feed(
        self, event: ev.Event, arrival: Optional[float] = None
    ) -> List[str]:
        """Analyze one event; return the warning records it triggered,
        already rendered as ``repro.warning/1`` JSON lines.

        ``arrival`` is the monotonic timestamp at which the event's bytes
        were read (``TailReader.last_read_at``); when given, the lag
        gauge is updated to ``now - arrival``.
        """
        detector = self.detector
        detector.handle(event)
        self._events.inc()
        if self._events.pending >= FLUSH_EVERY:
            self._events.flush()
        if arrival is not None:
            self._lag.set(
                max(0.0, self._clock() - arrival), tool=self.tool
            )
        records: List[str] = []
        warnings = detector.warnings
        while self._emitted_upto < len(warnings):
            warning = warnings[self._emitted_upto]
            self._emitted_upto += 1
            self.warnings_emitted += 1
            self._warnings.inc(tool=self.tool)
            record = {
                "schema": WARNING_SCHEMA,
                "tool": self.tool,
                "warning": warning_to_json(warning),
            }
            if self.trace_id is not None:
                record["trace_id"] = self.trace_id
            records.append(json.dumps(record, sort_keys=True))
        if self.compact_every:
            self._since_compact += 1
            if self._since_compact >= self.compact_every:
                self._since_compact = 0
                self.released += self.detector.compact()
                self.compactions += 1
                default_registry().counter(
                    WATCH_COMPACTIONS_COUNTER,
                    "Shadow-state compaction passes run by the monitor.",
                ).inc(tool=self.tool)
        return records

    def drain(
        self, events: Iterable[ev.Event], arrival: Optional[Callable[[], float]] = None
    ) -> Iterable[str]:
        """Feed a whole event stream, yielding warning records as they
        fire.  ``arrival`` is an optional callable polled per event for
        the arrival timestamp (e.g. ``lambda: reader.last_read_at``)."""
        for event in events:
            stamp = arrival() if arrival is not None else None
            for record in self.feed(event, arrival=stamp):
                yield record

    # -- bookkeeping ---------------------------------------------------------------

    @property
    def events_seen(self) -> int:
        return self.detector.events_handled

    def finish(self) -> dict:
        """Flush batched metrics and return the run summary."""
        self._events.flush()
        return {
            "tool": self.tool,
            "events": self.events_seen,
            "warnings": self.warnings_emitted,
            "suppressed_warnings": self.detector.suppressed_warnings,
            "compactions": self.compactions,
            "released": self.released,
        }
