"""Line sources for the live monitor: tailing files and stdin.

A :class:`TailReader` turns a growing file into an iterator of complete
text lines.  It reads bytes, not text, and only splits on ``\\n``, so a
producer's partial write — half a JSON record, even a torn multi-byte
character — is held in the buffer until the rest arrives.  Lines are
yielded *with* their terminators, which is what the tail-tolerant JSONL
parser (:func:`repro.trace.serialize.iter_parse_jsonl`) keys on: only a
genuinely unterminated final line is treated as in-flight.

In follow mode the reader polls the file for growth and keeps going
until ``idle_timeout`` seconds pass with no new bytes (or forever when
the timeout is ``None``).  Without follow it drains to the current end
of file and stops — the mode the differential guarantee uses.
"""

from __future__ import annotations

import os
import sys
import time
from typing import Callable, Iterator, Optional

_CHUNK = 1 << 16


class TailReader:
    """Incrementally read complete lines from a (possibly growing) file.

    ``last_read_at`` is the monotonic timestamp of the most recent
    successful read of bytes from the file; the monitor uses it to
    compute how far analysis lags behind arriving data
    (``repro_watch_lag_seconds``).
    """

    def __init__(
        self,
        path: str,
        from_start: bool = True,
        follow: bool = False,
        poll_interval: float = 0.05,
        idle_timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.path = path
        self.from_start = from_start
        self.follow = follow
        self.poll_interval = poll_interval
        self.idle_timeout = idle_timeout
        self.clock = clock
        self.sleep = sleep
        self.last_read_at: float = clock()
        self.bytes_read = 0

    def lines(self) -> Iterator[str]:
        """Yield complete lines (terminators kept); an unterminated tail
        is yielded last, after the stream is known to have ended."""
        with open(self.path, "rb") as handle:
            if not self.from_start:
                handle.seek(0, os.SEEK_END)
            buffer = b""
            idle_since: Optional[float] = None
            while True:
                chunk = handle.read(_CHUNK)
                if chunk:
                    self.last_read_at = self.clock()
                    self.bytes_read += len(chunk)
                    idle_since = None
                    buffer += chunk
                    while True:
                        cut = buffer.find(b"\n")
                        if cut < 0:
                            break
                        raw, buffer = buffer[: cut + 1], buffer[cut + 1 :]
                        yield raw.decode("utf-8")
                    continue
                if not self.follow:
                    break
                now = self.clock()
                if idle_since is None:
                    idle_since = now
                if (
                    self.idle_timeout is not None
                    and now - idle_since >= self.idle_timeout
                ):
                    break
                self.sleep(self.poll_interval)
            if buffer:
                # The stream ended mid-line.  Decode leniently: a torn
                # multi-byte character cannot be part of a valid record,
                # so the replacement characters land in the same
                # tail-tolerance path as any other partial write.
                yield buffer.decode("utf-8", errors="replace")


def stdin_lines() -> Iterator[str]:
    """Lines from standard input, terminators kept (``repro watch -``)."""
    return iter(sys.stdin)
