"""``repro.watch`` — the streaming live monitor (docs/WATCH.md).

Runs any registered detector *incrementally* over a live event stream:
a growing trace file (tailed), a completed file, or stdin.  Warnings
are emitted as ``repro.warning/1`` JSON lines the moment the completing
access is analyzed, not at end of trace — the online deployment mode
the batch ``repro check`` pipeline cannot offer.

The differential guarantee (asserted per golden trace by the test
suite): over a completed file, the warning objects streamed by ``repro
watch --from-start --tool T`` are byte-identical, in order, to the
``warnings`` array of ``repro check --tool T --json`` on the same
trace.  Periodic shadow-state compaction (``Detector.compact``) bounds
memory on unbounded streams without breaking that guarantee.
"""

from repro.watch.monitor import (
    FLUSH_EVERY,
    WARNING_SCHEMA,
    WATCH_COMPACTIONS_COUNTER,
    WATCH_EVENTS_COUNTER,
    WATCH_LAG_GAUGE,
    WATCH_WARNINGS_COUNTER,
    WatchMonitor,
)
from repro.watch.stream import TailReader, stdin_lines

__all__ = [
    "FLUSH_EVERY",
    "WARNING_SCHEMA",
    "WATCH_COMPACTIONS_COUNTER",
    "WATCH_EVENTS_COUNTER",
    "WATCH_LAG_GAUGE",
    "WATCH_WARNINGS_COUNTER",
    "WatchMonitor",
    "TailReader",
    "stdin_lines",
]
