"""The bounded job queue between HTTP threads and job runners.

Deliberately not :class:`queue.Queue`: submission must *fail fast* when
the daemon is saturated (the HTTP layer turns :class:`QueueFull` into a
``429`` with ``Retry-After``) rather than block an HTTP thread, and
restart recovery must be able to re-enqueue persisted jobs past the
bound (``force=True`` — backpressure protects the daemon from new work,
not from work it already accepted before a restart).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional


class QueueFull(RuntimeError):
    """The queue is at capacity; the submitter should retry later."""

    def __init__(self, depth: int, maxsize: int) -> None:
        super().__init__(f"job queue is full ({depth}/{maxsize})")
        self.depth = depth
        self.maxsize = maxsize


class QueueClosed(RuntimeError):
    """The queue stopped accepting work (the daemon is draining)."""


class JobQueue:
    """A thread-safe bounded FIFO of job ids."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._items: deque = deque()
        self._condition = threading.Condition()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        with self._condition:
            return len(self._items)

    def __len__(self) -> int:
        return self.depth

    def put(self, item: str, force: bool = False) -> None:
        """Enqueue, raising :class:`QueueFull` at capacity (unless
        ``force``) and :class:`QueueClosed` after :meth:`close`."""
        with self._condition:
            if self._closed:
                raise QueueClosed("queue is closed")
            if not force and len(self._items) >= self.maxsize:
                raise QueueFull(len(self._items), self.maxsize)
            self._items.append(item)
            self._condition.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[str]:
        """Dequeue the oldest item, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the queue is closed and
        drained — runner threads use that as their exit signal.
        """
        with self._condition:
            if not self._items:
                self._condition.wait(timeout)
            if not self._items:
                return None
            return self._items.popleft()

    def close(self) -> None:
        """Stop accepting work and wake every waiting consumer."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()
